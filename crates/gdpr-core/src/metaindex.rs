//! Engine-side secondary indexes over GDPR metadata.
//!
//! The paper's central performance finding is that GDPR queries are
//! *metadata-predicate* queries (by user, purpose, objection, sharing,
//! TTL), and that a store without secondary indexes on that metadata
//! answers them orders of magnitude too slowly (Figures 5a/7b: every such
//! query on Redis is a full SCAN-decrypt-parse of the keyspace). This
//! module is the retrofit: four inverted indexes — `user → keys`,
//! `purpose → keys`, `objection → keys`, `sharing → keys` — plus a live
//! *all-keys* set, a *decision-eligibility* set, and a deadline-ordered
//! expiry set, maintained by the compliance engine on every
//! put/rewrite/delete and invalidated by the store on every TTL
//! expiration, so predicate lookups become O(matches) instead of O(n).
//!
//! Coverage is total: [`MetadataIndex::keys_for`] answers **every**
//! [`RecordPredicate`] variant. The two negative predicates resolve as set
//! algebra over the live key population — `NotObjecting(usage)` is
//! `all_keys − objecting(usage)` and `DecisionEligible` is a directly
//! maintained set (keys without the G22 opt-out marker) — so even
//! "everything except ..." queries fetch only their matches instead of
//! scan-decrypt-parsing the whole keyspace.
//!
//! Writers maintain the index either per record ([`MetadataIndex::upsert`]
//! / [`MetadataIndex::remove`]) or in bulk via an [`IndexBatch`] applied by
//! [`MetadataIndex::apply`], which takes the write lock **once** for the
//! whole batch — the multi-record engine paths (group updates, group
//! deletes, TTL purges, backfill, shard rebalance) coalesce their index
//! maintenance this way instead of paying one lock round-trip per record.
//!
//! Expiry deadlines are **inclusive**: a record whose deadline equals the
//! current instant is already expired. [`MetadataIndex::expired_keys`],
//! the key-value store's reaper, and the relational sweep daemon all agree
//! on this boundary, so an index-driven purge and a scan-driven purge
//! delete identical sets at the boundary instant (pinned by the
//! conformance suite).
//!
//! The index stores *keys only*; record payloads stay in (and are re-read
//! from) the backing store, so encrypted-at-rest data is never duplicated
//! in plaintext and a stale index entry can at worst cause one extra fetch
//! that comes back empty — the engine re-verifies every candidate against
//! the predicate before returning it (see
//! [`crate::store::RecordPredicate::matches`]).

use crate::record::{Metadata, PersonalRecord};
use crate::store::RecordPredicate;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Keys are stored once and shared: every structure a key appears in
/// (its terms row, up to four inverted postings, the all-keys and
/// eligibility sets, the deadline set) holds the same `Arc<str>`, so
/// membership costs a refcount bump instead of a `String` allocation.
/// That is what keeps [`MetadataIndex::load_entries`] — the snapshot
/// restore path — allocation-light: one key allocation per entry,
/// however many structures the key lands in.
type Key = Arc<str>;

/// What was indexed for one key — kept so removal needs no record fetch
/// (the record may already be gone from the store when invalidation runs).
/// Terms are shared `Arc<str>`s: the vocabulary (users, purposes, usage
/// and party names) repeats across records, so the restore path interns
/// each distinct term once instead of allocating a copy per record — and
/// the three term lists live in **one** packed allocation
/// (`purposes ‖ objections ‖ sharing`, delimited by the two end offsets),
/// since a record typically carries only a handful of terms total.
#[derive(Debug, Clone)]
struct IndexedTerms {
    user: Key,
    /// `purposes ‖ objections ‖ sharing`, packed.
    term_lists: Box<[Key]>,
    purposes_end: u32,
    objections_end: u32,
    /// Whether the key sits in the decision-eligibility set. Recorded here
    /// (not re-derived) so the per-key terms are a complete, dumpable image
    /// of the index — [`MetadataIndex::export_entries`] serializes exactly
    /// this table and [`MetadataIndex::load_entries`] rebuilds every map
    /// from it.
    decision_eligible: bool,
    deadline_ms: Option<u64>,
}

impl IndexedTerms {
    fn purposes(&self) -> &[Key] {
        &self.term_lists[..self.purposes_end as usize]
    }

    fn objections(&self) -> &[Key] {
        &self.term_lists[self.purposes_end as usize..self.objections_end as usize]
    }

    fn sharing(&self) -> &[Key] {
        &self.term_lists[self.objections_end as usize..]
    }

    /// Pack the three lists (already concatenated in `term_lists` order)
    /// with their split offsets.
    fn packed(
        user: Key,
        term_lists: Vec<Key>,
        purposes_end: usize,
        objections_end: usize,
        decision_eligible: bool,
        deadline_ms: Option<u64>,
    ) -> IndexedTerms {
        IndexedTerms {
            user,
            term_lists: term_lists.into_boxed_slice(),
            purposes_end: purposes_end as u32,
            objections_end: objections_end as u32,
            decision_eligible,
            deadline_ms,
        }
    }
}

#[derive(Default)]
struct Inner {
    by_user: HashMap<String, BTreeSet<Key>>,
    by_purpose: HashMap<String, BTreeSet<Key>>,
    by_objection: HashMap<String, BTreeSet<Key>>,
    by_sharing: HashMap<String, BTreeSet<Key>>,
    /// Every live key — the universe the negative predicates subtract
    /// from (`NotObjecting` = `all_keys − objecting`).
    all_keys: BTreeSet<Key>,
    /// Keys eligible for automated decision-making (no G22 opt-out
    /// marker) — `DecisionEligible` reads this set directly.
    decision_eligible: BTreeSet<Key>,
    /// `(absolute deadline ms, key)`, ordered — expired prefixes pop in
    /// O(expired · log n).
    by_deadline: BTreeSet<(u64, Key)>,
    /// Per-key snapshot of the indexed terms.
    terms: HashMap<Key, IndexedTerms>,
}

impl Inner {
    fn unindex(&mut self, key: &str) -> bool {
        let Some((key_arc, terms)) = self.terms.remove_entry(key) else {
            return false;
        };
        detach(&mut self.by_user, &terms.user, key);
        for p in terms.purposes() {
            detach(&mut self.by_purpose, p, key);
        }
        for o in terms.objections() {
            detach(&mut self.by_objection, o, key);
        }
        for s in terms.sharing() {
            detach(&mut self.by_sharing, s, key);
        }
        self.all_keys.remove(key);
        self.decision_eligible.remove(key);
        if let Some(at) = terms.deadline_ms {
            self.by_deadline.remove(&(at, key_arc));
        }
        true
    }
}

fn detach(map: &mut HashMap<String, BTreeSet<Key>>, term: &str, key: &str) {
    if let Some(set) = map.get_mut(term) {
        set.remove(key);
        if set.is_empty() {
            map.remove(term);
        }
    }
}

/// Add `key` under `term`, allocating the term map entry only on first
/// sight of the term (the common hit path clones nothing).
fn attach(map: &mut HashMap<String, BTreeSet<Key>>, term: &str, key: Key) {
    if let Some(set) = map.get_mut(term) {
        set.insert(key);
    } else {
        map.entry(term.to_string()).or_default().insert(key);
    }
}

/// Convert accumulated per-term key vectors into posting sets
/// (`FromIterator` bulk-builds each `BTreeSet` from its sorted vector).
fn bulk_sets(map: HashMap<String, Vec<Key>>) -> HashMap<String, BTreeSet<Key>> {
    map.into_iter()
        .map(|(term, keys)| (term, keys.into_iter().collect()))
        .collect()
}

/// Accumulates a whole index image off-lock, then installs it in one
/// swap — the engine of the O(index) restore path. Per entry it performs
/// exactly one key allocation; structure memberships are refcount bumps,
/// and term strings are *interned* (the user/purpose/usage/party
/// vocabulary repeats across records, so each distinct term is allocated
/// once however many records carry it). Feed entries in key order: the
/// accumulated vectors then arrive sorted and every `BTreeSet` below is
/// bulk-built instead of rebalanced insert by insert.
pub(crate) struct IndexBuilder {
    by_user: HashMap<String, Vec<Key>>,
    by_purpose: HashMap<String, Vec<Key>>,
    by_objection: HashMap<String, Vec<Key>>,
    by_sharing: HashMap<String, Vec<Key>>,
    all_keys: Vec<Key>,
    decision_eligible: Vec<Key>,
    by_deadline: Vec<(u64, Key)>,
    terms: HashMap<Key, IndexedTerms>,
    interned: std::collections::HashSet<Key>,
}

fn intern(table: &mut std::collections::HashSet<Key>, term: &str) -> Key {
    if let Some(known) = table.get(term) {
        Key::clone(known)
    } else {
        let fresh = Key::from(term);
        table.insert(Key::clone(&fresh));
        fresh
    }
}

/// Append `key` to `term`'s accumulating posting vector, allocating the
/// term map entry only on first sight of the term.
fn post(map: &mut HashMap<String, Vec<Key>>, term: &str, key: Key) {
    if let Some(keys) = map.get_mut(term) {
        keys.push(key);
    } else {
        map.insert(term.to_string(), vec![key]);
    }
}

impl IndexBuilder {
    pub(crate) fn with_capacity(n: usize) -> IndexBuilder {
        IndexBuilder {
            by_user: HashMap::new(),
            by_purpose: HashMap::new(),
            by_objection: HashMap::new(),
            by_sharing: HashMap::new(),
            all_keys: Vec::with_capacity(n),
            decision_eligible: Vec::new(),
            by_deadline: Vec::new(),
            terms: HashMap::with_capacity(n),
            interned: std::collections::HashSet::new(),
        }
    }

    /// Add one key's image. A key fed twice builds inconsistent postings
    /// — callers must deduplicate (the snapshot reader enforces strictly
    /// ascending keys instead).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add<'a>(
        &mut self,
        key: &str,
        user: &str,
        purposes: impl Iterator<Item = &'a str>,
        objections: impl Iterator<Item = &'a str>,
        sharing: impl Iterator<Item = &'a str>,
        decision_eligible: bool,
        deadline_ms: Option<u64>,
    ) {
        fn collect_terms<'a>(
            interned: &mut std::collections::HashSet<Key>,
            map: &mut HashMap<String, Vec<Key>>,
            key: &Key,
            terms: impl Iterator<Item = &'a str>,
        ) -> Vec<Key> {
            terms
                .map(|term| {
                    let term = intern(interned, term);
                    post(map, &term, Key::clone(key));
                    term
                })
                .collect()
        }
        let key = Key::from(key);
        let user = intern(&mut self.interned, user);
        post(&mut self.by_user, &user, Key::clone(&key));
        let mut term_lists =
            collect_terms(&mut self.interned, &mut self.by_purpose, &key, purposes);
        let purposes_end = term_lists.len();
        term_lists.extend(collect_terms(
            &mut self.interned,
            &mut self.by_objection,
            &key,
            objections,
        ));
        let objections_end = term_lists.len();
        term_lists.extend(collect_terms(
            &mut self.interned,
            &mut self.by_sharing,
            &key,
            sharing,
        ));
        self.all_keys.push(Key::clone(&key));
        if decision_eligible {
            self.decision_eligible.push(Key::clone(&key));
        }
        if let Some(at) = deadline_ms {
            self.by_deadline.push((at, Key::clone(&key)));
        }
        self.terms.insert(
            key,
            IndexedTerms::packed(
                user,
                term_lists,
                purposes_end,
                objections_end,
                decision_eligible,
                deadline_ms,
            ),
        );
    }

    /// Build every set (bulk, from the sorted vectors) and swap the
    /// result into `index` under one brief write-lock acquisition.
    /// Returns the number of keys installed.
    pub(crate) fn install(self, index: &MetadataIndex) -> usize {
        let IndexBuilder {
            by_user,
            by_purpose,
            by_objection,
            by_sharing,
            all_keys,
            decision_eligible,
            by_deadline,
            terms,
            interned: _,
        } = self;
        install_built(
            index,
            move || {
                (
                    bulk_sets(by_user),
                    bulk_sets(by_purpose),
                    bulk_sets(by_objection),
                    bulk_sets(by_sharing),
                )
            },
            all_keys,
            decision_eligible,
            by_deadline,
            terms,
        )
    }
}

type PostingMaps = (
    HashMap<String, BTreeSet<Key>>,
    HashMap<String, BTreeSet<Key>>,
    HashMap<String, BTreeSet<Key>>,
    HashMap<String, BTreeSet<Key>>,
);

/// Shared tail of every bulk build: run `posting_job` (the four inverted
/// maps) on a second thread while this one bulk-builds the key-level
/// sets, then swap the assembled [`Inner`] into `index` under one brief
/// write-lock acquisition. The two halves share nothing but refcounts,
/// and restore latency is restart downtime.
fn install_built(
    index: &MetadataIndex,
    posting_job: impl FnOnce() -> PostingMaps + Send,
    all_keys: Vec<Key>,
    decision_eligible: Vec<Key>,
    mut by_deadline: Vec<(u64, Key)>,
    terms: HashMap<Key, IndexedTerms>,
) -> usize {
    let built = std::thread::scope(|scope| {
        let postings = scope.spawn(posting_job);
        by_deadline.sort_unstable();
        let all_keys: BTreeSet<Key> = all_keys.into_iter().collect();
        let decision_eligible: BTreeSet<Key> = decision_eligible.into_iter().collect();
        let by_deadline: BTreeSet<(u64, Key)> = by_deadline.into_iter().collect();
        let (by_user, by_purpose, by_objection, by_sharing) =
            postings.join().expect("posting builder");
        Inner {
            by_user,
            by_purpose,
            by_objection,
            by_sharing,
            all_keys,
            decision_eligible,
            by_deadline,
            terms,
        }
    });
    let n = built.terms.len();
    *index.inner.write() = built;
    n
}

/// The id-addressed twin of [`IndexBuilder`], for images that carry a
/// term table: terms arrive as indexes into a shared vocabulary, so
/// feeding a key performs **no string hashing at all** — every
/// membership is an array index plus a refcount bump, and the only
/// allocation per key is the key itself. This is the hot half of the
/// snapshot restore path.
pub(crate) struct VocabIndexBuilder {
    vocab: Vec<Key>,
    by_user: Vec<Vec<Key>>,
    by_purpose: Vec<Vec<Key>>,
    by_objection: Vec<Vec<Key>>,
    by_sharing: Vec<Vec<Key>>,
    all_keys: Vec<Key>,
    decision_eligible: Vec<Key>,
    by_deadline: Vec<(u64, Key)>,
    /// Accumulated flat; the terms `HashMap` is built during the
    /// parallel install phase, off the serial parse path.
    terms: Vec<(Key, IndexedTerms)>,
}

impl VocabIndexBuilder {
    /// A builder over a fixed term table. Ids fed to [`Self::add`] must
    /// be `< vocab.len()` (the snapshot reader bounds-checks them as it
    /// parses).
    pub(crate) fn new(vocab: Vec<Key>, capacity: usize) -> VocabIndexBuilder {
        let postings = || vec![Vec::new(); vocab.len()];
        VocabIndexBuilder {
            by_user: postings(),
            by_purpose: postings(),
            by_objection: postings(),
            by_sharing: postings(),
            all_keys: Vec::with_capacity(capacity),
            decision_eligible: Vec::new(),
            by_deadline: Vec::new(),
            terms: Vec::with_capacity(capacity),
            vocab,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn add(
        &mut self,
        key: &str,
        user_id: u32,
        purposes: &[u32],
        objections: &[u32],
        sharing: &[u32],
        decision_eligible: bool,
        deadline_ms: Option<u64>,
    ) {
        fn post_ids(postings: &mut [Vec<Key>], ids: &[u32], key: &Key) {
            for &id in ids {
                postings[id as usize].push(Key::clone(key));
            }
        }
        let key = Key::from(key);
        self.by_user[user_id as usize].push(Key::clone(&key));
        post_ids(&mut self.by_purpose, purposes, &key);
        post_ids(&mut self.by_objection, objections, &key);
        post_ids(&mut self.by_sharing, sharing, &key);
        self.all_keys.push(Key::clone(&key));
        if decision_eligible {
            self.decision_eligible.push(Key::clone(&key));
        }
        if let Some(at) = deadline_ms {
            self.by_deadline.push((at, Key::clone(&key)));
        }
        let vocab = &self.vocab;
        let mut term_lists = Vec::with_capacity(purposes.len() + objections.len() + sharing.len());
        for &id in purposes.iter().chain(objections).chain(sharing) {
            term_lists.push(Key::clone(&vocab[id as usize]));
        }
        self.terms.push((
            key,
            IndexedTerms::packed(
                Key::clone(&vocab[user_id as usize]),
                term_lists,
                purposes.len(),
                purposes.len() + objections.len(),
                decision_eligible,
                deadline_ms,
            ),
        ));
    }

    pub(crate) fn install(self, index: &MetadataIndex) -> usize {
        let VocabIndexBuilder {
            vocab,
            by_user,
            by_purpose,
            by_objection,
            by_sharing,
            all_keys,
            decision_eligible,
            mut by_deadline,
            terms,
        } = self;
        fn to_map(vocab: &[Key], postings: Vec<Vec<Key>>) -> HashMap<String, BTreeSet<Key>> {
            let mut map: HashMap<String, BTreeSet<Key>> = HashMap::new();
            for (id, keys) in postings.into_iter().enumerate() {
                if keys.is_empty() {
                    continue;
                }
                // Merge, never overwrite: the snapshot reader rejects
                // duplicate vocab terms, but losing postings silently is
                // the one failure this layer must be incapable of.
                map.entry(vocab[id].to_string()).or_default().extend(keys);
            }
            map
        }
        let built = std::thread::scope(|scope| {
            // Thread: the four posting maps and the key-level sets (all
            // bulk-built from their sorted vectors); main thread: the
            // terms table (the largest single hash build).
            let sets = scope.spawn(move || {
                by_deadline.sort_unstable();
                (
                    to_map(&vocab, by_user),
                    to_map(&vocab, by_purpose),
                    to_map(&vocab, by_objection),
                    to_map(&vocab, by_sharing),
                    all_keys.into_iter().collect::<BTreeSet<Key>>(),
                    decision_eligible.into_iter().collect::<BTreeSet<Key>>(),
                    by_deadline.into_iter().collect::<BTreeSet<(u64, Key)>>(),
                )
            });
            let mut terms_map: HashMap<Key, IndexedTerms> = HashMap::with_capacity(terms.len());
            terms_map.extend(terms);
            let (
                by_user,
                by_purpose,
                by_objection,
                by_sharing,
                all_keys,
                decision_eligible,
                by_deadline,
            ) = sets.join().expect("set builder");
            Inner {
                by_user,
                by_purpose,
                by_objection,
                by_sharing,
                all_keys,
                decision_eligible,
                by_deadline,
                terms: terms_map,
            }
        });
        let n = built.terms.len();
        *index.inner.write() = built;
        n
    }
}

fn keys_of(map: &HashMap<String, BTreeSet<Key>>, term: &str) -> Vec<String> {
    map.get(term)
        .map(|set| set.iter().map(|k| k.to_string()).collect())
        .unwrap_or_default()
}

/// One deferred index mutation inside an [`IndexBatch`]. Ops hold only
/// the key and the metadata terms — never the data payload — so a queued
/// batch buffers no plaintext personal data, upholding the module's
/// "keys only" contract even while mutations are in flight.
#[derive(Debug, Clone)]
enum IndexOp {
    /// Same semantics as [`MetadataIndex::upsert`].
    Upsert {
        key: String,
        metadata: Metadata,
        now_ms: u64,
        keep_deadline: bool,
    },
    /// Same semantics as [`MetadataIndex::upsert_with_deadline`].
    UpsertAt {
        key: String,
        metadata: Metadata,
        deadline_ms: Option<u64>,
    },
    /// Same semantics as [`MetadataIndex::remove`].
    Remove { key: String },
}

/// A batch of index mutations applied under **one** write-lock
/// acquisition ([`MetadataIndex::apply`]). The engine's multi-record
/// write paths (group updates and deletes, TTL purges, backfill, shard
/// rebalance) build one of these instead of locking per record. Ops apply
/// in insertion order, so a batch touching the same key twice behaves
/// exactly like the equivalent per-record call sequence.
#[derive(Debug, Clone, Default)]
pub struct IndexBatch {
    ops: Vec<IndexOp>,
}

impl IndexBatch {
    pub fn new() -> IndexBatch {
        IndexBatch::default()
    }

    /// Queue an upsert with [`MetadataIndex::upsert`] semantics. Takes the
    /// record by value — callers on the write path own it anyway — and
    /// keeps only its key and metadata; the data payload is dropped here.
    pub fn upsert(&mut self, record: PersonalRecord, now_ms: u64, keep_deadline: bool) {
        self.ops.push(IndexOp::Upsert {
            key: record.key,
            metadata: record.metadata,
            now_ms,
            keep_deadline,
        });
    }

    /// Queue an upsert under an explicit absolute deadline (payload
    /// dropped, as in [`Self::upsert`]).
    pub fn upsert_at(&mut self, record: PersonalRecord, deadline_ms: Option<u64>) {
        self.ops.push(IndexOp::UpsertAt {
            key: record.key,
            metadata: record.metadata,
            deadline_ms,
        });
    }

    /// Queue a removal.
    pub fn remove(&mut self, key: impl Into<String>) {
        self.ops.push(IndexOp::Remove { key: key.into() });
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Partition the batch by a key-derived group label (in practice: the
    /// tenant prefix of the storage key), preserving op order within each
    /// group. Groups come back in first-appearance order, so replaying
    /// every group's batch is equivalent to replaying the original batch
    /// as long as the grouping function is consistent per key.
    pub fn split_by(self, group_of: impl Fn(&str) -> String) -> Vec<(String, IndexBatch)> {
        let mut groups: Vec<(String, IndexBatch)> = Vec::new();
        for op in self.ops {
            let key = match &op {
                IndexOp::Upsert { key, .. }
                | IndexOp::UpsertAt { key, .. }
                | IndexOp::Remove { key } => key.as_str(),
            };
            let label = group_of(key);
            match groups.iter_mut().find(|(l, _)| *l == label) {
                Some((_, batch)) => batch.ops.push(op),
                None => groups.push((label, IndexBatch { ops: vec![op] })),
            }
        }
        groups
    }
}

/// One key's complete index image — everything the index knows about it,
/// with **absolute** TTL deadlines. A `Vec<IndexEntry>` is a full dump of
/// a [`MetadataIndex`]: every inverted map, the all-keys and
/// decision-eligibility sets, and the deadline set are reconstructible
/// from it (and from nothing else), which is what makes the entry list
/// the payload of the on-disk snapshot format in [`crate::snapshot`] —
/// a single per-key table cannot encode mutually inconsistent maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    pub key: String,
    pub user: String,
    pub purposes: Vec<String>,
    pub objections: Vec<String>,
    pub sharing: Vec<String>,
    /// Whether the key is in the decision-eligibility set (no G22
    /// opt-out marker at indexing time). Carried explicitly because the
    /// index does not retain the decisions list it was derived from.
    pub decision_eligible: bool,
    /// Absolute expiry deadline in milliseconds on the store's clock.
    pub deadline_ms: Option<u64>,
}

/// The four inverted metadata indexes, the all-keys and
/// decision-eligibility sets, and the TTL expiry set.
#[derive(Default)]
pub struct MetadataIndex {
    inner: RwLock<Inner>,
}

impl MetadataIndex {
    pub fn new() -> MetadataIndex {
        MetadataIndex::default()
    }

    /// Index (or re-index) a record. `now_ms` anchors the TTL deadline;
    /// with `keep_deadline`, a previously indexed deadline survives the
    /// rewrite (the store preserved the remaining TTL, so must we).
    pub fn upsert(&self, record: &PersonalRecord, now_ms: u64, keep_deadline: bool) {
        Self::upsert_locked(
            &mut self.inner.write(),
            &record.key,
            &record.metadata,
            now_ms,
            keep_deadline,
        );
    }

    /// Index a record under an explicit absolute deadline — the backfill
    /// path, where the store's own remaining deadline (not `now + declared
    /// TTL`) is authoritative for records that already existed.
    pub fn upsert_with_deadline(&self, record: &PersonalRecord, deadline_ms: Option<u64>) {
        Self::index_locked(
            &mut self.inner.write(),
            &record.key,
            &record.metadata,
            deadline_ms,
        );
    }

    /// Apply a whole [`IndexBatch`] under one write-lock acquisition, in
    /// op order. Returns how many ops were applied. This is the engine's
    /// multi-record maintenance path: a group update over k records costs
    /// one lock round-trip instead of k.
    pub fn apply(&self, batch: IndexBatch) -> usize {
        if batch.ops.is_empty() {
            return 0;
        }
        let mut inner = self.inner.write();
        let n = batch.ops.len();
        for op in batch.ops {
            match op {
                IndexOp::Upsert {
                    key,
                    metadata,
                    now_ms,
                    keep_deadline,
                } => Self::upsert_locked(&mut inner, &key, &metadata, now_ms, keep_deadline),
                IndexOp::UpsertAt {
                    key,
                    metadata,
                    deadline_ms,
                } => Self::index_locked(&mut inner, &key, &metadata, deadline_ms),
                IndexOp::Remove { key } => {
                    inner.unindex(&key);
                }
            }
        }
        n
    }

    /// The one deadline-derivation rule, shared by the per-record and
    /// batched upsert paths so they cannot silently diverge: keep the
    /// previously indexed deadline when `keep_deadline`, else re-arm from
    /// `now_ms + declared TTL`.
    fn upsert_locked(inner: &mut Inner, key: &str, m: &Metadata, now_ms: u64, keep_deadline: bool) {
        let deadline_ms = if keep_deadline {
            inner.terms.get(key).and_then(|t| t.deadline_ms)
        } else {
            m.ttl.map(|ttl| now_ms + ttl.as_millis() as u64)
        };
        Self::index_locked(inner, key, m, deadline_ms);
    }

    fn index_locked(inner: &mut Inner, key: &str, m: &Metadata, deadline_ms: Option<u64>) {
        let mut term_lists: Vec<Key> =
            Vec::with_capacity(m.purposes.len() + m.objections.len() + m.sharing.len());
        term_lists.extend(
            m.purposes
                .iter()
                .chain(&m.objections)
                .chain(&m.sharing)
                .map(|t| Key::from(t.as_str())),
        );
        Self::terms_locked(
            inner,
            Key::from(key),
            IndexedTerms::packed(
                Key::from(m.user.as_str()),
                term_lists,
                m.purposes.len(),
                m.purposes.len() + m.objections.len(),
                m.allows_automated_decisions(),
                deadline_ms,
            ),
        );
    }

    /// Attach one key's terms to every structure. The single insertion
    /// path shared by live indexing and snapshot restore, so a restored
    /// index cannot diverge structurally from a live-built one. The key
    /// is allocated once (by the caller) and shared by refcount into
    /// every structure it lands in.
    fn terms_locked(inner: &mut Inner, key: Key, terms: IndexedTerms) {
        inner.unindex(&key);
        attach(&mut inner.by_user, &terms.user, Key::clone(&key));
        for p in terms.purposes() {
            attach(&mut inner.by_purpose, p, Key::clone(&key));
        }
        for o in terms.objections() {
            attach(&mut inner.by_objection, o, Key::clone(&key));
        }
        for s in terms.sharing() {
            attach(&mut inner.by_sharing, s, Key::clone(&key));
        }
        inner.all_keys.insert(Key::clone(&key));
        if terms.decision_eligible {
            inner.decision_eligible.insert(Key::clone(&key));
        }
        if let Some(at) = terms.deadline_ms {
            inner.by_deadline.insert((at, Key::clone(&key)));
        }
        inner.terms.insert(key, terms);
    }

    /// Drop a key from every index. Returns whether it was indexed. This is
    /// the invalidation path stores call on TTL expiration.
    pub fn remove(&self, key: &str) -> bool {
        self.inner.write().unindex(key)
    }

    /// Dump the whole index as per-key entries, sorted by key (one read
    /// lock). The dump is *complete*: [`Self::load_entries`] on a fresh
    /// index reproduces every structure exactly — this is the snapshot
    /// write path.
    pub fn export_entries(&self) -> Vec<IndexEntry> {
        let inner = self.inner.read();
        let mut entries: Vec<IndexEntry> = inner
            .terms
            .iter()
            .map(|(key, t)| {
                let owned = |terms: &[Key]| terms.iter().map(|t| t.to_string()).collect();
                IndexEntry {
                    key: key.to_string(),
                    user: t.user.to_string(),
                    purposes: owned(t.purposes()),
                    objections: owned(t.objections()),
                    sharing: owned(t.sharing()),
                    decision_eligible: t.decision_eligible,
                    deadline_ms: t.deadline_ms,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        entries
    }

    /// Rebuild the index from a dump — the O(index) snapshot restore
    /// path. Anything previously indexed is dropped (the new state is
    /// swapped in whole under one brief write-lock acquisition). Returns
    /// how many entries were loaded.
    ///
    /// This is a *bulk* build, an order of magnitude cheaper than
    /// per-entry upserts: every structure is first accumulated as a
    /// key-ordered vector (one key allocation per entry, memberships are
    /// refcount bumps, term strings move straight out of the entries),
    /// then converted to its `BTreeSet` via `FromIterator`, which
    /// bulk-builds from sorted input instead of rebalancing insert by
    /// insert.
    pub fn load_entries(&self, entries: Vec<IndexEntry>) -> usize {
        let mut entries = entries;
        // Dumps are written key-sorted; tolerate (sort) anything else and
        // drop duplicate keys rather than building inconsistent postings.
        if !entries.windows(2).all(|w| w[0].key <= w[1].key) {
            entries.sort_by(|a, b| a.key.cmp(&b.key));
        }
        entries.dedup_by(|b, a| a.key == b.key);
        let mut builder = IndexBuilder::with_capacity(entries.len());
        for e in &entries {
            builder.add(
                &e.key,
                &e.user,
                e.purposes.iter().map(String::as_str),
                e.objections.iter().map(String::as_str),
                e.sharing.iter().map(String::as_str),
                e.decision_eligible,
                e.deadline_ms,
            );
        }
        builder.install(self)
    }

    /// Candidate keys for a predicate. Every [`RecordPredicate`] variant is
    /// index-answerable, so this always returns `Some` — the `Option` stays
    /// in the signature so a future predicate the index cannot cover can
    /// still fall back to the engine's scan path. Candidates are a
    /// *superset-modulo-staleness* of the true matches; callers must
    /// re-verify each fetched record.
    ///
    /// For the *difference-based* predicates (`AllowsPurpose`,
    /// `NotObjecting`, `DecisionEligible`) staleness can also *narrow*
    /// the candidate set: a read racing a metadata write's
    /// store-committed-but-not-yet-reindexed window subtracts the
    /// pre-write objection/opt-out terms, i.e. it serializes before that
    /// write. The narrowing is only ever toward treating an objection or
    /// opt-out as still in force — the privacy-conservative direction —
    /// and closes as soon as the writer's (batched) reindex lands; the
    /// engine is non-transactional by design and makes no linearizability
    /// promise across concurrent writes.
    pub fn keys_for(&self, pred: &RecordPredicate) -> Option<Vec<String>> {
        let inner = self.inner.read();
        match pred {
            RecordPredicate::User(u) => Some(keys_of(&inner.by_user, u)),
            RecordPredicate::DeclaredPurpose(p) => Some(keys_of(&inner.by_purpose, p)),
            RecordPredicate::AllowsPurpose(p) => {
                let declared = inner.by_purpose.get(p.as_str());
                let objecting = inner.by_objection.get(p.as_str());
                Some(match (declared, objecting) {
                    (None, _) => Vec::new(),
                    (Some(d), None) => d.iter().map(|k| k.to_string()).collect(),
                    (Some(d), Some(o)) => d.difference(o).map(|k| k.to_string()).collect(),
                })
            }
            RecordPredicate::SharedWith(s) => Some(keys_of(&inner.by_sharing, s)),
            // Negative predicates are set differences over the live key
            // population: the walk is O(|all_keys|) string compares, but the
            // caller then fetches (and decrypt-parses) only the matches —
            // the expensive part a full scan pays for every record.
            RecordPredicate::NotObjecting(usage) => {
                Some(match inner.by_objection.get(usage.as_str()) {
                    None => inner.all_keys.iter().map(|k| k.to_string()).collect(),
                    Some(o) => inner
                        .all_keys
                        .difference(o)
                        .map(|k| k.to_string())
                        .collect(),
                })
            }
            RecordPredicate::DecisionEligible => Some(
                inner
                    .decision_eligible
                    .iter()
                    .map(|k| k.to_string())
                    .collect(),
            ),
        }
    }

    /// Keys whose deadline is at or before `now_ms`, in deadline order.
    pub fn expired_keys(&self, now_ms: u64) -> Vec<String> {
        self.inner
            .read()
            .by_deadline
            .iter()
            .take_while(|(at, _)| *at <= now_ms)
            .map(|(_, key)| key.to_string())
            .collect()
    }

    /// The earliest deadline currently indexed.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.inner
            .read()
            .by_deadline
            .iter()
            .next()
            .map(|(at, _)| *at)
    }

    /// The indexed deadline of one key.
    pub fn deadline_of(&self, key: &str) -> Option<u64> {
        self.inner.read().terms.get(key).and_then(|t| t.deadline_ms)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.read().terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything.
    pub fn clear(&self) {
        *self.inner.write() = Inner::default();
    }

    // ---- term-level inspection (tests, space accounting, diagnostics) ----

    pub fn keys_by_user(&self, user: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_user, user)
    }

    pub fn keys_by_purpose(&self, purpose: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_purpose, purpose)
    }

    pub fn keys_with_objection(&self, usage: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_objection, usage)
    }

    pub fn keys_shared_with(&self, party: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_sharing, party)
    }

    /// True when `key` appears in *no* inverted index and no deadline —
    /// the invariant after invalidation.
    pub fn fully_absent(&self, key: &str) -> bool {
        let inner = self.inner.read();
        !inner.terms.contains_key(key)
            && !inner.by_user.values().any(|s| s.contains(key))
            && !inner.by_purpose.values().any(|s| s.contains(key))
            && !inner.by_objection.values().any(|s| s.contains(key))
            && !inner.by_sharing.values().any(|s| s.contains(key))
            && !inner.all_keys.contains(key)
            && !inner.decision_eligible.contains(key)
            && !inner.by_deadline.iter().any(|(_, k)| k.as_ref() == key)
    }

    /// Approximate footprint, for space-overhead visibility (the engine's
    /// analogue of the paper's Table 3 index cost).
    pub fn size_bytes(&self) -> usize {
        let inner = self.inner.read();
        let map_bytes = |m: &HashMap<String, BTreeSet<Key>>| {
            m.iter()
                // A shared key costs a pointer + refcount word per
                // membership, not a copy of its bytes.
                .map(|(term, keys)| term.len() + keys.len() * 16)
                .sum::<usize>()
        };
        map_bytes(&inner.by_user)
            + map_bytes(&inner.by_purpose)
            + map_bytes(&inner.by_objection)
            + map_bytes(&inner.by_sharing)
            + inner.all_keys.len() * 16
            + inner.decision_eligible.len() * 16
            + inner.by_deadline.len() * 24
            + inner
                .terms
                .iter()
                .map(|(k, t)| {
                    k.len()
                        + t.user.len()
                        + t.term_lists.iter().map(|t| t.len()).sum::<usize>()
                        + 16
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use std::time::Duration;

    fn record(key: &str, user: &str, purposes: &[&str], ttl_secs: Option<u64>) -> PersonalRecord {
        let mut m = Metadata::new(
            user,
            purposes.iter().map(|s| s.to_string()).collect(),
            Duration::from_secs(ttl_secs.unwrap_or(1)),
        );
        if ttl_secs.is_none() {
            m.ttl = None;
        }
        PersonalRecord::new(key, "d", m)
    }

    #[test]
    fn upsert_and_lookup_all_dimensions() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads", "2fa"], Some(60));
        r.metadata.objections.push("ads".into());
        r.metadata.sharing.push("x-corp".into());
        idx.upsert(&r, 1_000, false);
        idx.upsert(&record("k2", "neo", &["ads"], None), 1_000, false);

        assert_eq!(idx.keys_by_user("neo"), vec!["k1", "k2"]);
        assert_eq!(idx.keys_by_purpose("ads"), vec!["k1", "k2"]);
        assert_eq!(idx.keys_by_purpose("2fa"), vec!["k1"]);
        assert_eq!(idx.keys_with_objection("ads"), vec!["k1"]);
        assert_eq!(idx.keys_shared_with("x-corp"), vec!["k1"]);
        assert_eq!(idx.deadline_of("k1"), Some(61_000));
        assert_eq!(idx.deadline_of("k2"), None);
        assert_eq!(idx.len(), 2);

        // AllowsPurpose = declared minus objecting.
        assert_eq!(
            idx.keys_for(&RecordPredicate::AllowsPurpose("ads".into())),
            Some(vec!["k2".to_string()])
        );
        // Negative predicates resolve as set differences over all_keys.
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("ads".into())),
            Some(vec!["k2".to_string()])
        );
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("spam".into())),
            Some(vec!["k1".to_string(), "k2".to_string()])
        );
        assert_eq!(
            idx.keys_for(&RecordPredicate::DecisionEligible),
            Some(vec!["k1".to_string(), "k2".to_string()])
        );
    }

    #[test]
    fn every_predicate_variant_is_index_answerable() {
        let idx = MetadataIndex::new();
        idx.upsert(&record("k1", "neo", &["ads"], None), 0, false);
        for pred in [
            RecordPredicate::User("neo".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x".into()),
        ] {
            assert!(
                idx.keys_for(&pred).is_some(),
                "{pred:?} must be index-answerable"
            );
        }
    }

    #[test]
    fn decision_opt_out_leaves_the_eligible_set() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], None);
        idx.upsert(&r, 0, false);
        assert_eq!(
            idx.keys_for(&RecordPredicate::DecisionEligible),
            Some(vec!["k1".to_string()])
        );
        r.metadata.decisions.push(Metadata::DEC_OPT_OUT.to_string());
        idx.upsert(&r, 0, false);
        assert_eq!(
            idx.keys_for(&RecordPredicate::DecisionEligible),
            Some(vec![])
        );
        // The key is still live, just ineligible.
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("ads".into())),
            Some(vec!["k1".to_string()])
        );
    }

    /// A batch applied in one lock acquisition leaves the index in exactly
    /// the state the equivalent per-record call sequence would — including
    /// keep-deadline upserts and same-key reordering within the batch.
    #[test]
    fn batch_apply_matches_per_record_sequence() {
        let per_record = MetadataIndex::new();
        let batched = MetadataIndex::new();

        let mut r1 = record("k1", "neo", &["ads"], Some(10));
        r1.metadata.objections.push("ads".into());
        let r2 = record("k2", "trinity", &["2fa"], Some(20));
        let mut r2b = r2.clone();
        r2b.metadata.sharing.push("x-corp".into());

        per_record.upsert(&r1, 0, false);
        per_record.upsert(&r2, 0, false);
        per_record.upsert(&r2b, 5_000, true); // rewrite keeping the deadline
        per_record.remove("k1");
        per_record.upsert_with_deadline(&r1, Some(42_000));

        let mut batch = IndexBatch::new();
        batch.upsert(r1.clone(), 0, false);
        batch.upsert(r2.clone(), 0, false);
        batch.upsert(r2b.clone(), 5_000, true);
        batch.remove("k1");
        batch.upsert_at(r1.clone(), Some(42_000));
        assert_eq!(batch.len(), 5);
        assert_eq!(batched.apply(batch), 5);

        for pred in [
            RecordPredicate::User("neo".into()),
            RecordPredicate::User("trinity".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x-corp".into()),
        ] {
            assert_eq!(
                batched.keys_for(&pred),
                per_record.keys_for(&pred),
                "batch and per-record disagree on {pred:?}"
            );
        }
        for key in ["k1", "k2"] {
            assert_eq!(batched.deadline_of(key), per_record.deadline_of(key));
        }
        assert_eq!(batched.deadline_of("k1"), Some(42_000));
        assert_eq!(
            batched.deadline_of("k2"),
            Some(20_000),
            "kept, not re-armed"
        );
        assert_eq!(batched.len(), per_record.len());
        assert_eq!(MetadataIndex::new().apply(IndexBatch::new()), 0);
    }

    #[test]
    fn remove_clears_every_structure() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], Some(10));
        r.metadata.objections.push("spam".into());
        r.metadata.sharing.push("x".into());
        idx.upsert(&r, 0, false);
        assert!(!idx.fully_absent("k1"));
        assert!(idx.remove("k1"));
        assert!(idx.fully_absent("k1"));
        assert!(!idx.remove("k1"), "second removal is a no-op");
        assert!(idx.is_empty());
        assert_eq!(idx.next_deadline_ms(), None);
    }

    #[test]
    fn reindex_replaces_stale_terms() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], Some(10));
        idx.upsert(&r, 0, false);
        r.metadata.user = "smith".into();
        r.metadata.purposes = vec!["2fa".into()];
        idx.upsert(&r, 0, false);
        assert!(idx.keys_by_user("neo").is_empty());
        assert_eq!(idx.keys_by_user("smith"), vec!["k1"]);
        assert!(idx.keys_by_purpose("ads").is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn deadline_preserved_across_rewrite_when_requested() {
        let idx = MetadataIndex::new();
        let r = record("k1", "neo", &["ads"], Some(10));
        idx.upsert(&r, 0, false);
        assert_eq!(idx.deadline_of("k1"), Some(10_000));
        // Rewrite later without TTL change: deadline must not slide.
        idx.upsert(&r, 5_000, true);
        assert_eq!(idx.deadline_of("k1"), Some(10_000));
        // Rewrite with TTL re-armed: deadline recomputed from now.
        idx.upsert(&r, 5_000, false);
        assert_eq!(idx.deadline_of("k1"), Some(15_000));
    }

    #[test]
    fn expiry_order_and_cutoff() {
        let idx = MetadataIndex::new();
        idx.upsert(&record("a", "u", &[], Some(5)), 0, false);
        idx.upsert(&record("b", "u", &[], Some(1)), 0, false);
        idx.upsert(&record("c", "u", &[], Some(9)), 0, false);
        idx.upsert(&record("d", "u", &[], None), 0, false);
        assert_eq!(idx.next_deadline_ms(), Some(1_000));
        assert_eq!(idx.expired_keys(4_999), vec!["b"]);
        assert_eq!(idx.expired_keys(5_000), vec!["b", "a"]);
        assert_eq!(idx.expired_keys(u64::MAX), vec!["b", "a", "c"]);
        assert!(idx.expired_keys(999).is_empty());
    }

    #[test]
    fn size_bytes_tracks_content() {
        let idx = MetadataIndex::new();
        assert_eq!(idx.size_bytes(), 0);
        idx.upsert(&record("k1", "neo", &["ads"], Some(10)), 0, false);
        let one = idx.size_bytes();
        assert!(one > 0);
        idx.upsert(
            &record("k2", "trinity", &["ads", "2fa"], Some(10)),
            0,
            false,
        );
        assert!(idx.size_bytes() > one);
        idx.clear();
        assert_eq!(idx.size_bytes(), 0);
    }
}
