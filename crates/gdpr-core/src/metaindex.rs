//! Engine-side secondary indexes over GDPR metadata.
//!
//! The paper's central performance finding is that GDPR queries are
//! *metadata-predicate* queries (by user, purpose, objection, sharing,
//! TTL), and that a store without secondary indexes on that metadata
//! answers them orders of magnitude too slowly (Figures 5a/7b: every such
//! query on Redis is a full SCAN-decrypt-parse of the keyspace). This
//! module is the retrofit: four inverted indexes — `user → keys`,
//! `purpose → keys`, `objection → keys`, `sharing → keys` — plus a
//! deadline-ordered expiry set, maintained by the compliance engine on
//! every put/rewrite/delete and invalidated by the store on every TTL
//! expiration, so predicate lookups become O(matches) instead of O(n).
//!
//! The index stores *keys only*; record payloads stay in (and are re-read
//! from) the backing store, so encrypted-at-rest data is never duplicated
//! in plaintext and a stale index entry can at worst cause one extra fetch
//! that comes back empty — the engine re-verifies every candidate against
//! the predicate before returning it (see
//! [`crate::store::RecordPredicate::matches`]).

use crate::record::PersonalRecord;
use crate::store::RecordPredicate;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};

/// What was indexed for one key — kept so removal needs no record fetch
/// (the record may already be gone from the store when invalidation runs).
#[derive(Debug, Clone, Default)]
struct IndexedTerms {
    user: String,
    purposes: Vec<String>,
    objections: Vec<String>,
    sharing: Vec<String>,
    deadline_ms: Option<u64>,
}

#[derive(Default)]
struct Inner {
    by_user: HashMap<String, BTreeSet<String>>,
    by_purpose: HashMap<String, BTreeSet<String>>,
    by_objection: HashMap<String, BTreeSet<String>>,
    by_sharing: HashMap<String, BTreeSet<String>>,
    /// `(absolute deadline ms, key)`, ordered — expired prefixes pop in
    /// O(expired · log n).
    by_deadline: BTreeSet<(u64, String)>,
    /// Per-key snapshot of the indexed terms.
    terms: HashMap<String, IndexedTerms>,
}

impl Inner {
    fn unindex(&mut self, key: &str) -> bool {
        let Some(terms) = self.terms.remove(key) else {
            return false;
        };
        detach(&mut self.by_user, &terms.user, key);
        for p in &terms.purposes {
            detach(&mut self.by_purpose, p, key);
        }
        for o in &terms.objections {
            detach(&mut self.by_objection, o, key);
        }
        for s in &terms.sharing {
            detach(&mut self.by_sharing, s, key);
        }
        if let Some(at) = terms.deadline_ms {
            self.by_deadline.remove(&(at, key.to_string()));
        }
        true
    }
}

fn detach(map: &mut HashMap<String, BTreeSet<String>>, term: &str, key: &str) {
    if let Some(set) = map.get_mut(term) {
        set.remove(key);
        if set.is_empty() {
            map.remove(term);
        }
    }
}

fn keys_of(map: &HashMap<String, BTreeSet<String>>, term: &str) -> Vec<String> {
    map.get(term)
        .map(|set| set.iter().cloned().collect())
        .unwrap_or_default()
}

/// The four inverted metadata indexes plus the TTL expiry set.
#[derive(Default)]
pub struct MetadataIndex {
    inner: RwLock<Inner>,
}

impl MetadataIndex {
    pub fn new() -> MetadataIndex {
        MetadataIndex::default()
    }

    /// Index (or re-index) a record. `now_ms` anchors the TTL deadline;
    /// with `keep_deadline`, a previously indexed deadline survives the
    /// rewrite (the store preserved the remaining TTL, so must we).
    pub fn upsert(&self, record: &PersonalRecord, now_ms: u64, keep_deadline: bool) {
        let mut inner = self.inner.write();
        let previous_deadline = inner.terms.get(&record.key).and_then(|t| t.deadline_ms);
        let deadline_ms = if keep_deadline {
            previous_deadline
        } else {
            record
                .metadata
                .ttl
                .map(|ttl| now_ms + ttl.as_millis() as u64)
        };
        Self::index_locked(&mut inner, record, deadline_ms);
    }

    /// Index a record under an explicit absolute deadline — the backfill
    /// path, where the store's own remaining deadline (not `now + declared
    /// TTL`) is authoritative for records that already existed.
    pub fn upsert_with_deadline(&self, record: &PersonalRecord, deadline_ms: Option<u64>) {
        Self::index_locked(&mut self.inner.write(), record, deadline_ms);
    }

    fn index_locked(inner: &mut Inner, record: &PersonalRecord, deadline_ms: Option<u64>) {
        inner.unindex(&record.key);
        let m = &record.metadata;
        let key = record.key.clone();
        inner
            .by_user
            .entry(m.user.clone())
            .or_default()
            .insert(key.clone());
        for p in &m.purposes {
            inner
                .by_purpose
                .entry(p.clone())
                .or_default()
                .insert(key.clone());
        }
        for o in &m.objections {
            inner
                .by_objection
                .entry(o.clone())
                .or_default()
                .insert(key.clone());
        }
        for s in &m.sharing {
            inner
                .by_sharing
                .entry(s.clone())
                .or_default()
                .insert(key.clone());
        }
        if let Some(at) = deadline_ms {
            inner.by_deadline.insert((at, key.clone()));
        }
        inner.terms.insert(
            key,
            IndexedTerms {
                user: m.user.clone(),
                purposes: m.purposes.clone(),
                objections: m.objections.clone(),
                sharing: m.sharing.clone(),
                deadline_ms,
            },
        );
    }

    /// Drop a key from every index. Returns whether it was indexed. This is
    /// the invalidation path stores call on TTL expiration.
    pub fn remove(&self, key: &str) -> bool {
        self.inner.write().unindex(key)
    }

    /// Candidate keys for a predicate, or `None` when the predicate is not
    /// answerable by inverted lookup (negations need the full record set).
    /// Candidates are a *superset-modulo-staleness* of the true matches;
    /// callers must re-verify each fetched record.
    pub fn keys_for(&self, pred: &RecordPredicate) -> Option<Vec<String>> {
        let inner = self.inner.read();
        match pred {
            RecordPredicate::User(u) => Some(keys_of(&inner.by_user, u)),
            RecordPredicate::DeclaredPurpose(p) => Some(keys_of(&inner.by_purpose, p)),
            RecordPredicate::AllowsPurpose(p) => {
                let declared = inner.by_purpose.get(p.as_str());
                let objecting = inner.by_objection.get(p.as_str());
                Some(match (declared, objecting) {
                    (None, _) => Vec::new(),
                    (Some(d), None) => d.iter().cloned().collect(),
                    (Some(d), Some(o)) => d.difference(o).cloned().collect(),
                })
            }
            RecordPredicate::SharedWith(s) => Some(keys_of(&inner.by_sharing, s)),
            // Negative predicates match "everything except ..." — an
            // inverted index cannot enumerate that in O(matches).
            RecordPredicate::NotObjecting(_) | RecordPredicate::DecisionEligible => None,
        }
    }

    /// Keys whose deadline is at or before `now_ms`, in deadline order.
    pub fn expired_keys(&self, now_ms: u64) -> Vec<String> {
        self.inner
            .read()
            .by_deadline
            .iter()
            .take_while(|(at, _)| *at <= now_ms)
            .map(|(_, key)| key.clone())
            .collect()
    }

    /// The earliest deadline currently indexed.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.inner
            .read()
            .by_deadline
            .iter()
            .next()
            .map(|(at, _)| *at)
    }

    /// The indexed deadline of one key.
    pub fn deadline_of(&self, key: &str) -> Option<u64> {
        self.inner.read().terms.get(key).and_then(|t| t.deadline_ms)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.read().terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything.
    pub fn clear(&self) {
        *self.inner.write() = Inner::default();
    }

    // ---- term-level inspection (tests, space accounting, diagnostics) ----

    pub fn keys_by_user(&self, user: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_user, user)
    }

    pub fn keys_by_purpose(&self, purpose: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_purpose, purpose)
    }

    pub fn keys_with_objection(&self, usage: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_objection, usage)
    }

    pub fn keys_shared_with(&self, party: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_sharing, party)
    }

    /// True when `key` appears in *no* inverted index and no deadline —
    /// the invariant after invalidation.
    pub fn fully_absent(&self, key: &str) -> bool {
        let inner = self.inner.read();
        !inner.terms.contains_key(key)
            && !inner.by_user.values().any(|s| s.contains(key))
            && !inner.by_purpose.values().any(|s| s.contains(key))
            && !inner.by_objection.values().any(|s| s.contains(key))
            && !inner.by_sharing.values().any(|s| s.contains(key))
            && !inner.by_deadline.iter().any(|(_, k)| k == key)
    }

    /// Approximate footprint, for space-overhead visibility (the engine's
    /// analogue of the paper's Table 3 index cost).
    pub fn size_bytes(&self) -> usize {
        let inner = self.inner.read();
        let map_bytes = |m: &HashMap<String, BTreeSet<String>>| {
            m.iter()
                .map(|(term, keys)| term.len() + keys.iter().map(|k| k.len() + 16).sum::<usize>())
                .sum::<usize>()
        };
        map_bytes(&inner.by_user)
            + map_bytes(&inner.by_purpose)
            + map_bytes(&inner.by_objection)
            + map_bytes(&inner.by_sharing)
            + inner
                .by_deadline
                .iter()
                .map(|(_, k)| k.len() + 24)
                .sum::<usize>()
            + inner
                .terms
                .iter()
                .map(|(k, t)| {
                    k.len()
                        + t.user.len()
                        + t.purposes.iter().map(String::len).sum::<usize>()
                        + t.objections.iter().map(String::len).sum::<usize>()
                        + t.sharing.iter().map(String::len).sum::<usize>()
                        + 16
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use std::time::Duration;

    fn record(key: &str, user: &str, purposes: &[&str], ttl_secs: Option<u64>) -> PersonalRecord {
        let mut m = Metadata::new(
            user,
            purposes.iter().map(|s| s.to_string()).collect(),
            Duration::from_secs(ttl_secs.unwrap_or(1)),
        );
        if ttl_secs.is_none() {
            m.ttl = None;
        }
        PersonalRecord::new(key, "d", m)
    }

    #[test]
    fn upsert_and_lookup_all_dimensions() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads", "2fa"], Some(60));
        r.metadata.objections.push("ads".into());
        r.metadata.sharing.push("x-corp".into());
        idx.upsert(&r, 1_000, false);
        idx.upsert(&record("k2", "neo", &["ads"], None), 1_000, false);

        assert_eq!(idx.keys_by_user("neo"), vec!["k1", "k2"]);
        assert_eq!(idx.keys_by_purpose("ads"), vec!["k1", "k2"]);
        assert_eq!(idx.keys_by_purpose("2fa"), vec!["k1"]);
        assert_eq!(idx.keys_with_objection("ads"), vec!["k1"]);
        assert_eq!(idx.keys_shared_with("x-corp"), vec!["k1"]);
        assert_eq!(idx.deadline_of("k1"), Some(61_000));
        assert_eq!(idx.deadline_of("k2"), None);
        assert_eq!(idx.len(), 2);

        // AllowsPurpose = declared minus objecting.
        assert_eq!(
            idx.keys_for(&RecordPredicate::AllowsPurpose("ads".into())),
            Some(vec!["k2".to_string()])
        );
        // Negative predicates are not index-answerable.
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("ads".into())),
            None
        );
        assert_eq!(idx.keys_for(&RecordPredicate::DecisionEligible), None);
    }

    #[test]
    fn remove_clears_every_structure() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], Some(10));
        r.metadata.objections.push("spam".into());
        r.metadata.sharing.push("x".into());
        idx.upsert(&r, 0, false);
        assert!(!idx.fully_absent("k1"));
        assert!(idx.remove("k1"));
        assert!(idx.fully_absent("k1"));
        assert!(!idx.remove("k1"), "second removal is a no-op");
        assert!(idx.is_empty());
        assert_eq!(idx.next_deadline_ms(), None);
    }

    #[test]
    fn reindex_replaces_stale_terms() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], Some(10));
        idx.upsert(&r, 0, false);
        r.metadata.user = "smith".into();
        r.metadata.purposes = vec!["2fa".into()];
        idx.upsert(&r, 0, false);
        assert!(idx.keys_by_user("neo").is_empty());
        assert_eq!(idx.keys_by_user("smith"), vec!["k1"]);
        assert!(idx.keys_by_purpose("ads").is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn deadline_preserved_across_rewrite_when_requested() {
        let idx = MetadataIndex::new();
        let r = record("k1", "neo", &["ads"], Some(10));
        idx.upsert(&r, 0, false);
        assert_eq!(idx.deadline_of("k1"), Some(10_000));
        // Rewrite later without TTL change: deadline must not slide.
        idx.upsert(&r, 5_000, true);
        assert_eq!(idx.deadline_of("k1"), Some(10_000));
        // Rewrite with TTL re-armed: deadline recomputed from now.
        idx.upsert(&r, 5_000, false);
        assert_eq!(idx.deadline_of("k1"), Some(15_000));
    }

    #[test]
    fn expiry_order_and_cutoff() {
        let idx = MetadataIndex::new();
        idx.upsert(&record("a", "u", &[], Some(5)), 0, false);
        idx.upsert(&record("b", "u", &[], Some(1)), 0, false);
        idx.upsert(&record("c", "u", &[], Some(9)), 0, false);
        idx.upsert(&record("d", "u", &[], None), 0, false);
        assert_eq!(idx.next_deadline_ms(), Some(1_000));
        assert_eq!(idx.expired_keys(4_999), vec!["b"]);
        assert_eq!(idx.expired_keys(5_000), vec!["b", "a"]);
        assert_eq!(idx.expired_keys(u64::MAX), vec!["b", "a", "c"]);
        assert!(idx.expired_keys(999).is_empty());
    }

    #[test]
    fn size_bytes_tracks_content() {
        let idx = MetadataIndex::new();
        assert_eq!(idx.size_bytes(), 0);
        idx.upsert(&record("k1", "neo", &["ads"], Some(10)), 0, false);
        let one = idx.size_bytes();
        assert!(one > 0);
        idx.upsert(
            &record("k2", "trinity", &["ads", "2fa"], Some(10)),
            0,
            false,
        );
        assert!(idx.size_bytes() > one);
        idx.clear();
        assert_eq!(idx.size_bytes(), 0);
    }
}
