//! The narrow storage interface the compliance engine drives.
//!
//! [`crate::engine::ComplianceEngine`] owns everything GDPR — authorization,
//! record visibility, audit logging, and the full [`crate::GdprQuery`]
//! dispatch — exactly once. What remains per backend is this trait: fetch,
//! put, rewrite, delete, scan, expiry purge, and space accounting, plus two
//! optional predicate-pushdown hooks for stores (like the relational one)
//! that can evaluate metadata predicates natively against their own
//! secondary indexes.

use crate::compliance::FeatureReport;
use crate::connector::SpaceReport;
use crate::error::GdprResult;
use crate::record::PersonalRecord;
use clock::SharedClock;
use std::sync::Arc;

/// A metadata predicate over personal records — the selection forms the
/// GDPR query taxonomy needs (§3.3 of the paper). Every metadata-conditioned
/// query reduces to exactly one of these, so backends and the
/// [`crate::metaindex::MetadataIndex`] only ever answer this closed set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordPredicate {
    /// Records belonging to a data subject (`USR = user`).
    User(String),
    /// Records that *declare* a purpose (`purpose ∈ PUR`), regardless of
    /// objections — the deletion/update grouping of G5.1b and G13.3.
    DeclaredPurpose(String),
    /// Records *usable* for a purpose: declared and not objected to
    /// (`purpose ∈ PUR ∧ purpose ∉ OBJ`) — the canonical READ-DATA-BY-PUR
    /// semantics (G5.1b + G21); see the conformance suite, which pins this
    /// behaviour for every backend.
    AllowsPurpose(String),
    /// Records whose subject has *not* objected to a usage (`usage ∉ OBJ`).
    NotObjecting(String),
    /// Records eligible for automated decision-making (no G22 opt-out).
    DecisionEligible,
    /// Records shared with a third party (`party ∈ SHR`).
    SharedWith(String),
}

impl RecordPredicate {
    /// Evaluate against one record. This is the reference semantics: index
    /// and pushdown paths must agree with a full scan filtered by this.
    pub fn matches(&self, record: &PersonalRecord) -> bool {
        let m = &record.metadata;
        match self {
            RecordPredicate::User(user) => m.user == *user,
            RecordPredicate::DeclaredPurpose(p) => m.purposes.iter().any(|x| x == p),
            RecordPredicate::AllowsPurpose(p) => m.allows_purpose(p),
            RecordPredicate::NotObjecting(usage) => !m.objections.iter().any(|o| o == usage),
            RecordPredicate::DecisionEligible => m.allows_automated_decisions(),
            RecordPredicate::SharedWith(party) => m.sharing.iter().any(|s| s == party),
        }
    }
}

/// Callback invoked (with the logical record key) when the store itself
/// expires a record — lazily on access or in an active expiration cycle —
/// so engine-side index entries can be invalidated.
pub type ExpiryListener = Arc<dyn Fn(&str) + Send + Sync>;

/// A storage backend for personal records.
///
/// Implementations are *mechanism only*: no authorization, no audit, no
/// query dispatch — [`crate::engine::ComplianceEngine`] provides those. The
/// required methods are deliberately narrow; the two `Option`-returning
/// hooks let a backend push predicate evaluation down to native indexes
/// (returning `None` falls back to the engine's index or full scan).
pub trait RecordStore: Send + Sync {
    /// The clock the backend runs on (drives audit timestamps and TTLs).
    fn clock(&self) -> SharedClock;

    /// Point lookup.
    ///
    /// Expiry enforcement is the backend's own: the key-value store hides
    /// past-due records immediately (lazy-on-access reaping), while the
    /// relational store serves rows until its sweep daemon's next pass —
    /// exactly the paper's retrofit designs, whose timeliness gap is the
    /// subject of its Figure 3a. Callers needing strict timeliness run the
    /// respective expiry machinery (strict cycles / `TtlDaemon`).
    fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>>;

    /// Insert a fresh record, arming its TTL. Fails with
    /// [`crate::GdprError::AlreadyExists`] on key collision — collision
    /// detection is the backend's job (the engine does not pre-fetch).
    fn put(&self, record: &PersonalRecord) -> GdprResult<()>;

    /// Rewrite an existing record in place. When `ttl_changed` is false the
    /// record's original expiry deadline is preserved; when true the
    /// deadline is re-armed from `record.metadata.ttl`.
    fn rewrite(&self, record: &PersonalRecord, ttl_changed: bool) -> GdprResult<()>;

    /// Erase one record. Returns whether it existed.
    fn delete(&self, key: &str) -> GdprResult<bool>;

    /// Every live record — the O(n) path the engine uses when neither
    /// pushdown nor a metadata index can answer a predicate.
    fn scan(&self) -> GdprResult<Vec<PersonalRecord>>;

    /// Synchronously erase every record past its TTL deadline, returning
    /// how many were reaped (DELETE-RECORD-BY-TTL without engine indexes).
    ///
    /// Deadlines are **inclusive**: a record whose deadline equals the
    /// current instant is already expired. Every expiry path in the
    /// workspace — this purge, lazy-on-access reaping, active cycles, the
    /// relational sweep daemon, and
    /// [`crate::metaindex::MetadataIndex::expired_keys`] — must agree on
    /// this boundary, or an index-driven purge and a scan-driven purge
    /// would delete different sets at the boundary instant (pinned by the
    /// conformance suite's boundary test).
    fn purge_expired(&self) -> GdprResult<usize>;

    /// Every key whose native deadline has already lapsed, **without
    /// reaping anything** — the multi-tenant purge path uses this to count
    /// and erase one tenant's expired records itself. The default derives
    /// the set from [`Self::scan`] + [`Self::deadline_ms`], which is
    /// correct for backends that serve past-due rows until their own sweep
    /// runs (the relational store). Backends whose reads lazily reap (the
    /// key-value store: a GET destroys the record *and* its deadline, so a
    /// scan-derived set silently loses every expired key) must override
    /// with a genuinely side-effect-free enumeration.
    fn expired_keys(&self) -> GdprResult<Vec<String>> {
        let now_ms = self.clock().now().as_millis();
        Ok(self
            .scan()?
            .into_iter()
            .map(|record| record.key)
            .filter(|key| {
                self.deadline_ms(key)
                    .is_some_and(|deadline| deadline <= now_ms)
            })
            .collect())
    }

    /// The store's own absolute expiry deadline for `key`, in milliseconds
    /// on [`Self::clock`], when it tracks one natively. `None` means
    /// unknown — callers fall back to deriving a deadline from the
    /// record's declared TTL. Index backfill uses this so pre-existing
    /// records keep their *remaining* lifetime instead of being re-armed
    /// with the full declared TTL. The instant `deadline_ms == now` counts
    /// as expired (inclusive boundary; see [`Self::purge_expired`]).
    fn deadline_ms(&self, key: &str) -> Option<u64> {
        let _ = key;
        None
    }

    /// Insert a record whose expiry deadline is already known in absolute
    /// milliseconds on [`Self::clock`] — the shard-rebalance path, where a
    /// record migrates between stores and must keep its *remaining*
    /// lifetime rather than being re-armed with the full declared TTL
    /// (which would retain personal data up to twice as long). Backends
    /// that track native deadlines should override; the default arms from
    /// the declared TTL, which is correct for stores with no native expiry
    /// tracking (their engine index carries the deadline instead).
    fn put_with_deadline(
        &self,
        record: &PersonalRecord,
        deadline_ms: Option<u64>,
    ) -> GdprResult<()> {
        let _ = deadline_ms;
        self.put(record)
    }

    /// A monotone stamp of the store's *persisted mutation state* — the
    /// key-value backend's AOF write-frame sequence, the relational
    /// backend's WAL statement position. Two requirements make it usable
    /// as the generation stamp of an index snapshot
    /// ([`crate::snapshot`]):
    ///
    /// 1. every committed mutation advances it, however it entered the
    ///    store (through the engine or behind its back), and
    /// 2. replaying the store's persistence log reproduces the exact
    ///    value the live store had when the log was written.
    ///
    /// `None` (the default) means the store cannot stamp its state; index
    /// snapshots over such a store are written unstamped and are never
    /// trusted on restore — recovery always rebuilds.
    fn persistence_generation(&self) -> Option<u64> {
        None
    }

    /// Predicate pushdown for reads: `Some(records)` if the backend can
    /// evaluate `pred` natively (e.g. relational secondary indexes),
    /// `None` to let the engine resolve it.
    fn select(&self, pred: &RecordPredicate) -> Option<GdprResult<Vec<PersonalRecord>>> {
        let _ = pred;
        None
    }

    /// Predicate pushdown for deletes: `Some(count)` if the backend erased
    /// all matching records itself.
    fn delete_matching(&self, pred: &RecordPredicate) -> Option<GdprResult<usize>> {
        let _ = pred;
        None
    }

    /// Register a callback for store-side expirations. Backends whose store
    /// reaps TTLs autonomously (lazy-on-access, background cycles) must
    /// invoke it per reaped record; backends that only delete through the
    /// engine may keep the default no-op.
    fn on_expiry(&self, listener: ExpiryListener) {
        let _ = listener;
    }

    /// Space accounting for the Table 3 metric.
    fn space_report(&self) -> SpaceReport;

    /// Live record count (scale experiments).
    fn record_count(&self) -> usize;

    /// The backend's compliance capability posture.
    fn features(&self) -> FeatureReport;

    /// Backend name (`redis`, `postgres`, ...).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use std::time::Duration;

    fn record() -> PersonalRecord {
        let mut m = Metadata::new(
            "neo",
            vec!["ads".into(), "2fa".into()],
            Duration::from_secs(60),
        );
        m.objections.push("ads".into());
        m.sharing.push("x-corp".into());
        PersonalRecord::new("k1", "d", m)
    }

    #[test]
    fn predicate_reference_semantics() {
        let r = record();
        assert!(RecordPredicate::User("neo".into()).matches(&r));
        assert!(!RecordPredicate::User("smith".into()).matches(&r));
        assert!(RecordPredicate::DeclaredPurpose("ads".into()).matches(&r));
        assert!(
            !RecordPredicate::AllowsPurpose("ads".into()).matches(&r),
            "objection vetoes"
        );
        assert!(RecordPredicate::AllowsPurpose("2fa".into()).matches(&r));
        assert!(!RecordPredicate::NotObjecting("ads".into()).matches(&r));
        assert!(RecordPredicate::NotObjecting("sales".into()).matches(&r));
        assert!(RecordPredicate::DecisionEligible.matches(&r));
        assert!(RecordPredicate::SharedWith("x-corp".into()).matches(&r));
        assert!(!RecordPredicate::SharedWith("y-corp".into()).matches(&r));
    }
}
