//! The GDPR-layer audit trail (G30, G33).
//!
//! Connectors record one event per executed query: who (role/actor), what
//! (query class and detail), when, and the outcome. Regulators retrieve
//! slices of this trail with GET-SYSTEM-LOGS; breach notification (G33.3a)
//! needs the same trail to report affected subjects. The *store-level*
//! operation logs (kvstore's AOF, relstore's query log) sit underneath this
//! and capture raw commands; this trail is the per-query, per-actor view.

use crate::response::LogLine;
use crate::role::Session;
use clock::SharedClock;
use parking_lot::Mutex;

/// One audited query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    pub timestamp_ms: u64,
    pub role: String,
    /// Customer user id or processor purpose, when present.
    pub actor: String,
    /// Query class name (e.g. `read-data-by-usr`).
    pub operation: String,
    /// Scope detail (key, user, purpose...).
    pub detail: String,
    /// `ok` or the error rendering.
    pub outcome: String,
    /// Records touched/returned.
    pub cardinality: usize,
}

/// A not-yet-timestamped audit entry: everything [`AuditTrail::record`]
/// derives from a session and an outcome, minus the clock read. Batch
/// execution builds one draft per op and commits them with
/// [`AuditTrail::record_batch`] — one clock read and one lock acquisition
/// per batch instead of per op.
#[derive(Debug, Clone)]
pub struct AuditDraft {
    pub role: String,
    pub actor: String,
    pub operation: String,
    pub detail: String,
    pub outcome: String,
    pub cardinality: usize,
}

impl AuditDraft {
    /// Build a draft exactly as [`AuditTrail::record`] would render it.
    pub fn new(
        session: &Session,
        operation: &str,
        detail: String,
        outcome: Result<usize, &str>,
    ) -> AuditDraft {
        let actor = session
            .user
            .clone()
            .or_else(|| session.purpose.clone())
            .unwrap_or_default();
        let (outcome, cardinality) = match outcome {
            Ok(n) => ("ok".to_string(), n),
            Err(e) => (e.to_string(), 0),
        };
        AuditDraft {
            role: session.role.name().to_string(),
            actor,
            operation: operation.to_string(),
            detail,
            outcome,
            cardinality,
        }
    }
}

/// An append-only audit trail.
pub struct AuditTrail {
    clock: SharedClock,
    events: Mutex<Vec<AuditEvent>>,
}

impl AuditTrail {
    pub fn new(clock: SharedClock) -> Self {
        AuditTrail {
            clock,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Record one query execution.
    pub fn record(
        &self,
        session: &Session,
        operation: &str,
        detail: String,
        outcome: Result<usize, &str>,
    ) {
        self.record_batch(vec![AuditDraft::new(session, operation, detail, outcome)]);
    }

    /// Record a batch of query executions, in draft order, under one
    /// clock read and one lock acquisition. Every event carries the same
    /// timestamp: the batch was one submission instant.
    pub fn record_batch(&self, drafts: Vec<AuditDraft>) {
        if drafts.is_empty() {
            return;
        }
        let timestamp_ms = self.clock.now().as_millis();
        let mut events = self.events.lock();
        for draft in drafts {
            events.push(AuditEvent {
                timestamp_ms,
                role: draft.role,
                actor: draft.actor,
                operation: draft.operation,
                detail: draft.detail,
                outcome: draft.outcome,
                cardinality: draft.cardinality,
            });
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events within `[from_ms, to_ms]`, rendered as log lines — the
    /// GET-SYSTEM-LOGS response (G33, G34).
    pub fn lines_between(&self, from_ms: u64, to_ms: u64) -> Vec<LogLine> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.timestamp_ms >= from_ms && e.timestamp_ms <= to_ms)
            .map(|e| LogLine {
                timestamp_ms: e.timestamp_ms,
                actor: format!("{}:{}", e.role, e.actor),
                operation: e.operation.clone(),
                detail: format!("{} [{}] n={}", e.detail, e.outcome, e.cardinality),
            })
            .collect()
    }

    /// Events touching a given user id — breach-notification support
    /// (G33.3a: report the subjects affected).
    pub fn events_for_actor(&self, actor: &str) -> Vec<AuditEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.actor == actor || e.detail.contains(actor))
            .cloned()
            .collect()
    }

    /// Approximate bytes held by the trail (it competes for the space
    /// overhead metric too).
    pub fn size_bytes(&self) -> usize {
        self.events
            .lock()
            .iter()
            .map(|e| {
                e.role.len()
                    + e.actor.len()
                    + e.operation.len()
                    + e.detail.len()
                    + e.outcome.len()
                    + 24
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_and_filters_by_time() {
        let sim = clock::sim();
        let trail = AuditTrail::new(sim.clone());
        trail.record(
            &Session::customer("neo"),
            "read-data-by-usr",
            "usr=neo".into(),
            Ok(3),
        );
        sim.advance(Duration::from_millis(1000));
        trail.record(
            &Session::processor("ads"),
            "read-data-by-pur",
            "pur=ads".into(),
            Ok(10),
        );
        sim.advance(Duration::from_millis(1000));
        trail.record(
            &Session::customer("smith"),
            "delete-record-by-key",
            "key=k9".into(),
            Err("access denied"),
        );

        assert_eq!(trail.len(), 3);
        let window = trail.lines_between(500, 1500);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].actor, "processor:ads");
        assert!(window[0].detail.contains("n=10"));
        let all = trail.lines_between(0, u64::MAX);
        assert!(all[2].detail.contains("access denied"));
    }

    #[test]
    fn actor_filter_supports_breach_reporting() {
        let trail = AuditTrail::new(clock::sim());
        trail.record(
            &Session::customer("neo"),
            "read-data-by-usr",
            "usr=neo".into(),
            Ok(1),
        );
        trail.record(
            &Session::controller(),
            "delete-record-by-usr",
            "usr=neo".into(),
            Ok(4),
        );
        trail.record(
            &Session::customer("smith"),
            "read-data-by-usr",
            "usr=smith".into(),
            Ok(1),
        );
        let neo_events = trail.events_for_actor("neo");
        assert_eq!(neo_events.len(), 2);
    }

    #[test]
    fn batch_records_share_one_timestamp_in_order() {
        let sim = clock::sim();
        let trail = AuditTrail::new(sim.clone());
        sim.advance(Duration::from_millis(250));
        trail.record_batch(vec![
            AuditDraft::new(
                &Session::customer("neo"),
                "read-data-by-key",
                "key=a".into(),
                Ok(1),
            ),
            AuditDraft::new(
                &Session::controller(),
                "create-record",
                "key=b".into(),
                Err("boom"),
            ),
        ]);
        let lines = trail.lines_between(0, u64::MAX);
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.timestamp_ms == 250));
        assert_eq!(lines[0].operation, "read-data-by-key");
        assert!(lines[1].detail.contains("boom"));
    }

    #[test]
    fn size_grows() {
        let trail = AuditTrail::new(clock::sim());
        assert_eq!(trail.size_bytes(), 0);
        trail.record(
            &Session::regulator(),
            "get-system-logs",
            "range".into(),
            Ok(0),
        );
        assert!(trail.size_bytes() > 0);
    }
}
