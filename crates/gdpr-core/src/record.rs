//! Personal data records and their GDPR metadata — the paper's "metadata
//! explosion" made concrete (§3.1).
//!
//! Every record pairs a `<Key>` and `<Data>` with seven metadata attributes:
//!
//! | attr | article(s) | meaning |
//! |------|-----------|---------|
//! | PUR  | G5(1b)    | purposes the data may be used for |
//! | TTL  | G5(1e), G13(2a) | how long it may be kept |
//! | USR  | G15       | the person it concerns |
//! | OBJ  | G21       | purposes the person has objected to |
//! | DEC  | G15(1), G22 | automated decisions it was used in |
//! | SHR  | G13, G14  | third parties it has been shared with |
//! | SRC  | G13, G14  | how it was originally procured |

use std::time::Duration;

/// The seven-attribute GDPR metadata block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metadata {
    /// Purposes the data was collected for (PUR).
    pub purposes: Vec<String>,
    /// Time-to-live from creation (TTL). `None` means the record has no
    /// expiry — note that a compliant controller must set one (G5.1e).
    pub ttl: Option<Duration>,
    /// The data subject the record concerns (USR).
    pub user: String,
    /// Purposes the subject has objected to (OBJ) — a per-record blacklist.
    pub objections: Vec<String>,
    /// Automated decisions this record participated in (DEC). The special
    /// marker [`Metadata::DEC_OPT_OUT`] records a G22 withdrawal.
    pub decisions: Vec<String>,
    /// Third parties the record has been shared with (SHR).
    pub sharing: Vec<String>,
    /// Origin of the record (SRC), e.g. `first-party`.
    pub source: String,
}

impl Metadata {
    /// DEC marker meaning the subject has withdrawn from automated
    /// decision-making entirely (G22).
    pub const DEC_OPT_OUT: &'static str = "opt-out";

    /// A minimal compliant metadata block.
    pub fn new(user: impl Into<String>, purposes: Vec<String>, ttl: Duration) -> Metadata {
        Metadata {
            purposes,
            ttl: Some(ttl),
            user: user.into(),
            objections: Vec::new(),
            decisions: Vec::new(),
            sharing: Vec::new(),
            source: "first-party".to_string(),
        }
    }

    /// May this record be used for `purpose`? True only when the purpose was
    /// declared at collection (G5.1b) and the subject has not objected
    /// (G21).
    pub fn allows_purpose(&self, purpose: &str) -> bool {
        self.purposes.iter().any(|p| p == purpose) && !self.objections.iter().any(|o| o == purpose)
    }

    /// May this record feed automated decision-making (G22)?
    pub fn allows_automated_decisions(&self) -> bool {
        !self.decisions.iter().any(|d| d == Self::DEC_OPT_OUT)
    }

    /// Approximate metadata footprint in bytes (the Table 3 numerator's
    /// metadata share).
    pub fn size_bytes(&self) -> usize {
        let lists = [
            &self.purposes,
            &self.objections,
            &self.decisions,
            &self.sharing,
        ];
        lists
            .iter()
            .map(|l| l.iter().map(String::len).sum::<usize>() + l.len())
            .sum::<usize>()
            + self.user.len()
            + self.source.len()
            + 8 // TTL
    }
}

/// One personal data record: key, data, and GDPR metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonalRecord {
    /// Unique identifier (e.g. `ph-1x4b`).
    pub key: String,
    /// The personal data payload (e.g. `123-456-7890`).
    pub data: String,
    /// The seven-attribute metadata block.
    pub metadata: Metadata,
}

impl PersonalRecord {
    pub fn new(key: impl Into<String>, data: impl Into<String>, metadata: Metadata) -> Self {
        PersonalRecord {
            key: key.into(),
            data: data.into(),
            metadata,
        }
    }

    /// Bytes of personal data proper (the Table 3 denominator).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total record footprint: key + data + metadata.
    pub fn total_bytes(&self) -> usize {
        self.key.len() + self.data.len() + self.metadata.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Metadata {
        Metadata {
            purposes: vec!["ads".into(), "2fa".into()],
            ttl: Some(Duration::from_secs(365 * 24 * 3600)),
            user: "neo".into(),
            objections: vec!["ads".into()],
            decisions: vec![],
            sharing: vec!["dex-corp".into()],
            source: "first-party".into(),
        }
    }

    #[test]
    fn purpose_check_requires_declaration_and_no_objection() {
        let m = meta();
        assert!(m.allows_purpose("2fa"));
        assert!(
            !m.allows_purpose("ads"),
            "objection must veto a declared purpose"
        );
        assert!(
            !m.allows_purpose("analytics"),
            "undeclared purpose is never allowed"
        );
    }

    #[test]
    fn decision_opt_out() {
        let mut m = meta();
        assert!(m.allows_automated_decisions());
        m.decisions.push(Metadata::DEC_OPT_OUT.to_string());
        assert!(!m.allows_automated_decisions());
    }

    #[test]
    fn constructor_defaults() {
        let m = Metadata::new("trinity", vec!["2fa".into()], Duration::from_secs(60));
        assert_eq!(m.user, "trinity");
        assert_eq!(m.source, "first-party");
        assert!(m.objections.is_empty());
        assert_eq!(m.ttl, Some(Duration::from_secs(60)));
    }

    #[test]
    fn size_accounting() {
        let record = PersonalRecord::new("ph-1", "123-456-7890", meta());
        assert_eq!(record.data_bytes(), 12);
        assert!(record.total_bytes() > record.data_bytes());
        // Metadata overshadows the data itself — the paper's observation.
        assert!(record.metadata.size_bytes() > record.data_bytes());
    }
}
