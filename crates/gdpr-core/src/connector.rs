//! The DB interface layer: the trait every database binding implements —
//! the equivalent of the per-store client stubs in the paper's GDPRbench
//! architecture (Figure 2b).

use crate::compliance::FeatureReport;
use crate::error::GdprResult;
use crate::query::GdprQuery;
use crate::response::GdprResponse;
use crate::role::Session;
use crate::telemetry::OpTelemetrySnapshot;
use crate::tenant::TenantId;

/// Space accounting for the Table 3 metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceReport {
    /// Bytes of personal data proper (the `<Data>` payloads).
    pub personal_data_bytes: usize,
    /// Total bytes the store holds for those records (data + metadata +
    /// index structures + audit state).
    pub total_bytes: usize,
}

impl SpaceReport {
    /// Total ÷ personal — always > 1 for a GDPR store ("metadata explosion").
    pub fn overhead_factor(&self) -> f64 {
        if self.personal_data_bytes == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / self.personal_data_bytes as f64
    }
}

/// A GDPR-compliant database binding.
///
/// Implementations are expected to:
/// * enforce [`crate::acl::authorize`] and [`crate::acl::record_visible`]
///   on every call,
/// * maintain an audit trail serving `GetSystemLogs`,
/// * respond to `GetSystemFeatures` with an honest [`FeatureReport`].
pub trait GdprConnector: Send + Sync {
    /// Execute one GDPR query under a session.
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse>;

    /// Execute a batch of queries, in order, returning one result per op
    /// (same positions). Semantics must be indistinguishable from calling
    /// [`GdprConnector::execute`] sequentially — per-op responses, per-op
    /// errors, audit entries in op order — but implementations may
    /// amortize per-call overhead (lock acquisitions, audit commits,
    /// shard routing) across the batch. The default does the sequential
    /// thing.
    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        ops.iter()
            .map(|(session, query)| self.execute(session, query))
            .collect()
    }

    /// The store's compliance capability report.
    fn features(&self) -> FeatureReport;

    /// Space accounting for the space-overhead metric.
    fn space_report(&self) -> SpaceReport;

    /// Live personal-data records (DBSIZE-equivalent, for scale experiments).
    fn record_count(&self) -> usize;

    /// Human-readable connector name (e.g. `redis`, `postgres`,
    /// `postgres-mi`).
    fn name(&self) -> &str;

    /// Graceful shutdown hook: flush whatever durable state the connector
    /// keeps outside the store's own persistence — today, the metadata
    /// index snapshot of the snapshot-aware variants. Default no-op;
    /// callers (e.g. `gdpr-serve`) invoke it exactly once on a clean
    /// exit, and implementations must tolerate repeated calls.
    fn close(&self) -> GdprResult<()> {
        Ok(())
    }

    /// A snapshot of this connector's per-opcode telemetry, when it keeps
    /// one. The local engines override this; remote/proxy connectors keep
    /// the default `None` (their server owns the authoritative counters —
    /// fetch them with the `GetMetrics` wire op instead).
    fn op_telemetry(&self) -> Option<OpTelemetrySnapshot> {
        None
    }

    /// Telemetry scoped to one tenant. The wire `GetMetrics` handler uses
    /// this so a tenant only ever reads its own counters. The default
    /// falls back to the deployment-wide view, which is correct for
    /// single-tenant connectors where the default tenant is the only one.
    fn op_telemetry_for(&self, _tenant: &TenantId) -> Option<OpTelemetrySnapshot> {
        self.op_telemetry()
    }

    /// Per-tenant telemetry snapshots, labeled for Prometheus export
    /// (`"default"` first, then named tenants in name order). Connectors
    /// without per-tenant counters return nothing.
    fn tenant_telemetry(&self) -> Vec<(String, OpTelemetrySnapshot)> {
        Vec::new()
    }

    /// Pre-create a tenant's partition (index, audit trail, telemetry) so
    /// first use doesn't pay the lazy-creation backfill. Default no-op.
    fn provision_tenant(&self, _tenant: &TenantId) -> GdprResult<()> {
        Ok(())
    }
}

/// A shareable handle to any engine/connector — what a network front-end
/// serves and what the bench layer drives. The server crate accepts one of
/// these, so every connector variant (`redis`, `redis-mi`, `redis-sharded`,
/// `postgres`, ...) is servable without the server knowing any backend.
pub type EngineHandle = std::sync::Arc<dyn GdprConnector>;

/// A shared handle is a connector: callers that hold an [`EngineHandle`]
/// (the server, fixtures that serve and drive the same engine) use it
/// wherever a connector is expected.
impl<T: GdprConnector + ?Sized> GdprConnector for std::sync::Arc<T> {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        (**self).execute(session, query)
    }

    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        (**self).execute_batch(ops)
    }

    fn features(&self) -> FeatureReport {
        (**self).features()
    }

    fn space_report(&self) -> SpaceReport {
        (**self).space_report()
    }

    fn record_count(&self) -> usize {
        (**self).record_count()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn close(&self) -> GdprResult<()> {
        (**self).close()
    }

    fn op_telemetry(&self) -> Option<OpTelemetrySnapshot> {
        (**self).op_telemetry()
    }

    fn op_telemetry_for(&self, tenant: &TenantId) -> Option<OpTelemetrySnapshot> {
        (**self).op_telemetry_for(tenant)
    }

    fn tenant_telemetry(&self) -> Vec<(String, OpTelemetrySnapshot)> {
        (**self).tenant_telemetry()
    }

    fn provision_tenant(&self, tenant: &TenantId) -> GdprResult<()> {
        (**self).provision_tenant(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_factor() {
        let r = SpaceReport {
            personal_data_bytes: 10,
            total_bytes: 35,
        };
        assert!((r.overhead_factor() - 3.5).abs() < 1e-9);
        let zero = SpaceReport::default();
        assert_eq!(zero.overhead_factor(), 0.0);
    }
}
