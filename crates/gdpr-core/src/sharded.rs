//! The sharded compliance engine: a hash-partition router over N inner
//! [`ComplianceEngine`]s, lifting the single-engine choke point toward the
//! millions-of-users traffic the roadmap targets.
//!
//! Every query in the §3.3 taxonomy is either *key-scoped* or
//! *metadata-predicate-scoped*, and that dichotomy is the whole routing
//! story:
//!
//! * **Point ops** (`CREATE-RECORD`, `*-BY-KEY`, `verify-deletion`) hash
//!   the key with [`shard_of`] and run on the owning shard only — the hot
//!   path pays one stable hash and then touches one shard's locks, so
//!   disjoint keys proceed in parallel instead of serializing through one
//!   global engine lock.
//! * **Predicate ops** (`*-BY-USR/PUR/OBJ/DEC/SHR`, `DELETE-RECORD-BY-TTL`)
//!   fan out to every shard and merge: counts sum, result sets concatenate
//!   and sort by key, so the response is deterministic whatever the shard
//!   topology. Read fan-out runs the shard probes *in parallel* on a
//!   per-engine worker pool (write fan-out stays sequential to preserve
//!   partial-failure semantics); the merge collects into shard-order slots
//!   first, so parallelism never leaks into the response. This is what
//!   makes shard count an *invisible* deployment knob:
//!   `ShardedEngine{N=1,2,8}` and the unsharded engine answer every query
//!   identically (pinned by `tests/proptests.rs`).
//!
//! Compliance semantics stay centralized: each shard *is* a full
//! [`ComplianceEngine`] (authorization, visibility, per-shard
//! [`crate::MetadataIndex`], TTL scrubbing), while the router keeps the one
//! unified [`AuditTrail`] — shards execute through the engine's internal
//! dispatch, so a fanned-out query still audits as a single G30 event and
//! `GET-SYSTEM-LOGS` reads one stream in execution order.
//!
//! Reopening persisted shards is guarded: the key→shard map depends only on
//! [`shard_of`], so a restart with a different shard count leaves records
//! in shards that no longer own them. [`ShardedEngine::verify_placement`]
//! turns that into a loud [`GdprError::ShardMisroute`] instead of silent
//! lookup misses, and [`ShardedEngine::rebalance`] migrates records to
//! their owners (preserving remaining TTL deadlines via
//! [`RecordStore::put_with_deadline`]).

use crate::audit::{AuditDraft, AuditTrail};
use crate::compliance::FeatureReport;
use crate::connector::SpaceReport;
use crate::engine::{audit_draft, ComplianceEngine};
use crate::error::{GdprError, GdprResult};
use crate::metaindex::IndexBatch;
use crate::query::{GdprQuery, MetadataUpdate};
use crate::response::GdprResponse;
use crate::role::Session;
use crate::store::{RecordPredicate, RecordStore};
use crate::telemetry::{OpTelemetry, OpTelemetrySnapshot};
use crate::tenant::TenantId;
use crate::GdprConnector;
use clock::SharedClock;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// The stable key→shard map: FNV-1a over the key bytes, mod `shard_count`.
/// Deliberately *not* a randomized hasher — the placement must be identical
/// across processes and restarts, or a reopened deployment would look up
/// keys in the wrong shard.
pub fn shard_of(key: &str, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shard_count as u64) as usize
}

/// The deployment's shard count from the `GDPR_SHARDS` environment
/// variable (CI runs the suite at 1 and 8 to enforce shard-count
/// invariance), defaulting to 4 and clamped to at least 1.
pub fn shard_count_from_env() -> usize {
    std::env::var("GDPR_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

/// A long-lived worker pool for predicate fan-out: one `FanoutPool` per
/// sharded engine, `min(shards, cores)` threads, fed boxed jobs over an
/// mpsc channel. Hand-rolled on threads + a shared receiver because the
/// offline build has no executor crate — the same reason the server
/// crate's connection pool is hand-rolled.
struct FanoutPool {
    sender: Mutex<Option<mpsc::Sender<FanJob>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

type FanJob = Box<dyn FnOnce() + Send + 'static>;

impl FanoutPool {
    fn new(threads: usize) -> FanoutPool {
        let (sender, receiver) = mpsc::channel::<FanJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Hold the lock only to dequeue; run the job unlocked so
                    // shard probes genuinely overlap.
                    let job = match receiver.lock().recv() {
                        Ok(job) => job,
                        Err(_) => return, // pool dropped
                    };
                    job();
                })
            })
            .collect();
        FanoutPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(workers),
        }
    }

    fn submit(&self, job: FanJob) {
        if let Some(sender) = self.sender.lock().as_ref() {
            // Send can only fail after shutdown, which drops the receiver —
            // and shutdown happens strictly after the last submit.
            let _ = sender.send(job);
        }
    }
}

impl Drop for FanoutPool {
    fn drop(&mut self) {
        // Closing the channel is the shutdown signal; workers drain what
        // was already queued and exit on the recv error.
        *self.sender.lock() = None;
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// One tenant's router-side state: the unified audit stream (exactly one
/// event per executed query, whatever its fan-out — shards never audit on
/// their own) and the per-opcode telemetry table. Mirrors the unsharded
/// engine's per-tenant partitioning, so `GET-SYSTEM-LOGS` and `GetMetrics`
/// isolation hold identically behind a router.
struct RouterTenantState {
    audit: AuditTrail,
    telemetry: Arc<OpTelemetry>,
}

/// The router's tenant table: the default tenant's state is resolved
/// lock-free (the single-tenant hot path); named tenants go through one
/// RwLock-guarded map. Creation never fails — a [`TenantId`] is valid by
/// construction, and router state is just an empty trail + counters.
struct RouterTenants {
    clock: SharedClock,
    default_state: Arc<RouterTenantState>,
    extra: RwLock<BTreeMap<String, Arc<RouterTenantState>>>,
}

impl RouterTenants {
    fn new(clock: SharedClock) -> Arc<RouterTenants> {
        Arc::new(RouterTenants {
            default_state: Arc::new(RouterTenantState {
                audit: AuditTrail::new(clock.clone()),
                telemetry: Arc::new(OpTelemetry::new()),
            }),
            clock,
            extra: RwLock::new(BTreeMap::new()),
        })
    }

    fn state(&self, tenant: &TenantId) -> Arc<RouterTenantState> {
        if tenant.is_default() {
            return Arc::clone(&self.default_state);
        }
        if let Some(state) = self.extra.read().get(tenant.name()) {
            return Arc::clone(state);
        }
        let mut extra = self.extra.write();
        Arc::clone(extra.entry(tenant.name().to_string()).or_insert_with(|| {
            Arc::new(RouterTenantState {
                audit: AuditTrail::new(self.clock.clone()),
                telemetry: Arc::new(OpTelemetry::labeled(tenant.label())),
            })
        }))
    }
}

/// A compliance engine hash-partitioned across N inner engines, one store
/// (and optional metadata index) per shard.
pub struct ShardedEngine<S: RecordStore> {
    shards: Vec<Arc<ComplianceEngine<S>>>,
    /// Per-tenant audit streams and telemetry at the router, the
    /// deployment's entry point: every op (point, fanned-out, or system)
    /// is timed end-to-end here exactly once, under its session's tenant.
    /// The shards' own tables stay untouched — the router reaches them
    /// via `dispatch`, below their execute entry points.
    tenants: Arc<RouterTenants>,
    name: String,
    /// Workers for parallel predicate fan-out; `None` for a single shard,
    /// where fan-out degenerates to one probe.
    fanout: Option<FanoutPool>,
}

impl<S: RecordStore + 'static> ShardedEngine<S> {
    /// Shard each store behind a plain engine (predicates resolve by
    /// pushdown or scan within each shard).
    pub fn new(stores: Vec<S>) -> GdprResult<ShardedEngine<S>> {
        Self::build(stores.into_iter().map(ComplianceEngine::new).collect())
    }

    /// Shard each store behind an engine maintaining its own
    /// [`crate::MetadataIndex`]. Each shard's store expiry path is wired to
    /// invalidate *that shard's* index only — a TTL reap on one shard can
    /// never strand or scrub keys in another shard's index.
    pub fn with_metadata_index(stores: Vec<S>) -> GdprResult<ShardedEngine<S>> {
        let engines = stores
            .into_iter()
            .map(ComplianceEngine::with_metadata_index)
            .collect::<GdprResult<Vec<_>>>()?;
        Self::build(engines)
    }

    /// The snapshot-aware sharded open path: as
    /// [`Self::with_metadata_index`], but shard *i* recovers its index
    /// through the image at [`Self::shard_snapshot_path`]`(dir, i)` —
    /// O(index) per shard when the image matches that shard's store
    /// generation *and* was written as shard `i` of exactly this shard
    /// count (the topology is in the snapshot header). Reopening under a
    /// different count therefore rebuilds every shard's index from its
    /// store — the index-side analogue of [`Self::verify_placement`]'s
    /// misroute detection; run [`Self::rebalance`] to fix the store side,
    /// after which the rebuilt indexes are already correct.
    pub fn with_metadata_index_snapshots(
        stores: Vec<S>,
        dir: impl AsRef<std::path::Path>,
    ) -> GdprResult<ShardedEngine<S>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| GdprError::Store(format!("index snapshot dir {dir:?}: {e}")))?;
        let count = stores.len();
        let engines = stores
            .into_iter()
            .enumerate()
            .map(|(i, store)| {
                ComplianceEngine::with_metadata_index_snapshot_at(
                    store,
                    Self::shard_snapshot_path(dir, i),
                    i as u32,
                    count as u32,
                )
            })
            .collect::<GdprResult<Vec<_>>>()?;
        Self::build(engines)
    }

    /// Where shard `i`'s index image lives under a snapshot directory.
    /// Names carry the shard index only (not the count): a reopen under a
    /// different count finds the same files and rejects them via the
    /// topology header instead of silently rebuilding against an empty
    /// path.
    pub fn shard_snapshot_path(dir: &std::path::Path, shard: usize) -> std::path::PathBuf {
        dir.join(format!("metaindex-shard-{shard}.snap"))
    }

    /// Persist every shard's index image now (stamped with each shard
    /// store's current generation). Returns total entries written.
    pub fn write_index_snapshots(&self) -> GdprResult<usize> {
        let mut total = 0;
        for shard in &self.shards {
            total += shard.write_index_snapshot()?;
        }
        Ok(total)
    }

    /// Graceful close: snapshot every shard's index when the engine was
    /// opened snapshot-aware (no-op otherwise). Idempotent.
    pub fn close(&self) -> GdprResult<usize> {
        let mut total = 0;
        for shard in &self.shards {
            // Qualified: on an `Arc<ComplianceEngine>` plain `.close()`
            // resolves to the blanket `GdprConnector for Arc<T>` impl.
            total += ComplianceEngine::close(shard)?;
        }
        Ok(total)
    }

    fn build(shards: Vec<ComplianceEngine<S>>) -> GdprResult<ShardedEngine<S>> {
        let shards: Vec<Arc<ComplianceEngine<S>>> = shards.into_iter().map(Arc::new).collect();
        let Some(first) = shards.first() else {
            return Err(GdprError::Store(
                "a sharded engine needs at least one shard".to_string(),
            ));
        };
        // All shards must share one clock *instance*: wall clocks anchor
        // their epoch at construction, so timestamps (audit lines, absolute
        // TTL deadlines — which rebalance() carries between shards) from
        // different instances are not comparable. Fail loudly rather than
        // skew retention silently.
        let clock = first.store().clock();
        for shard in &shards[1..] {
            if !Arc::ptr_eq(&clock, &shard.store().clock()) {
                return Err(GdprError::Store(
                    "sharded engine: every shard must share one clock instance \
                     (open the stores with the same SharedClock)"
                        .to_string(),
                ));
            }
        }
        let name = format!("{}-sharded", first.store().name());
        // Parallel fan-out pays off only with something to overlap: cap the
        // workers at the machine's parallelism, skip the pool entirely for
        // one shard.
        let fanout = (shards.len() > 1).then(|| {
            let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
            FanoutPool::new(shards.len().min(cores.max(2)))
        });
        Ok(ShardedEngine {
            tenants: RouterTenants::new(clock),
            name,
            fanout,
            shards,
        })
    }

    /// Override the connector name (e.g. to distinguish a scan-backed from
    /// an index-backed sharded variant in reports).
    pub fn named(mut self, name: impl Into<String>) -> ShardedEngine<S> {
        self.name = name.into();
        self
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The inner engines, in shard order.
    pub fn shards(&self) -> &[Arc<ComplianceEngine<S>>] {
        &self.shards
    }

    /// The shard index owning a **storage** key (the tenant-namespaced
    /// form a record is stored under).
    pub fn shard_index_of(&self, storage_key: &str) -> usize {
        shard_of(storage_key, self.shards.len())
    }

    /// The engine owning a storage key.
    pub fn shard_for(&self, storage_key: &str) -> &ComplianceEngine<S> {
        &self.shards[self.shard_index_of(storage_key)]
    }

    /// The engine owning `key` as seen by `session`'s tenant: routing
    /// hashes the storage key, the same bytes the owning shard's store
    /// keeps the record under — so placement, `verify_placement`, and
    /// `rebalance` (which hash stored keys) always agree, and a tenant's
    /// keyspace spreads independently of every other tenant's.
    fn shard_for_session(&self, session: &Session, key: &str) -> &ComplianceEngine<S> {
        if session.tenant.is_default() {
            self.shard_for(key)
        } else {
            self.shard_for(&session.tenant.storage_key(key))
        }
    }

    /// Is predicate fan-out running on the worker pool (vs sequentially)?
    pub fn parallel_fanout(&self) -> bool {
        self.fanout.is_some()
    }

    /// The default tenant's unified audit trail serving GET-SYSTEM-LOGS
    /// (the degenerate single-tenant stream).
    pub fn audit(&self) -> &AuditTrail {
        // The default state is never replaced, so handing out a borrow
        // through the Arc is sound for the engine's lifetime.
        &self.tenants.default_state.audit
    }

    /// The router's default-tenant per-opcode telemetry table.
    pub fn telemetry(&self) -> &Arc<OpTelemetry> {
        &self.tenants.default_state.telemetry
    }

    /// Pre-create `tenant`'s partitions on the router and on every shard
    /// (index partition, audit trail, telemetry) so first use doesn't pay
    /// the lazy-creation backfill.
    pub fn ensure_tenant(&self, tenant: &TenantId) -> GdprResult<()> {
        self.tenants.state(tenant);
        for shard in &self.shards {
            shard.ensure_tenant(tenant)?;
        }
        Ok(())
    }

    /// Per-tenant telemetry snapshots at the router, `"default"` first,
    /// then named tenants in name order.
    pub fn tenant_telemetry_snapshots(&self) -> Vec<(String, OpTelemetrySnapshot)> {
        let mut out = vec![(
            "default".to_string(),
            self.tenants.default_state.telemetry.snapshot(),
        )];
        for (name, state) in self.tenants.extra.read().iter() {
            out.push((name.clone(), state.telemetry.snapshot()));
        }
        out
    }

    /// Execute one GDPR query, recording exactly one event in the
    /// caller's tenant's unified audit trail whatever the outcome or
    /// fan-out (G30).
    pub fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        let state = self.tenants.state(&session.tenant);
        let started = Instant::now();
        let result = self.route(session, query);
        state
            .telemetry
            .record(query, started.elapsed(), result.is_err());
        state
            .audit
            .record_batch(vec![audit_draft(session, query, &result)]);
        result
    }

    /// Execute a batch of queries with per-op results and audit entries in
    /// op order — semantically identical to calling
    /// [`ShardedEngine::execute`] per op, but the router exploits the
    /// batch shape: consecutive *point* ops are segmented into per-shard
    /// runs that execute in parallel on the fan-out pool (each shard's run
    /// stays in op order, so same-key ops never reorder), while predicate
    /// and system ops act as barriers executed in place via the normal
    /// routing. A `GetSystemLogs` inside the batch flushes the pending
    /// audit entries first, so log reads observe their batch predecessors
    /// exactly as sequential execution would.
    pub fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        let len = ops.len();
        let ops = Arc::new(ops);
        let mut results: Vec<Option<GdprResult<GdprResponse>>> = (0..len).map(|_| None).collect();
        // Pending audit drafts, grouped per tenant (ptr-identity on the
        // router state; batches hold a handful of tenants at most, so a
        // linear probe beats a map). Each tenant's group commits with one
        // timestamp, exactly like the unsharded engine's batching.
        let mut drafts: Vec<(Arc<RouterTenantState>, Vec<AuditDraft>)> = Vec::new();
        let push_draft = |drafts: &mut Vec<(Arc<RouterTenantState>, Vec<AuditDraft>)>,
                          state: &Arc<RouterTenantState>,
                          draft: AuditDraft| {
            match drafts.iter_mut().find(|(s, _)| Arc::ptr_eq(s, state)) {
                Some((_, group)) => group.push(draft),
                None => drafts.push((Arc::clone(state), vec![draft])),
            }
        };
        let mut i = 0;
        while i < len {
            if point_key(&ops[i].1).is_some() {
                let start = i;
                while i < len && point_key(&ops[i].1).is_some() {
                    i += 1;
                }
                self.run_point_segment(&ops, start, i, &mut results);
                for idx in start..i {
                    let (session, query) = &ops[idx];
                    let result = results[idx].as_ref().expect("segment filled every slot");
                    let state = self.tenants.state(&session.tenant);
                    push_draft(&mut drafts, &state, audit_draft(session, query, result));
                }
            } else {
                let (session, query) = &ops[i];
                let state = self.tenants.state(&session.tenant);
                if matches!(query, GdprQuery::GetSystemLogs { .. }) {
                    // Flush only the querying tenant's pending entries:
                    // its log read observes its own batch predecessors,
                    // and other tenants' drafts stay unflushed (their
                    // trails are invisible to this caller anyway).
                    if let Some((_, group)) =
                        drafts.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &state))
                    {
                        state.audit.record_batch(std::mem::take(group));
                    }
                }
                let started = Instant::now();
                let result = self.route(session, query);
                state
                    .telemetry
                    .record(query, started.elapsed(), result.is_err());
                push_draft(&mut drafts, &state, audit_draft(session, query, &result));
                results[i] = Some(result);
                i += 1;
            }
        }
        for (state, group) in drafts {
            state.audit.record_batch(group);
        }
        results
            .into_iter()
            .map(|r| r.expect("every op answered"))
            .collect()
    }

    /// Execute `ops[start..end]` (all point ops) grouped by owning shard:
    /// each shard's group runs sequentially in op order (same-key ordering
    /// is the group's ordering); distinct shards overlap on the fan-out
    /// pool when more than one has work. Every slot in the range is filled.
    fn run_point_segment(
        &self,
        ops: &Arc<Vec<(Session, GdprQuery)>>,
        start: usize,
        end: usize,
        results: &mut [Option<GdprResult<GdprResponse>>],
    ) {
        let n = self.shards.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for idx in start..end {
            let (session, query) = &ops[idx];
            let key = point_key(query).expect("segment holds only point ops");
            let shard = if session.tenant.is_default() {
                shard_of(key, n)
            } else {
                shard_of(&session.tenant.storage_key(key), n)
            };
            groups[shard].push(idx);
        }
        let busy: Vec<usize> = (0..n).filter(|&s| !groups[s].is_empty()).collect();
        match &self.fanout {
            Some(pool) if busy.len() > 1 => {
                let (tx, rx) = mpsc::channel();
                for s in busy {
                    let group = std::mem::take(&mut groups[s]);
                    let shard = Arc::clone(&self.shards[s]);
                    let ops = Arc::clone(ops);
                    let tx = tx.clone();
                    let tenants = Arc::clone(&self.tenants);
                    pool.submit(Box::new(move || {
                        for idx in group {
                            let (session, query) = &ops[idx];
                            let started = Instant::now();
                            // A panicking op must neither hang the collector
                            // nor take its group's successors with it.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    shard.dispatch(session, query)
                                }))
                                .unwrap_or_else(|_| {
                                    Err(GdprError::Store("shard batch worker panicked".to_string()))
                                });
                            tenants.state(&session.tenant).telemetry.record(
                                query,
                                started.elapsed(),
                                result.is_err(),
                            );
                            let _ = tx.send((idx, result));
                        }
                    }));
                }
                drop(tx);
                for (idx, result) in rx {
                    results[idx] = Some(result);
                }
                for slot in results.iter_mut().take(end).skip(start) {
                    if slot.is_none() {
                        *slot = Some(Err(GdprError::Store(
                            "shard batch lost a worker response".to_string(),
                        )));
                    }
                }
            }
            _ => {
                for idx in start..end {
                    let (session, query) = &ops[idx];
                    let key = point_key(query).expect("segment holds only point ops");
                    let started = Instant::now();
                    let result = self
                        .shard_for_session(session, key)
                        .dispatch(session, query);
                    self.tenants.state(&session.tenant).telemetry.record(
                        query,
                        started.elapsed(),
                        result.is_err(),
                    );
                    results[idx] = Some(result);
                }
            }
        }
    }

    /// Point ops to the owning shard; predicate ops fanned out and merged;
    /// system queries answered by the router itself.
    fn route(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        use GdprQuery::*;
        match query {
            CreateRecord(record) => self
                .shard_for_session(session, &record.key)
                .dispatch(session, query),
            DeleteByKey(key)
            | ReadDataByKey(key)
            | ReadMetadataByKey(key)
            | VerifyDeletion(key)
            | UpdateDataByKey { key, .. }
            | UpdateMetadataByKey { key, .. } => self
                .shard_for_session(session, key)
                .dispatch(session, query),

            // The audit stream is the router's (the caller's tenant's
            // slice of it), not any shard's.
            GetSystemLogs { from_ms, to_ms } => {
                crate::acl::authorize(session, query)?;
                Ok(GdprResponse::Logs(
                    self.tenants
                        .state(&session.tenant)
                        .audit
                        .lines_between(*from_ms, *to_ms),
                ))
            }
            // Shards are homogeneous; any one speaks for the posture.
            GetSystemFeatures => self.shards[0].dispatch(session, query),

            DeleteByPurpose(_)
            | DeleteExpired
            | DeleteByUser(_)
            | ReadDataByPurpose(_)
            | ReadDataByUser(_)
            | ReadDataNotObjecting(_)
            | ReadDataDecisionEligible
            | ReadMetadataByUser(_)
            | ReadMetadataBySharedWith(_)
            | UpdateMetadataByPurpose { .. }
            | UpdateMetadataByUser { .. } => self.fan_out(session, query),
        }
    }

    /// Run a predicate query on every shard and merge deterministically.
    ///
    /// *Reads* fan out in parallel on the worker pool: shard probes are
    /// independent, results are collected into shard-order slots before
    /// merging, and on failure the lowest-indexed shard's error is returned
    /// — so the response (and the merge order) never depends on thread
    /// timing. *Writes* stay sequential: a mid-fan-out failure must leave
    /// the same partial progress as the unsharded engine failing
    /// mid-iteration, and parallel shards would smear partial updates
    /// across all of them.
    ///
    /// Group metadata updates additionally **pre-validate on every shard
    /// before any shard commits**: the unsharded engine's
    /// validate-all-then-commit means an update invalid for any match
    /// mutates nothing, and that guarantee must not depend on which shard
    /// the offending record hashes to — without the pre-pass, shards
    /// before the failing one would commit while the caller sees `Err`,
    /// breaking shard-count invariance. The pre-pass reads each shard's
    /// matches a second time (index-resolved, so O(matches) per shard) —
    /// the price of the cross-shard guarantee; a single shard skips it,
    /// since shard-local validate-all-then-commit already covers one
    /// engine. The pre-pass validates a *snapshot*: a write racing the
    /// group update (e.g. a point create landing between validation and a
    /// later shard's commit) is re-validated by that shard's own
    /// validate-all-then-commit and can still fail the group after
    /// earlier shards committed — the same snapshot semantics as any
    /// non-transactional engine; the all-or-nothing guarantee is about
    /// the state the update observed, not about writes racing it.
    fn fan_out(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        if self.shards.len() > 1 {
            if let Some((pred, update)) = group_update_of(query) {
                // Only data-dependent updates can fail on a later shard
                // after an earlier one committed; for every other update
                // shape, validation failure is uniform across records and
                // shard-local validate-all-then-commit already yields
                // all-or-nothing — skipping the pre-pass avoids reading
                // every match twice on the common group updates. And only
                // pre-validate what the session may actually execute: an
                // authorization failure must surface as AccessDenied from
                // the dispatch below, exactly as the unsharded engine
                // orders its errors (authorize → validate → commit).
                if update.validation_is_data_dependent()
                    && crate::acl::authorize(session, query).is_ok()
                {
                    for shard in &self.shards {
                        shard.validate_update(&session.tenant, &pred, update)?;
                    }
                }
            }
        }
        let results: Vec<GdprResult<GdprResponse>> = match &self.fanout {
            Some(pool) if !query.is_write() => {
                let (tx, rx) = mpsc::channel();
                for (i, shard) in self.shards.iter().enumerate() {
                    let shard = Arc::clone(shard);
                    let session = session.clone();
                    let query = query.clone();
                    let tx = tx.clone();
                    pool.submit(Box::new(move || {
                        // A panicking shard must not hang the collector: it
                        // still reports, as a loud store error.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            shard.dispatch(&session, &query)
                        }))
                        .unwrap_or_else(|_| {
                            Err(GdprError::Store(
                                "shard fan-out worker panicked".to_string(),
                            ))
                        });
                        let _ = tx.send((i, result));
                    }));
                }
                drop(tx);
                let mut slots: Vec<Option<GdprResult<GdprResponse>>> =
                    (0..self.shards.len()).map(|_| None).collect();
                for (i, result) in rx {
                    slots[i] = Some(result);
                }
                if slots.iter().any(Option::is_none) {
                    return Err(GdprError::Store(
                        "shard fan-out lost a worker response".to_string(),
                    ));
                }
                slots.into_iter().flatten().collect()
            }
            _ => {
                let mut results = Vec::with_capacity(self.shards.len());
                for shard in &self.shards {
                    results.push(shard.dispatch(session, query));
                    if results.last().is_some_and(Result::is_err) {
                        break;
                    }
                }
                results
            }
        };
        let mut responses = Vec::with_capacity(results.len());
        for result in results {
            responses.push(result?);
        }
        merge_responses(responses)
    }

    /// Check that every stored record lives in the shard [`shard_of`]
    /// assigns it — the guard to run after reopening persisted shards.
    pub fn verify_placement(&self) -> GdprResult<()> {
        let n = self.shards.len();
        for (found_in, shard) in self.shards.iter().enumerate() {
            for record in shard.store().scan()? {
                let owner = shard_of(&record.key, n);
                if owner != found_in {
                    return Err(GdprError::ShardMisroute {
                        key: record.key,
                        found_in,
                        owner,
                        shard_count: n,
                    });
                }
            }
        }
        Ok(())
    }

    /// Migrate every misplaced record to its owning shard, returning how
    /// many moved. Remaining TTL deadlines survive the move (a migration
    /// must not extend retention), per-shard indexes are kept consistent on
    /// both sides, and a collision in the destination shard fails loudly
    /// with both copies intact rather than overwriting either.
    ///
    /// Index maintenance is coalesced into one [`IndexBatch`] per shard,
    /// applied after the store migration (one lock acquisition per shard
    /// instead of two per moved record) — and applied even when a store op
    /// fails mid-migration, so every index tracks exactly the committed
    /// moves. Rebalance is a restart-time admin operation: it is not meant
    /// to run concurrently with predicate traffic (batching widens the
    /// window in which a moved record is queryable by key but not yet in
    /// its new shard's index; stale source entries are filtered on read as
    /// always).
    pub fn rebalance(&self) -> GdprResult<usize> {
        let n = self.shards.len();
        let now_ms = self.shards[0].store().clock().now().as_millis();
        let mut moved = 0;
        let mut batches: Vec<IndexBatch> = (0..n).map(|_| IndexBatch::new()).collect();
        let mut migrate = || -> GdprResult<()> {
            for (i, shard) in self.shards.iter().enumerate() {
                for record in shard.store().scan()? {
                    let owner = shard_of(&record.key, n);
                    if owner == i {
                        continue;
                    }
                    // The source store's remaining deadline is
                    // authoritative; stores that track none fall back to
                    // `now + declared TTL` so a TTL'd record still enters
                    // the destination's expiry set instead of being
                    // retained forever (same contract as index backfill in
                    // `with_metadata_index`).
                    let deadline_ms = shard.store().deadline_ms(&record.key).or_else(|| {
                        record
                            .metadata
                            .ttl
                            .map(|ttl| now_ms + ttl.as_millis() as u64)
                    });
                    self.shards[owner]
                        .store()
                        .put_with_deadline(&record, deadline_ms)?;
                    // The batch keeps only key + metadata (no payload
                    // copy); the record is moved in, so only its key is
                    // cloned for the source-side delete and removal.
                    let key = record.key.clone();
                    batches[owner].upsert_at(record, deadline_ms);
                    shard.store().delete(&key)?;
                    batches[i].remove(key);
                    moved += 1;
                }
            }
            Ok(())
        };
        let result = migrate();
        for (shard, batch) in self.shards.iter().zip(batches) {
            shard.apply_index_batch(batch);
        }
        result.map(|()| moved)
    }
}

/// The routing key of a key-scoped (point) op, `None` for everything that
/// must act as a batch barrier (predicate fan-outs and system queries).
fn point_key(query: &GdprQuery) -> Option<&str> {
    use GdprQuery::*;
    match query {
        CreateRecord(record) => Some(&record.key),
        DeleteByKey(key)
        | ReadDataByKey(key)
        | ReadMetadataByKey(key)
        | VerifyDeletion(key)
        | UpdateDataByKey { key, .. }
        | UpdateMetadataByKey { key, .. } => Some(key),
        _ => None,
    }
}

/// The predicate + update of a *group* metadata update — the two query
/// classes whose validate-all-then-commit guarantee spans shards.
fn group_update_of(query: &GdprQuery) -> Option<(RecordPredicate, &MetadataUpdate)> {
    match query {
        GdprQuery::UpdateMetadataByPurpose { purpose, update } => {
            Some((RecordPredicate::DeclaredPurpose(purpose.clone()), update))
        }
        GdprQuery::UpdateMetadataByUser { user, update } => {
            Some((RecordPredicate::User(user.clone()), update))
        }
        _ => None,
    }
}

/// Merge per-shard responses of one query class into the canonical form:
/// counts sum, result sets concatenate and sort by key (timestamp for
/// logs), so the merged response is independent of shard count and order.
fn merge_responses(results: Vec<GdprResponse>) -> GdprResult<GdprResponse> {
    use GdprResponse::*;
    let mut iter = results.into_iter();
    let mut acc = iter
        .next()
        .ok_or_else(|| GdprError::Store("merge of zero shard responses".to_string()))?;
    for resp in iter {
        acc = match (acc, resp) {
            (Deleted(a), Deleted(b)) => Deleted(a + b),
            (Updated(a), Updated(b)) => Updated(a + b),
            (Data(mut a), Data(b)) => {
                a.extend(b);
                Data(a)
            }
            (Metadata(mut a), Metadata(b)) => {
                a.extend(b);
                Metadata(a)
            }
            (Records(mut a), Records(b)) => {
                a.extend(b);
                Records(a)
            }
            (Logs(mut a), Logs(b)) => {
                a.extend(b);
                Logs(a)
            }
            (a, b) => {
                return Err(GdprError::Store(format!(
                    "shard response shape mismatch: {a:?} vs {b:?}"
                )))
            }
        };
    }
    match &mut acc {
        Data(pairs) => pairs.sort(),
        Metadata(pairs) => pairs.sort_by(|x, y| x.0.cmp(&y.0)),
        Records(records) => records.sort_by(|x, y| x.key.cmp(&y.key)),
        Logs(lines) => lines.sort_by_key(|l| l.timestamp_ms),
        _ => {}
    }
    Ok(acc)
}

/// A sharded engine is a connector like any other; callers cannot tell a
/// router from a single engine (the whole point).
impl<S: RecordStore + 'static> GdprConnector for ShardedEngine<S> {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        ShardedEngine::execute(self, session, query)
    }

    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        ShardedEngine::execute_batch(self, ops)
    }

    fn features(&self) -> FeatureReport {
        self.shards[0].store().features()
    }

    fn space_report(&self) -> SpaceReport {
        let mut total = SpaceReport::default();
        for shard in &self.shards {
            let report = shard.store().space_report();
            total.personal_data_bytes += report.personal_data_bytes;
            total.total_bytes += report.total_bytes;
        }
        total
    }

    fn record_count(&self) -> usize {
        self.shards.iter().map(|s| s.store().record_count()).sum()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn close(&self) -> GdprResult<()> {
        ShardedEngine::close(self).map(|_| ())
    }

    fn op_telemetry(&self) -> Option<OpTelemetrySnapshot> {
        // Deployment-wide: every tenant's router counters merged.
        let mut merged = self.tenants.default_state.telemetry.snapshot();
        for state in self.tenants.extra.read().values() {
            merged.merge(&state.telemetry.snapshot());
        }
        Some(merged)
    }

    fn op_telemetry_for(&self, tenant: &TenantId) -> Option<OpTelemetrySnapshot> {
        if tenant.is_default() {
            return Some(self.tenants.default_state.telemetry.snapshot());
        }
        // Lookup only — a metrics probe must not create tenant state.
        self.tenants
            .extra
            .read()
            .get(tenant.name())
            .map(|state| state.telemetry.snapshot())
    }

    fn tenant_telemetry(&self) -> Vec<(String, OpTelemetrySnapshot)> {
        self.tenant_telemetry_snapshots()
    }

    fn provision_tenant(&self, tenant: &TenantId) -> GdprResult<()> {
        self.ensure_tenant(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GdprError;
    use crate::record::{Metadata, PersonalRecord};
    use crate::store::RecordPredicate;
    use clock::SharedClock;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// The same trivial in-memory store the engine tests use, plus a
    /// native deadline table so `put_with_deadline` is exercised.
    struct MemStore {
        rows: Mutex<BTreeMap<String, PersonalRecord>>,
        deadlines: Mutex<BTreeMap<String, u64>>,
        clock: SharedClock,
    }

    impl MemStore {
        fn with_clock(clock: SharedClock) -> MemStore {
            MemStore {
                rows: Mutex::new(BTreeMap::new()),
                deadlines: Mutex::new(BTreeMap::new()),
                clock,
            }
        }
    }

    impl RecordStore for MemStore {
        fn clock(&self) -> SharedClock {
            self.clock.clone()
        }
        fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
            Ok(self.rows.lock().get(key).cloned())
        }
        fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            if let Some(ttl) = record.metadata.ttl {
                self.deadlines.lock().insert(
                    record.key.clone(),
                    self.clock.now().as_millis() + ttl.as_millis() as u64,
                );
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn put_with_deadline(
            &self,
            record: &PersonalRecord,
            deadline_ms: Option<u64>,
        ) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            if let Some(at) = deadline_ms {
                self.deadlines.lock().insert(record.key.clone(), at);
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn rewrite(&self, record: &PersonalRecord, _ttl_changed: bool) -> GdprResult<()> {
            self.rows.lock().insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn delete(&self, key: &str) -> GdprResult<bool> {
            self.deadlines.lock().remove(key);
            Ok(self.rows.lock().remove(key).is_some())
        }
        fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
            Ok(self.rows.lock().values().cloned().collect())
        }
        fn purge_expired(&self) -> GdprResult<usize> {
            let now = self.clock.now().as_millis();
            let due: Vec<String> = self
                .deadlines
                .lock()
                .iter()
                .filter(|(_, at)| **at <= now)
                .map(|(k, _)| k.clone())
                .collect();
            for key in &due {
                self.delete(key)?;
            }
            Ok(due.len())
        }
        fn deadline_ms(&self, key: &str) -> Option<u64> {
            self.deadlines.lock().get(key).copied()
        }
        fn space_report(&self) -> SpaceReport {
            let rows = self.rows.lock();
            SpaceReport {
                personal_data_bytes: rows.values().map(|r| r.data.len()).sum(),
                total_bytes: rows.values().map(|r| r.data.len() + r.key.len() + 64).sum(),
            }
        }
        fn record_count(&self) -> usize {
            self.rows.lock().len()
        }
        fn features(&self) -> FeatureReport {
            FeatureReport::default()
        }
        fn name(&self) -> &str {
            "mem"
        }
    }

    fn record(key: &str, user: &str, purposes: &[&str]) -> PersonalRecord {
        PersonalRecord::new(
            key,
            format!("data-{key}"),
            Metadata::new(
                user,
                purposes.iter().map(|s| s.to_string()).collect(),
                Duration::from_secs(3600),
            ),
        )
    }

    fn sharded(n: usize) -> ShardedEngine<MemStore> {
        let clock = clock::sim();
        ShardedEngine::with_metadata_index(
            (0..n)
                .map(|_| MemStore::with_clock(clock.clone()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn shard_of_is_stable_and_total() {
        // Pinned values: the placement function is a persistence format —
        // changing the hash (or its constants) silently would misroute
        // every reopened deployment, so the literal FNV-1a outputs are
        // asserted here.
        assert_eq!(shard_of("ph-1", 4), 3);
        assert_eq!(shard_of("user-17", 4), 1);
        assert_eq!(shard_of("user-17", 8), 1);
        assert_eq!(shard_of("k0", 8), 6);
        assert_eq!(shard_of("", 8), 5);
        for n in 1..9 {
            for key in ["a", "user-17", "ph-3", ""] {
                assert!(shard_of(key, n) < n);
            }
        }
        assert_eq!(shard_of("anything", 1), 0);
        // Keys actually spread: 64 keys over 8 shards must hit every shard.
        let mut hit = [false; 8];
        for i in 0..64 {
            hit[shard_of(&format!("k{i}"), 8)] = true;
        }
        assert!(hit.iter().all(|h| *h), "FNV spread degenerate: {hit:?}");
    }

    #[test]
    fn point_ops_route_and_predicates_fan_out() {
        for n in [1, 2, 8] {
            let engine = sharded(n);
            let controller = Session::controller();
            for (k, u, p) in [
                ("a", "neo", &["ads"][..]),
                ("b", "neo", &["2fa"][..]),
                ("c", "trinity", &["ads"][..]),
            ] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(record(k, u, p)))
                    .unwrap();
            }
            // Point read lands on the owning shard only.
            let resp = engine
                .execute(
                    &Session::processor("ads"),
                    &GdprQuery::ReadDataByKey("a".into()),
                )
                .unwrap();
            assert_eq!(resp.cardinality(), 1);
            // Fan-out merges across shards, sorted by key.
            let resp = engine
                .execute(
                    &Session::customer("neo"),
                    &GdprQuery::ReadDataByUser("neo".into()),
                )
                .unwrap();
            let keys: Vec<_> = resp
                .as_data()
                .unwrap()
                .iter()
                .map(|(k, _)| k.clone())
                .collect();
            assert_eq!(keys, vec!["a", "b"], "n={n}");
            // Group delete sums per-shard counts.
            let resp = engine
                .execute(&controller, &GdprQuery::DeleteByPurpose("ads".into()))
                .unwrap();
            assert_eq!(resp, GdprResponse::Deleted(2), "n={n}");
            assert_eq!(engine.record_count(), 1);
        }
    }

    #[test]
    fn unified_audit_records_one_event_per_query() {
        let engine = sharded(4);
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        // A fan-out query is still one audit event.
        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        // Denied queries audit too.
        let _ = engine.execute(
            &Session::customer("neo"),
            &GdprQuery::ReadDataByUser("trinity".into()),
        );
        assert_eq!(engine.audit().len(), 3);
        for shard in engine.shards() {
            assert_eq!(shard.audit().len(), 0, "shards must not audit");
        }
        let resp = engine
            .execute(
                &Session::regulator(),
                &GdprQuery::GetSystemLogs {
                    from_ms: 0,
                    to_ms: u64::MAX,
                },
            )
            .unwrap();
        match resp {
            GdprResponse::Logs(lines) => {
                assert_eq!(lines.len(), 3);
                assert!(lines.iter().any(|l| l.operation == "read-data-by-usr"));
                assert!(lines.iter().any(|l| l.detail.contains("access denied")));
            }
            other => panic!("expected logs, got {other:?}"),
        }
    }

    #[test]
    fn verify_placement_detects_shard_count_change() {
        let clock = clock::sim();
        let stores: Vec<MemStore> = (0..2)
            .map(|_| MemStore::with_clock(clock.clone()))
            .collect();
        // Lay out records for a 2-shard topology.
        for i in 0..16 {
            let r = record(&format!("k{i}"), "neo", &["ads"]);
            stores[shard_of(&r.key, 2)].put(&r).unwrap();
        }
        let two = ShardedEngine::with_metadata_index(stores).unwrap();
        two.verify_placement().unwrap();

        // "Restart" the same stores as a 3-shard deployment.
        let rows: Vec<BTreeMap<String, PersonalRecord>> = two
            .shards()
            .iter()
            .map(|s| s.store().rows.lock().clone())
            .collect();
        let stores: Vec<MemStore> = (0..3)
            .map(|_| MemStore::with_clock(clock.clone()))
            .collect();
        for (i, shard_rows) in rows.into_iter().enumerate() {
            for r in shard_rows.into_values() {
                stores[i].put(&r).unwrap();
            }
        }
        let three = ShardedEngine::with_metadata_index(stores).unwrap();
        assert!(matches!(
            three.verify_placement(),
            Err(GdprError::ShardMisroute { shard_count: 3, .. })
        ));

        // Rebalance migrates every record home; queries see all of them.
        let moved = three.rebalance().unwrap();
        assert!(moved > 0);
        three.verify_placement().unwrap();
        assert_eq!(three.record_count(), 16);
        let resp = three
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 16);
        // Per-shard indexes track the migration on both sides.
        for (i, shard) in three.shards().iter().enumerate() {
            let index = shard.metadata_index().unwrap();
            for key in index.keys_by_user("neo") {
                assert_eq!(shard_of(&key, 3), i, "index advertises a foreign key");
            }
        }
    }

    #[test]
    fn rebalance_preserves_remaining_deadlines() {
        let clock = clock::sim();
        let store = MemStore::with_clock(clock.clone());
        let mut r = record("k-ttl", "neo", &["ads"]);
        r.metadata.ttl = Some(Duration::from_secs(10));
        store.put(&r).unwrap();
        clock.advance(Duration::from_secs(9));
        // Reopen that one store as part of a wider topology where the key
        // belongs elsewhere.
        let owner = shard_of("k-ttl", 3);
        let mut stores: Vec<MemStore> = (0..3)
            .map(|_| MemStore::with_clock(clock.clone()))
            .collect();
        let misplaced = (owner + 1) % 3;
        stores[misplaced] = store;
        let engine = ShardedEngine::with_metadata_index(stores).unwrap();
        assert_eq!(engine.rebalance().unwrap(), 1);
        assert_eq!(
            engine.shards()[owner].store().deadline_ms("k-ttl"),
            Some(10_000),
            "migration must keep the remaining deadline, not re-arm the full TTL"
        );
        assert_eq!(
            engine.shards()[owner]
                .metadata_index()
                .unwrap()
                .deadline_of("k-ttl"),
            Some(10_000)
        );
        clock.advance(Duration::from_secs(2));
        assert_eq!(
            engine
                .execute(&Session::controller(), &GdprQuery::DeleteExpired)
                .unwrap(),
            GdprResponse::Deleted(1)
        );
    }

    #[test]
    fn index_and_scan_sharding_agree() {
        let clock = clock::sim();
        let scan = ShardedEngine::new(
            (0..4)
                .map(|_| MemStore::with_clock(clock.clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let indexed = sharded(4);
        let controller = Session::controller();
        for i in 0..20 {
            let mut r = record(&format!("k{i}"), ["neo", "trinity"][i % 2], &["ads"]);
            if i % 3 == 0 {
                r.metadata.objections.push("ads".into());
            }
            for engine in [&scan, &indexed] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(r.clone()))
                    .unwrap();
            }
        }
        for (session, query) in [
            (
                Session::customer("neo"),
                GdprQuery::ReadDataByUser("neo".into()),
            ),
            (
                Session::processor("ads"),
                GdprQuery::ReadDataByPurpose("ads".into()),
            ),
            (
                Session::processor("x"),
                GdprQuery::ReadDataNotObjecting("ads".into()),
            ),
        ] {
            assert_eq!(
                scan.execute(&session, &query).unwrap(),
                indexed.execute(&session, &query).unwrap(),
                "divergence on {query:?}"
            );
        }
        // The index actually answers on the indexed variant.
        assert!(indexed.shards()[0]
            .metadata_index()
            .unwrap()
            .keys_for(&RecordPredicate::User("neo".into()))
            .is_some());
    }

    #[test]
    fn parallel_fanout_runs_on_multi_shard_engines_only() {
        assert!(
            !sharded(1).parallel_fanout(),
            "one shard has nothing to overlap"
        );
        let engine = sharded(8);
        assert!(engine.parallel_fanout());
        // Many concurrent fan-outs over the shared pool: every reader must
        // see the identical deterministic merge.
        let controller = Session::controller();
        for i in 0..32 {
            engine
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(record(&format!("k{i}"), "neo", &["ads"])),
                )
                .unwrap();
        }
        let expected = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(expected.cardinality(), 32);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let resp = engine
                            .execute(
                                &Session::customer("neo"),
                                &GdprQuery::ReadDataByUser("neo".into()),
                            )
                            .unwrap();
                        assert_eq!(resp, expected);
                    }
                });
            }
        });
    }

    /// Regression (write-path consistency): a group update that is invalid
    /// for a record on a *later* shard must leave every shard untouched.
    /// Without cross-shard pre-validation, the sequential write fan-out
    /// committed shard 0's matches before shard 1's validation failed —
    /// the caller saw `Err` with half the group already rewritten, and the
    /// outcome depended on the shard count.
    #[test]
    fn group_update_validates_across_all_shards_before_any_commit() {
        let engine = sharded(2);
        let controller = Session::controller();
        // One key per shard, chosen via the placement function so the
        // healthy record (two purposes) sits on shard 0 and the poison
        // record (whose only purpose is "ads") on shard 1.
        let key_on = |shard: usize| {
            (0..64)
                .map(|i| format!("gk{i}"))
                .find(|k| shard_of(k, 2) == shard)
                .expect("64 keys cover both shards")
        };
        let healthy = key_on(0);
        let poison = key_on(1);
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record(&healthy, "neo", &["ads", "2fa"])),
            )
            .unwrap();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record(&poison, "neo", &["ads"])),
            )
            .unwrap();
        let result = engine.execute(
            &controller,
            &GdprQuery::UpdateMetadataByPurpose {
                purpose: "ads".into(),
                update: crate::query::MetadataUpdate::Remove(
                    crate::query::MetadataField::Purposes,
                    "ads".into(),
                ),
            },
        );
        assert!(matches!(result, Err(GdprError::InvalidRecord(_))));
        // Shard 0's record must not have committed: both keep "ads".
        for key in [&healthy, &poison] {
            let stored = engine.shard_for(key).store().fetch(key).unwrap().unwrap();
            assert!(
                stored.metadata.purposes.contains(&"ads".to_string()),
                "{key} must be untouched after the failed cross-shard group update"
            );
        }
        // The processor still sees both records under the purpose.
        let resp = engine
            .execute(
                &Session::processor("ads"),
                &GdprQuery::ReadDataByPurpose("ads".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 2);
    }

    #[test]
    fn empty_shard_list_is_rejected() {
        assert!(matches!(
            ShardedEngine::<MemStore>::new(Vec::new()),
            Err(GdprError::Store(_))
        ));
    }

    #[test]
    fn mixed_clock_shards_are_rejected() {
        // Two clocks with different epochs: absolute timestamps are not
        // comparable across them, so construction must fail loudly.
        let stores = vec![
            MemStore::with_clock(clock::sim()),
            MemStore::with_clock(clock::sim()),
        ];
        assert!(matches!(
            ShardedEngine::new(stores),
            Err(GdprError::Store(_))
        ));
    }

    #[test]
    fn destination_collision_fails_loudly_with_both_copies_intact() {
        let clock = clock::sim();
        let stores: Vec<MemStore> = (0..2)
            .map(|_| MemStore::with_clock(clock.clone()))
            .collect();
        let r = record("dup", "neo", &["ads"]);
        let owner = shard_of("dup", 2);
        stores[owner].put(&r).unwrap();
        stores[1 - owner].put(&r).unwrap();
        let engine = ShardedEngine::new(stores).unwrap();
        assert!(matches!(
            engine.rebalance(),
            Err(GdprError::AlreadyExists(_))
        ));
        assert_eq!(engine.record_count(), 2, "no copy may be destroyed");
    }

    /// Batched execution must be indistinguishable from sequential
    /// execution: same per-op results, same audit trail (entries in op
    /// order, one per op), whatever the shard count.
    #[test]
    fn execute_batch_matches_sequential_execution() {
        for n in [1, 2, 8] {
            let batched = sharded(n);
            let sequential = sharded(n);
            let controller = Session::controller();
            let ops: Vec<(Session, GdprQuery)> = (0..12)
                .map(|i| {
                    (
                        controller.clone(),
                        GdprQuery::CreateRecord(record(
                            &format!("k{i}"),
                            ["neo", "trinity"][i % 2],
                            &["ads"],
                        )),
                    )
                })
                .chain([
                    // A duplicate create (per-op error), a predicate
                    // barrier, a denied op, and trailing point reads.
                    (
                        controller.clone(),
                        GdprQuery::CreateRecord(record("k0", "neo", &["ads"])),
                    ),
                    (
                        Session::customer("neo"),
                        GdprQuery::ReadDataByUser("neo".into()),
                    ),
                    (
                        Session::customer("neo"),
                        GdprQuery::ReadDataByUser("trinity".into()),
                    ),
                    (
                        Session::processor("ads"),
                        GdprQuery::ReadDataByKey("k3".into()),
                    ),
                    (controller.clone(), GdprQuery::DeleteByKey("k5".into())),
                    (controller.clone(), GdprQuery::VerifyDeletion("k5".into())),
                ])
                .collect();

            let batch_results = batched.execute_batch(ops.clone());
            let seq_results: Vec<_> = ops
                .iter()
                .map(|(session, query)| sequential.execute(session, query))
                .collect();
            assert_eq!(batch_results.len(), seq_results.len());
            for (i, (b, s)) in batch_results.iter().zip(&seq_results).enumerate() {
                assert_eq!(b, s, "n={n}, op {i} diverged");
            }
            // Audit trails render identically modulo timestamps (the batch
            // shares one submission instant; the sim clock never advances
            // here, so even those match).
            let b_lines = batched.audit().lines_between(0, u64::MAX);
            let s_lines = sequential.audit().lines_between(0, u64::MAX);
            assert_eq!(b_lines, s_lines, "n={n}");
        }
    }

    /// Ops on the same key inside one batch must keep their order even
    /// when the batch is spread across the fan-out pool.
    #[test]
    fn same_key_ops_in_one_batch_stay_ordered() {
        let engine = sharded(8);
        let controller = Session::controller();
        let mut ops: Vec<(Session, GdprQuery)> = Vec::new();
        for i in 0..6 {
            let key = format!("k{i}");
            ops.push((
                controller.clone(),
                GdprQuery::CreateRecord(record(&key, "neo", &["ads"])),
            ));
            ops.push((
                controller.clone(),
                GdprQuery::UpdateDataByKey {
                    key: key.clone(),
                    data: format!("v2-{key}"),
                },
            ));
            ops.push((controller.clone(), GdprQuery::DeleteByKey(key.clone())));
            ops.push((controller.clone(), GdprQuery::VerifyDeletion(key)));
        }
        for (i, result) in engine.execute_batch(ops).into_iter().enumerate() {
            match i % 4 {
                0 => assert_eq!(result.unwrap(), GdprResponse::Created, "op {i}"),
                1 => assert_eq!(result.unwrap(), GdprResponse::Updated(1), "op {i}"),
                2 => assert_eq!(result.unwrap(), GdprResponse::Deleted(1), "op {i}"),
                _ => assert_eq!(
                    result.unwrap(),
                    GdprResponse::DeletionVerified(true),
                    "op {i}"
                ),
            }
        }
        assert_eq!(engine.record_count(), 0);
    }

    /// A GetSystemLogs mid-batch observes the audit entries of its batch
    /// predecessors, exactly as sequential execution would.
    #[test]
    fn log_read_mid_batch_sees_predecessors() {
        let engine = sharded(4);
        let controller = Session::controller();
        let ops = vec![
            (
                controller.clone(),
                GdprQuery::CreateRecord(record("a", "neo", &["ads"])),
            ),
            (
                controller.clone(),
                GdprQuery::CreateRecord(record("b", "neo", &["ads"])),
            ),
            (
                Session::regulator(),
                GdprQuery::GetSystemLogs {
                    from_ms: 0,
                    to_ms: u64::MAX,
                },
            ),
            (
                controller.clone(),
                GdprQuery::CreateRecord(record("c", "neo", &["ads"])),
            ),
        ];
        let results = engine.execute_batch(ops);
        match results[2].as_ref().unwrap() {
            GdprResponse::Logs(lines) => {
                assert_eq!(lines.len(), 2, "log read must see both predecessors");
            }
            other => panic!("expected logs, got {other:?}"),
        }
        // And the full trail holds one entry per op afterwards.
        assert_eq!(engine.audit().len(), 4);
    }

    #[test]
    fn sharded_engine_reports_aggregate_space_and_count() {
        let engine = sharded(4);
        let controller = Session::controller();
        for i in 0..10 {
            engine
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(record(&format!("k{i}"), "neo", &["ads"])),
                )
                .unwrap();
        }
        assert_eq!(engine.record_count(), 10);
        let space = engine.space_report();
        assert!(space.personal_data_bytes > 0);
        assert!(space.total_bytes > space.personal_data_bytes);
        assert_eq!(engine.name(), "mem-sharded");
        assert_eq!(engine.named("custom").name(), "custom");
    }

    /// The no-double-count invariant: the router records every op exactly
    /// once — across single-op execute, the parallel point-segment path,
    /// and fanned-out predicates — and the shards' own tables stay empty
    /// (the router reaches them via `dispatch`, below their telemetry).
    #[test]
    fn telemetry_counts_each_op_exactly_once() {
        for shards in [1usize, 8] {
            let engine = sharded(shards);
            let controller = Session::controller();
            // 16 creates through the batched (parallel) path, spanning
            // several shards.
            let ops: Vec<_> = (0..16)
                .map(|i| {
                    (
                        controller.clone(),
                        GdprQuery::CreateRecord(record(&format!("k{i}"), "neo", &["ads"])),
                    )
                })
                .collect();
            for r in engine.execute_batch(ops) {
                r.unwrap();
            }
            // One single-op read, one fanned-out predicate, one error.
            let processor = Session::processor("ads");
            engine
                .execute(&processor, &GdprQuery::ReadDataByKey("k0".into()))
                .unwrap();
            engine
                .execute(
                    &Session::customer("neo"),
                    &GdprQuery::ReadDataByUser("neo".into()),
                )
                .unwrap();
            engine
                .execute(&processor, &GdprQuery::ReadDataByKey("missing".into()))
                .unwrap_err();

            let snap = engine.op_telemetry().expect("router keeps telemetry");
            let creates = snap.get("create-record").unwrap();
            assert_eq!((creates.ok, creates.errors), (16, 0), "shards={shards}");
            assert_eq!(creates.latency.count, 16);
            let reads = snap.get("read-data-by-key").unwrap();
            assert_eq!((reads.ok, reads.errors), (1, 1), "shards={shards}");
            let by_user = snap.get("read-data-by-usr").unwrap();
            assert_eq!((by_user.ok, by_user.errors), (1, 0), "shards={shards}");
            assert_eq!(snap.total_ops(), 19, "shards={shards}");
            // Shard-inner tables must be empty, or GetMetrics would
            // double-report at shard counts > 1.
            for shard in engine.shards() {
                assert_eq!(shard.telemetry().snapshot().total_ops(), 0);
            }
        }
    }
}
