//! The GDPR query taxonomy (§3.3 of the paper): every control- and data-path
//! operation the four roles may issue against a personal-data store.

use crate::error::{GdprError, GdprResult};
use crate::record::{Metadata, PersonalRecord};
use std::time::Duration;

/// A metadata attribute that can be targeted by an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataField {
    Purposes,
    Objections,
    Decisions,
    Sharing,
    Source,
    User,
}

impl MetadataField {
    pub fn name(&self) -> &'static str {
        match self {
            MetadataField::Purposes => "PUR",
            MetadataField::Objections => "OBJ",
            MetadataField::Decisions => "DEC",
            MetadataField::Sharing => "SHR",
            MetadataField::Source => "SRC",
            MetadataField::User => "USR",
        }
    }
}

/// A single metadata mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetadataUpdate {
    /// Add a value to a list attribute (e.g. record a new objection, G21;
    /// register an automated decision, G22.3; add a sharing entry, G13.3).
    Add(MetadataField, String),
    /// Remove a value from a list attribute (e.g. withdraw consent for a
    /// purpose, G7.3). Removing a record's *last* declared purpose is
    /// rejected: personal data must be held for a specified purpose
    /// (G5.1b), so a record with an empty PUR list is uncollectable —
    /// the lawful operation at that point is erasure, not an update. This
    /// makes the failure *data-dependent* (the same update can be valid
    /// for one matching record and invalid for another), which is why
    /// group updates validate every match before committing any.
    Remove(MetadataField, String),
    /// Replace a scalar attribute (USR or SRC).
    SetScalar(MetadataField, String),
    /// Change the record's time-to-live.
    SetTtl(Duration),
}

impl MetadataUpdate {
    /// Apply to a metadata block.
    pub fn apply(&self, m: &mut Metadata) -> GdprResult<()> {
        match self {
            MetadataUpdate::Add(field, value) => {
                let list = list_of(m, *field)?;
                if !list.contains(value) {
                    list.push(value.clone());
                }
                Ok(())
            }
            MetadataUpdate::Remove(field, value) => {
                let list = list_of(m, *field)?;
                if *field == MetadataField::Purposes
                    && list.iter().all(|v| v == value)
                    && !list.is_empty()
                {
                    // Content-independent message: group updates surface
                    // this error identically whatever record (or shard)
                    // trips it, so responses stay shard-count invariant.
                    return Err(GdprError::InvalidRecord(
                        "cannot remove the last declared purpose (G5.1b): \
                         a record with no purpose must be erased, not updated"
                            .to_string(),
                    ));
                }
                list.retain(|v| v != value);
                Ok(())
            }
            MetadataUpdate::SetScalar(field, value) => {
                match field {
                    MetadataField::User => m.user = value.clone(),
                    MetadataField::Source => m.source = value.clone(),
                    other => {
                        return Err(GdprError::InvalidRecord(format!(
                            "{} is not a scalar attribute",
                            other.name()
                        )))
                    }
                }
                Ok(())
            }
            MetadataUpdate::SetTtl(ttl) => {
                m.ttl = Some(*ttl);
                Ok(())
            }
        }
    }

    /// Can [`Self::apply`] succeed on one record yet fail on another?
    /// The sharded router runs its cross-shard pre-validation only where
    /// a later shard could fail after an earlier one committed; for
    /// update shapes whose failures depend on the update alone, every
    /// record of a group fails identically and shard-local
    /// validate-all-then-commit is already all-or-nothing.
    ///
    /// Deliberately conservative: the match is exhaustive (adding a
    /// variant forces a decision here), only shapes *proven*
    /// record-independent return `false`, and all of `Remove` answers
    /// `true` — today only `Remove(Purposes)` actually is (the G5.1b
    /// last-purpose guard above), but claiming independence for the
    /// other fields would turn a future guard on them into silent
    /// cross-shard partial commits, whereas over-claiming dependence
    /// costs only a redundant validation read.
    pub fn validation_is_data_dependent(&self) -> bool {
        match self {
            // Add never fails on list fields and fails identically on
            // scalar ones; SetScalar mirrors that; SetTtl never fails.
            MetadataUpdate::Add(..) | MetadataUpdate::SetScalar(..) | MetadataUpdate::SetTtl(_) => {
                false
            }
            MetadataUpdate::Remove(..) => true,
        }
    }
}

fn list_of(m: &mut Metadata, field: MetadataField) -> GdprResult<&mut Vec<String>> {
    Ok(match field {
        MetadataField::Purposes => &mut m.purposes,
        MetadataField::Objections => &mut m.objections,
        MetadataField::Decisions => &mut m.decisions,
        MetadataField::Sharing => &mut m.sharing,
        other => {
            return Err(GdprError::InvalidRecord(format!(
                "{} is not a list attribute",
                other.name()
            )))
        }
    })
}

/// A GDPR query. Grouping and naming follow §3.3 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum GdprQuery {
    /// CREATE-RECORD (G24): controller inserts a record with metadata.
    CreateRecord(PersonalRecord),

    /// DELETE-RECORD-BY-KEY (G17): erase one record.
    DeleteByKey(String),
    /// DELETE-RECORD-BY-PUR (G5.1b): erase records of a completed purpose.
    DeleteByPurpose(String),
    /// DELETE-RECORD-BY-TTL (G5.1e): purge expired records.
    DeleteExpired,
    /// DELETE-RECORD-BY-USR: erase all records of one person.
    DeleteByUser(String),

    /// READ-DATA-BY-KEY (G28): processor fetches one data item.
    ReadDataByKey(String),
    /// READ-DATA-BY-PUR (G28): data usable for a purpose.
    ReadDataByPurpose(String),
    /// READ-DATA-BY-USR (G20): all of a person's data (portability).
    ReadDataByUser(String),
    /// READ-DATA-BY-OBJ (G21.3): data *not* objecting to a usage.
    ReadDataNotObjecting(String),
    /// READ-DATA-BY-DEC (G22): data eligible for automated decision-making.
    ReadDataDecisionEligible,

    /// READ-METADATA-BY-KEY (G15): metadata of one record.
    ReadMetadataByKey(String),
    /// READ-METADATA-BY-USR (G15): metadata of a person's records.
    ReadMetadataByUser(String),
    /// READ-METADATA-BY-SHR (G13.1): records shared with a third party.
    ReadMetadataBySharedWith(String),

    /// UPDATE-DATA-BY-KEY (G16): rectify the data payload.
    UpdateDataByKey { key: String, data: String },

    /// UPDATE-METADATA-BY-KEY (G18.1, G7.3): mutate one record's metadata.
    UpdateMetadataByKey { key: String, update: MetadataUpdate },
    /// UPDATE-METADATA-BY-PUR (G13.3): mutate metadata of a purpose group.
    UpdateMetadataByPurpose {
        purpose: String,
        update: MetadataUpdate,
    },
    /// UPDATE-METADATA-BY-USR (G22.3): mutate metadata of a person's records.
    UpdateMetadataByUser {
        user: String,
        update: MetadataUpdate,
    },

    /// GET-SYSTEM-LOGS (G33, G34): audit log for a time range (ms).
    GetSystemLogs { from_ms: u64, to_ms: u64 },
    /// GET-SYSTEM-FEATURES (G24, G25): supported security capabilities.
    GetSystemFeatures,
    /// verify-deletion: regulator confirms a key is really gone (G17).
    VerifyDeletion(String),
}

impl GdprQuery {
    /// The benchmark name of this query class.
    pub fn name(&self) -> &'static str {
        use GdprQuery::*;
        match self {
            CreateRecord(_) => "create-record",
            DeleteByKey(_) => "delete-record-by-key",
            DeleteByPurpose(_) => "delete-record-by-pur",
            DeleteExpired => "delete-record-by-ttl",
            DeleteByUser(_) => "delete-record-by-usr",
            ReadDataByKey(_) => "read-data-by-key",
            ReadDataByPurpose(_) => "read-data-by-pur",
            ReadDataByUser(_) => "read-data-by-usr",
            ReadDataNotObjecting(_) => "read-data-by-obj",
            ReadDataDecisionEligible => "read-data-by-dec",
            ReadMetadataByKey(_) => "read-metadata-by-key",
            ReadMetadataByUser(_) => "read-metadata-by-usr",
            ReadMetadataBySharedWith(_) => "read-metadata-by-shr",
            UpdateDataByKey { .. } => "update-data-by-key",
            UpdateMetadataByKey { .. } => "update-metadata-by-key",
            UpdateMetadataByPurpose { .. } => "update-metadata-by-pur",
            UpdateMetadataByUser { .. } => "update-metadata-by-usr",
            GetSystemLogs { .. } => "get-system-logs",
            GetSystemFeatures => "get-system-features",
            VerifyDeletion(_) => "verify-deletion",
        }
    }

    /// The audit-trail scope detail for this query (key, user, purpose...).
    pub fn detail(&self) -> String {
        use GdprQuery::*;
        match self {
            CreateRecord(r) => format!("key={}", r.key),
            DeleteByKey(k) | ReadDataByKey(k) | ReadMetadataByKey(k) | VerifyDeletion(k) => {
                format!("key={k}")
            }
            DeleteByPurpose(p) | ReadDataByPurpose(p) => format!("pur={p}"),
            DeleteExpired => "ttl".into(),
            DeleteByUser(u) | ReadDataByUser(u) | ReadMetadataByUser(u) => format!("usr={u}"),
            ReadDataNotObjecting(o) => format!("obj={o}"),
            ReadDataDecisionEligible => "dec".into(),
            ReadMetadataBySharedWith(s) => format!("shr={s}"),
            UpdateDataByKey { key, .. } | UpdateMetadataByKey { key, .. } => format!("key={key}"),
            UpdateMetadataByPurpose { purpose, .. } => format!("pur={purpose}"),
            UpdateMetadataByUser { user, .. } => format!("usr={user}"),
            GetSystemLogs { from_ms, to_ms } => format!("range={from_ms}..{to_ms}"),
            GetSystemFeatures => "features".into(),
        }
    }

    /// Does the query mutate the store?
    pub fn is_write(&self) -> bool {
        use GdprQuery::*;
        matches!(
            self,
            CreateRecord(_)
                | DeleteByKey(_)
                | DeleteByPurpose(_)
                | DeleteExpired
                | DeleteByUser(_)
                | UpdateDataByKey { .. }
                | UpdateMetadataByKey { .. }
                | UpdateMetadataByPurpose { .. }
                | UpdateMetadataByUser { .. }
        )
    }

    /// Is this a metadata-conditioned operation (rather than a plain key
    /// lookup)? The paper's observation is that GDPR workloads are heavily
    /// skewed toward these.
    pub fn is_metadata_based(&self) -> bool {
        use GdprQuery::*;
        !matches!(
            self,
            CreateRecord(_)
                | DeleteByKey(_)
                | ReadDataByKey(_)
                | UpdateDataByKey { .. }
                | GetSystemLogs { .. }
                | GetSystemFeatures
                | VerifyDeletion(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_add_and_remove_on_lists() {
        let mut m = Metadata::default();
        MetadataUpdate::Add(MetadataField::Objections, "ads".into())
            .apply(&mut m)
            .unwrap();
        MetadataUpdate::Add(MetadataField::Objections, "ads".into())
            .apply(&mut m)
            .unwrap();
        assert_eq!(m.objections, vec!["ads"], "add must be idempotent");
        MetadataUpdate::Remove(MetadataField::Objections, "ads".into())
            .apply(&mut m)
            .unwrap();
        assert!(m.objections.is_empty());
    }

    #[test]
    fn removing_last_purpose_is_rejected() {
        let mut m = Metadata {
            purposes: vec!["ads".into(), "2fa".into()],
            ..Metadata::default()
        };
        MetadataUpdate::Remove(MetadataField::Purposes, "ads".into())
            .apply(&mut m)
            .unwrap();
        assert_eq!(m.purposes, vec!["2fa"]);
        // The same update is invalid once it would empty the list — the
        // failure is data-dependent, and must not mutate the record.
        assert!(matches!(
            MetadataUpdate::Remove(MetadataField::Purposes, "2fa".into()).apply(&mut m),
            Err(GdprError::InvalidRecord(_))
        ));
        assert_eq!(m.purposes, vec!["2fa"], "rejected update must not apply");
        // Removing a purpose the record never declared stays a no-op.
        MetadataUpdate::Remove(MetadataField::Purposes, "analytics".into())
            .apply(&mut m)
            .unwrap();
        assert_eq!(m.purposes, vec!["2fa"]);
    }

    #[test]
    fn update_scalars_and_ttl() {
        let mut m = Metadata::default();
        MetadataUpdate::SetScalar(MetadataField::Source, "third-party".into())
            .apply(&mut m)
            .unwrap();
        assert_eq!(m.source, "third-party");
        MetadataUpdate::SetTtl(Duration::from_secs(60))
            .apply(&mut m)
            .unwrap();
        assert_eq!(m.ttl, Some(Duration::from_secs(60)));
    }

    #[test]
    fn update_type_errors() {
        let mut m = Metadata::default();
        assert!(MetadataUpdate::Add(MetadataField::User, "x".into())
            .apply(&mut m)
            .is_err());
        assert!(
            MetadataUpdate::SetScalar(MetadataField::Purposes, "x".into())
                .apply(&mut m)
                .is_err()
        );
    }

    #[test]
    fn names_cover_the_paper_taxonomy() {
        let q = GdprQuery::DeleteExpired;
        assert_eq!(q.name(), "delete-record-by-ttl");
        assert_eq!(GdprQuery::GetSystemFeatures.name(), "get-system-features");
        assert_eq!(
            GdprQuery::ReadDataNotObjecting("ads".into()).name(),
            "read-data-by-obj"
        );
    }

    #[test]
    fn write_and_metadata_classification() {
        assert!(GdprQuery::DeleteByUser("u".into()).is_write());
        assert!(!GdprQuery::ReadDataByKey("k".into()).is_write());
        assert!(GdprQuery::ReadDataByPurpose("p".into()).is_metadata_based());
        assert!(!GdprQuery::ReadDataByKey("k".into()).is_metadata_based());
        assert!(GdprQuery::DeleteExpired.is_metadata_based());
        assert!(!GdprQuery::VerifyDeletion("k".into()).is_metadata_based());
    }
}
