//! The GDPR data model, query taxonomy, and compliance layer — the primary
//! contribution of *Understanding and Benchmarking the Impact of GDPR on
//! Database Systems* (VLDB 2020), reimplemented as a library.
//!
//! The paper's §3 analysis distills GDPR's articles into three demands on a
//! database system, and this crate provides each as a first-class artifact:
//!
//! 1. **Metadata explosion** (§3.1): every personal data item carries seven
//!    metadata attributes — purpose, time-to-live, objections, audit trail,
//!    origin/sharing, automated-decision flags, and the associated person.
//!    [`record::PersonalRecord`] is that representation, and [`wire`]
//!    implements the paper's §4.2.1 ASCII record format.
//! 2. **Protection by design** (§3.2): the five security features —
//!    timely deletion, monitoring/logging, metadata indexing, encryption,
//!    access control — appear as [`compliance::ComplianceFeature`]s so a
//!    store's posture is a checkable [`compliance::FeatureReport`].
//! 3. **GDPR queries** (§3.3): the complete query taxonomy (CREATE-RECORD,
//!    DELETE-RECORD-BY-*, READ-DATA-BY-*, READ-METADATA-BY-*,
//!    UPDATE-DATA-BY-KEY, UPDATE-METADATA-BY-*, GET-SYSTEM-*) is
//!    [`query::GdprQuery`], and [`acl`] enforces which of the four roles
//!    (controller, customer, processor, regulator — Figure 1) may issue
//!    which query over whose records.
//!
//! Table 1 of the paper — the article-to-attribute/action map — is encoded
//! verbatim in [`articles`].
//!
//! The compliance layer itself is implemented exactly once:
//! [`engine::ComplianceEngine`] owns authorization, record visibility,
//! audit logging, and the single [`query::GdprQuery`] dispatch in the
//! workspace, over the narrow [`store::RecordStore`] backend trait.
//! Metadata predicates resolve through pushdown (native secondary
//! indexes), through the engine's [`metaindex::MetadataIndex`] (inverted
//! user/purpose/objection/sharing → keys maps, a live all-keys set and a
//! decision-eligibility set for the negative predicates, plus a
//! TTL-ordered expiry set — every [`store::RecordPredicate`] variant is
//! index-answerable), or by full scan — all three provably equivalent.
//! Multi-record write paths coalesce index maintenance through
//! [`metaindex::IndexBatch`], one lock acquisition per group instead of
//! one per record. See the `connectors` crate for the Redis- and
//! PostgreSQL-shaped backends.
//!
//! For scale-out, [`sharded::ShardedEngine`] hash-partitions keys across N
//! inner engines: point ops route to the owning shard, metadata predicates
//! fan out with deterministic merging, and one unified audit trail spans
//! the fleet — shard count is a performance knob, never a semantic one.

pub mod acl;
pub mod articles;
pub mod audit;
pub mod compliance;
pub mod connector;
pub mod engine;
pub mod error;
pub mod metaindex;
pub mod query;
pub mod record;
pub mod response;
pub mod role;
pub mod sharded;
pub mod snapshot;
pub mod store;
pub mod telemetry;
pub mod tenant;
pub mod wire;

pub use compliance::{ComplianceFeature, FeatureReport};
pub use connector::{EngineHandle, GdprConnector};
pub use engine::ComplianceEngine;
pub use error::GdprError;
pub use metaindex::{IndexBatch, IndexEntry, MetadataIndex};
pub use query::{GdprQuery, MetadataField, MetadataUpdate};
pub use record::{Metadata, PersonalRecord};
pub use response::GdprResponse;
pub use role::{Role, Session};
pub use sharded::{shard_count_from_env, shard_of, ShardedEngine};
pub use snapshot::{IndexRecovery, SnapshotInvalid, SnapshotStamp};
pub use store::{RecordPredicate, RecordStore};
pub use telemetry::{
    AtomicHistogram, HistogramSnapshot, OpSnapshot, OpTelemetry, OpTelemetrySnapshot,
};
pub use tenant::TenantId;
