//! The shared compliance engine: authorization, record visibility, audit
//! logging, and the full [`GdprQuery`] dispatch, implemented exactly once
//! over the narrow [`RecordStore`] backend trait.
//!
//! Before this module, every connector hand-rolled a near-identical ~300
//! line dispatcher, and the Redis-shaped one answered *every* metadata
//! predicate with a full scan-decrypt-parse of the keyspace. The engine
//! centralizes the policy layer (this is the "compliance as a first-class
//! database concern" framing of the Cambridge Report the paper cites) and
//! resolves each metadata predicate through a three-level strategy:
//!
//! 1. **Pushdown** — the backend evaluates the predicate natively
//!    ([`RecordStore::select`]); the relational store routes this to its
//!    own secondary indexes.
//! 2. **Engine index** — an attached [`MetadataIndex`] answers by inverted
//!    lookup in O(matches), then every candidate is re-fetched and
//!    re-verified; this is what turns the key-value backend's O(n) scans
//!    into O(matches) probes.
//! 3. **Full scan** — [`RecordStore::scan`] filtered by
//!    [`RecordPredicate::matches`], the reference semantics.
//!
//! All three levels return identical result sets (the property suite pins
//! this), so index and pushdown are pure accelerations, never semantic
//! forks.

use crate::acl::{authorize, record_visible};
use crate::audit::{AuditDraft, AuditTrail};
use crate::compliance::FeatureReport;
use crate::connector::SpaceReport;
use crate::error::{GdprError, GdprResult};
use crate::metaindex::{IndexBatch, MetadataIndex};
use crate::query::GdprQuery;
use crate::record::PersonalRecord;
use crate::response::GdprResponse;
use crate::role::Session;
use crate::snapshot::{self, IndexRecovery, SnapshotStamp};
use crate::store::{RecordPredicate, RecordStore};
use crate::telemetry::{OpTelemetry, OpTelemetrySnapshot};
use crate::GdprConnector;
use clock::SharedClock;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Where (and as which shard of which topology) this engine persists its
/// index snapshot.
struct SnapshotConfig {
    path: PathBuf,
    shard_index: u32,
    shard_count: u32,
}

/// The one compliance layer every backend shares.
pub struct ComplianceEngine<S: RecordStore> {
    store: S,
    audit: AuditTrail,
    index: Option<Arc<MetadataIndex>>,
    clock: SharedClock,
    /// Set on the snapshot-aware open path; enables
    /// [`Self::write_index_snapshot`] / [`Self::close`].
    snapshot: Option<SnapshotConfig>,
    /// How the index came up on the snapshot-aware open path.
    recovery: Option<IndexRecovery>,
    /// Per-opcode service-time telemetry, recorded at the execute entry
    /// points (never inside `dispatch`, so a sharded router timing its
    /// shards' dispatches directly counts each op exactly once).
    telemetry: Arc<OpTelemetry>,
}

impl<S: RecordStore> ComplianceEngine<S> {
    /// An engine resolving metadata predicates by pushdown or full scan —
    /// the paper-faithful configuration for stores without secondary
    /// indexes.
    pub fn new(store: S) -> ComplianceEngine<S> {
        let clock = store.clock();
        ComplianceEngine {
            audit: AuditTrail::new(clock.clone()),
            index: None,
            clock,
            store,
            snapshot: None,
            recovery: None,
            telemetry: Arc::new(OpTelemetry::new()),
        }
    }

    /// An engine maintaining a [`MetadataIndex`] over the store: inverted
    /// `user/purpose/objection/sharing → keys` maps, the all-keys and
    /// decision-eligibility sets (which make the negative predicates
    /// index-answerable), plus a deadline-ordered expiry set. Existing
    /// records are back-filled in one batch (TTL deadlines re-anchor at
    /// attach time), and the store's expiry path is wired to invalidate
    /// index entries the moment a record is reaped.
    pub fn with_metadata_index(store: S) -> GdprResult<ComplianceEngine<S>> {
        let mut engine = ComplianceEngine::new(store);
        let index = engine.attach_index_listener();
        Self::backfill_index(&engine.store, &engine.clock, &index)?;
        engine.index = Some(index);
        Ok(engine)
    }

    /// The snapshot-aware open path: as [`Self::with_metadata_index`],
    /// but the index is recovered through
    /// [`MetadataIndex::restore_or_rebuild`] against the image at `path`
    /// — O(index) when the image is trustworthy (its generation stamp
    /// equals [`RecordStore::persistence_generation`] and its topology
    /// header matches), the usual O(n) backfill otherwise. The engine
    /// remembers `path` so [`Self::write_index_snapshot`] /
    /// [`Self::close`] can persist the index again; a missing image on
    /// first boot simply rebuilds and is written on the next close.
    pub fn with_metadata_index_snapshot(
        store: S,
        path: impl Into<PathBuf>,
    ) -> GdprResult<ComplianceEngine<S>> {
        Self::with_metadata_index_snapshot_at(store, path, 0, 1)
    }

    /// As [`Self::with_metadata_index_snapshot`], for one shard of a
    /// sharded topology: the shard coordinates are stamped into (and
    /// checked against) the snapshot header, so an image written under a
    /// different shard count can never be loaded into a topology where
    /// the key→shard map changed ([`crate::sharded::ShardedEngine`] opens
    /// its shards through this).
    pub fn with_metadata_index_snapshot_at(
        store: S,
        path: impl Into<PathBuf>,
        shard_index: u32,
        shard_count: u32,
    ) -> GdprResult<ComplianceEngine<S>> {
        let mut engine = ComplianceEngine::new(store);
        let index = engine.attach_index_listener();
        let path = path.into();
        let expected = SnapshotStamp {
            generation: engine.store.persistence_generation(),
            shard_index,
            shard_count,
        };
        let recovery = index.restore_or_rebuild(&path, &expected, |idx| {
            Self::backfill_index(&engine.store, &engine.clock, idx)
        })?;
        engine.index = Some(index);
        engine.snapshot = Some(SnapshotConfig {
            path,
            shard_index,
            shard_count,
        });
        engine.recovery = Some(recovery);
        Ok(engine)
    }

    /// Create the engine's index and wire the store's expiry path to it
    /// before any backfill/restore. A reap that fires *after* the built
    /// index is installed invalidates its entry as usual; one racing the
    /// build itself can be clobbered by the install and leave a stale
    /// entry — the same transient window as live index maintenance, and
    /// equally harmless: reads re-verify candidates against the store,
    /// and the purge path unions store-side deadlines.
    fn attach_index_listener(&mut self) -> Arc<MetadataIndex> {
        let index = Arc::new(MetadataIndex::new());
        let listener_index = Arc::clone(&index);
        self.store.on_expiry(Arc::new(move |key| {
            listener_index.remove(key);
        }));
        index
    }

    /// The O(n) index build: scan every record and index it in one batch.
    /// Returns how many records were scanned.
    fn backfill_index(store: &S, clock: &SharedClock, index: &MetadataIndex) -> GdprResult<usize> {
        let now_ms = clock.now().as_millis();
        let mut batch = IndexBatch::new();
        let records = store.scan()?;
        let n = records.len();
        for record in records {
            // The store's remaining deadline is authoritative for records
            // that predate the engine; re-deriving `now + declared TTL`
            // would extend their retention by the already-elapsed lifetime.
            let deadline_ms = store.deadline_ms(&record.key).or_else(|| {
                record
                    .metadata
                    .ttl
                    .map(|ttl| now_ms + ttl.as_millis() as u64)
            });
            batch.upsert_at(record, deadline_ms);
        }
        // One lock acquisition for the whole backfill, not one per record.
        index.apply(batch);
        Ok(n)
    }

    /// How the index came up on the snapshot-aware open path (`None` for
    /// the other constructors).
    pub fn index_recovery(&self) -> Option<&IndexRecovery> {
        self.recovery.as_ref()
    }

    /// Persist the index image now: stamp it with the store's persistence
    /// generation and atomically replace the configured snapshot file.
    /// Returns the entry count.
    ///
    /// Snapshots are meant for **write-quiescent moments** (graceful
    /// close, admin checkpoints — the same discipline as `rebalance()`).
    /// The generation is captured before the export and re-checked after:
    /// a store write racing the export window fails the call loudly
    /// instead of producing an image whose stamp and content could
    /// disagree (a torn AOF tail replaying to exactly the stamped
    /// generation would then trust a divergent image). The engine is
    /// non-transactional, so a store-committed write whose index update
    /// has not yet been applied is indistinguishable from quiescence —
    /// hold writes while snapshotting, as `close()` callers do.
    pub fn write_index_snapshot(&self) -> GdprResult<usize> {
        let Some(cfg) = &self.snapshot else {
            return Err(GdprError::Unsupported(
                "engine was not opened with an index snapshot path".to_string(),
            ));
        };
        let Some(index) = &self.index else {
            return Err(GdprError::Unsupported(
                "engine maintains no metadata index".to_string(),
            ));
        };
        let generation = self.store.persistence_generation();
        let stamp = SnapshotStamp {
            generation,
            shard_index: cfg.shard_index,
            shard_count: cfg.shard_count,
        };
        let written = snapshot::write_snapshot(&cfg.path, index, &stamp)?;
        if self.store.persistence_generation() != generation {
            // A write landed mid-export; the image on disk is stamped
            // with a generation the store has moved past, so recovery
            // would correctly refuse it — surface the race instead of
            // leaving a snapshot that can only rebuild.
            return Err(GdprError::Store(
                "a store write raced the index snapshot; retry at write quiescence".to_string(),
            ));
        }
        Ok(written)
    }

    /// Graceful close: persist the index snapshot when one is configured
    /// (no-op otherwise), returning the entries written. Safe to call
    /// repeatedly.
    pub fn close(&self) -> GdprResult<usize> {
        if self.snapshot.is_some() {
            self.write_index_snapshot()
        } else {
            Ok(0)
        }
    }

    /// The backend.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The audit trail serving GET-SYSTEM-LOGS.
    pub fn audit(&self) -> &AuditTrail {
        &self.audit
    }

    /// The attached metadata index, if this engine maintains one.
    pub fn metadata_index(&self) -> Option<&Arc<MetadataIndex>> {
        self.index.as_ref()
    }

    /// This engine's per-opcode telemetry table.
    pub fn telemetry(&self) -> &Arc<OpTelemetry> {
        &self.telemetry
    }

    /// Execute one GDPR query under a session, recording it in the audit
    /// trail whatever the outcome (G30: every interaction is logged).
    pub fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        let started = Instant::now();
        let result = self.dispatch(session, query);
        self.telemetry
            .record(query, started.elapsed(), result.is_err());
        self.audit
            .record_batch(vec![audit_draft(session, query, &result)]);
        result
    }

    /// Execute a batch of queries in order — semantically identical to
    /// calling [`ComplianceEngine::execute`] per op, but audit entries are
    /// committed per batch (one clock read, one lock acquisition) instead
    /// of per op. A `GetSystemLogs` inside the batch flushes the pending
    /// entries first, so log reads observe their batch predecessors
    /// exactly as sequential execution would.
    pub fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        let mut results = Vec::with_capacity(ops.len());
        let mut drafts = Vec::with_capacity(ops.len());
        for (session, query) in &ops {
            if matches!(query, GdprQuery::GetSystemLogs { .. }) {
                self.audit.record_batch(std::mem::take(&mut drafts));
            }
            let started = Instant::now();
            let result = self.dispatch(session, query);
            self.telemetry
                .record(query, started.elapsed(), result.is_err());
            drafts.push(audit_draft(session, query, &result));
            results.push(result);
        }
        self.audit.record_batch(drafts);
        results
    }

    fn now_ms(&self) -> u64 {
        self.clock.now().as_millis()
    }

    /// Fetch a record that must exist, or `NotFound`.
    fn fetch_required(&self, key: &str) -> GdprResult<PersonalRecord> {
        self.store
            .fetch(key)?
            .ok_or_else(|| GdprError::NotFound(key.to_string()))
    }

    /// All records matching `pred`, resolved pushdown → index → scan.
    fn read_matching(&self, pred: &RecordPredicate) -> GdprResult<Vec<PersonalRecord>> {
        if let Some(result) = self.store.select(pred) {
            return result;
        }
        if let Some(index) = &self.index {
            if let Some(keys) = index.keys_for(pred) {
                let mut out = Vec::with_capacity(keys.len());
                for key in keys {
                    // A candidate can be stale (expired since indexing, or
                    // mutated concurrently): re-verify against the
                    // reference semantics before returning it.
                    match self.store.fetch(&key)? {
                        Some(record) if pred.matches(&record) => out.push(record),
                        _ => {}
                    }
                }
                return Ok(out);
            }
        }
        Ok(self
            .store
            .scan()?
            .into_iter()
            .filter(|r| pred.matches(r))
            .collect())
    }

    /// Erase all records matching `pred`, keeping any index consistent.
    /// Index maintenance is coalesced into one [`IndexBatch`] (one lock
    /// acquisition for the whole group), applied even when a store delete
    /// fails mid-loop so the index tracks exactly the committed deletions.
    fn delete_matching(&self, pred: &RecordPredicate) -> GdprResult<usize> {
        // With an engine index attached, deletion must go key-by-key so the
        // index learns which records died; pushdown would erase them behind
        // the index's back.
        if self.index.is_none() {
            if let Some(result) = self.store.delete_matching(pred) {
                return result;
            }
        }
        let victims = self.read_matching(pred)?;
        self.commit_batched(
            victims,
            |engine, record| engine.store.delete(&record.key),
            |record, batch| batch.remove(record.key),
        )
    }

    /// Apply a metadata update to all records matching `pred` —
    /// **validate-all-then-commit**: `update.apply` runs on every match
    /// before any `store.rewrite`, so an update that is invalid for *any*
    /// matching record (e.g. removing the last declared purpose of one of
    /// them) mutates nothing at all. Without the validation phase a
    /// mid-loop failure would leave earlier matches rewritten and
    /// reindexed while the caller sees `Err`.
    ///
    /// A *store* failure during the commit phase still leaves earlier
    /// rewrites in place (the same partial progress a sharded fan-out
    /// exposes); the index batch is applied either way so it tracks
    /// exactly the committed rewrites.
    fn update_matching(
        &self,
        pred: &RecordPredicate,
        update: &crate::query::MetadataUpdate,
    ) -> GdprResult<usize> {
        let ttl_changed = matches!(update, crate::query::MetadataUpdate::SetTtl(_));
        let mut updated = self.read_matching(pred)?;
        for record in &mut updated {
            update.apply(&mut record.metadata)?;
        }
        let now_ms = self.now_ms();
        self.commit_batched(
            updated,
            |engine, record| engine.store.rewrite(record, ttl_changed).map(|()| true),
            |record, batch| batch.upsert(record, now_ms, !ttl_changed),
        )
    }

    /// The shared commit loop of every multi-record write: run the store
    /// op per item, stopping at the first store failure, and record index
    /// maintenance for each *committed* item into one [`IndexBatch`] that
    /// is applied whatever happens — so the index tracks exactly the
    /// committed ops, success or failure. Returns how many ops counted
    /// (the store op's `bool`).
    fn commit_batched<T>(
        &self,
        items: impl IntoIterator<Item = T>,
        mut store_op: impl FnMut(&Self, &T) -> GdprResult<bool>,
        mut index_op: impl FnMut(T, &mut IndexBatch),
    ) -> GdprResult<usize> {
        let mut batch = IndexBatch::new();
        let mut n = 0;
        let mut failure = None;
        for item in items {
            match store_op(self, &item) {
                Ok(counted) => {
                    if counted {
                        n += 1;
                    }
                    index_op(item, &mut batch);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.apply_index_batch(batch);
        match failure {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Dry-run a group update: `update.apply` on (a copy of) every record
    /// matching `pred`, committing nothing. [`crate::sharded::ShardedEngine`]
    /// runs this on *every* shard before dispatching the update to *any*
    /// shard, so a validation failure leaves all shards untouched — exactly
    /// what the unsharded engine's validate-all-then-commit guarantees.
    pub(crate) fn validate_update(
        &self,
        pred: &RecordPredicate,
        update: &crate::query::MetadataUpdate,
    ) -> GdprResult<()> {
        for mut record in self.read_matching(pred)? {
            update.apply(&mut record.metadata)?;
        }
        Ok(())
    }

    fn index_new(&self, record: &PersonalRecord) {
        if let Some(index) = &self.index {
            index.upsert(record, self.now_ms(), false);
        }
    }

    /// Apply a coalesced maintenance batch to the index, if one is
    /// attached — one lock acquisition however many records the batch
    /// touches. No-op (and no lock) without an index or for empty batches.
    pub(crate) fn apply_index_batch(&self, batch: IndexBatch) {
        if let Some(index) = &self.index {
            index.apply(batch);
        }
    }

    fn reindex(&self, record: &PersonalRecord, ttl_changed: bool) {
        if let Some(index) = &self.index {
            index.upsert(record, self.now_ms(), !ttl_changed);
        }
    }

    pub(crate) fn unindex(&self, key: &str) {
        if let Some(index) = &self.index {
            index.remove(key);
        }
    }

    /// DELETE-RECORD-BY-TTL: purge everything past due (deadlines are
    /// inclusive: `deadline == now` is already due). With an index, the
    /// deadline-ordered expiry set yields the due keys in O(expired) —
    /// but the index is an accelerator, not the source of truth, so its
    /// due set is **unioned** with the store's own purge machinery:
    /// records the index never learned (written behind the engine, or
    /// indexed before a `clear()`) still carry store-side deadlines and
    /// must not outlive them just because the index forgot. Index
    /// removals are coalesced into one batch.
    fn purge_expired(&self) -> GdprResult<usize> {
        let Some(index) = &self.index else {
            return self.store.purge_expired();
        };
        let mut n = self.commit_batched(
            index.expired_keys(self.now_ms()),
            |engine, key| engine.store.delete(key),
            |key, batch| batch.remove(key),
        )?;
        // Store-side stragglers the index never knew about. Keys already
        // deleted above are gone from the store, so nothing double-counts;
        // stores whose purge fires the expiry listener scrub any matching
        // index entries themselves.
        n += self.store.purge_expired()?;
        Ok(n)
    }

    /// The single `GdprQuery` dispatch in the workspace. Crate-visible so
    /// [`crate::sharded::ShardedEngine`] can route queries to shard engines
    /// without each shard recording a fragment of the audit trail — the
    /// router keeps the one unified trail (G30: one event per query).
    pub(crate) fn dispatch(
        &self,
        session: &Session,
        query: &GdprQuery,
    ) -> GdprResult<GdprResponse> {
        use GdprQuery::*;
        let decision = authorize(session, query)?;
        let guard = |record: &PersonalRecord| -> GdprResult<()> {
            if decision.requires_record_check && !record_visible(session, record) {
                Err(GdprError::AccessDenied {
                    role: session.role.name().to_string(),
                    query: query.name().to_string(),
                    reason: "record not visible to this session".to_string(),
                })
            } else {
                Ok(())
            }
        };
        let data_of = |records: Vec<PersonalRecord>| {
            GdprResponse::Data(records.into_iter().map(|r| (r.key, r.data)).collect())
        };
        let metadata_of = |records: Vec<PersonalRecord>| {
            GdprResponse::Metadata(records.into_iter().map(|r| (r.key, r.metadata)).collect())
        };

        match query {
            CreateRecord(record) => {
                // Collision detection is the store's contract (`put` fails
                // with AlreadyExists): an engine-level pre-fetch would add a
                // redundant full point lookup to every create on the
                // bulk-load hot path.
                self.store.put(record)?;
                self.index_new(record);
                Ok(GdprResponse::Created)
            }

            DeleteByKey(key) => {
                let record = self.fetch_required(key)?;
                guard(&record)?;
                self.store.delete(key)?;
                self.unindex(key);
                Ok(GdprResponse::Deleted(1))
            }
            DeleteByPurpose(purpose) => Ok(GdprResponse::Deleted(
                self.delete_matching(&RecordPredicate::DeclaredPurpose(purpose.clone()))?,
            )),
            DeleteExpired => Ok(GdprResponse::Deleted(self.purge_expired()?)),
            DeleteByUser(user) => Ok(GdprResponse::Deleted(
                self.delete_matching(&RecordPredicate::User(user.clone()))?,
            )),

            ReadDataByKey(key) => {
                let record = self.fetch_required(key)?;
                guard(&record)?;
                Ok(GdprResponse::Data(vec![(record.key, record.data)]))
            }
            // Canonical READ-DATA-BY-PUR semantics for every backend:
            // declared purpose AND no objection to it (G5.1b + G21).
            ReadDataByPurpose(purpose) => Ok(data_of(
                self.read_matching(&RecordPredicate::AllowsPurpose(purpose.clone()))?,
            )),
            ReadDataByUser(user) => Ok(data_of(
                self.read_matching(&RecordPredicate::User(user.clone()))?,
            )),
            ReadDataNotObjecting(usage) => Ok(data_of(
                self.read_matching(&RecordPredicate::NotObjecting(usage.clone()))?,
            )),
            ReadDataDecisionEligible => Ok(data_of(
                self.read_matching(&RecordPredicate::DecisionEligible)?,
            )),

            ReadMetadataByKey(key) => {
                let record = self.fetch_required(key)?;
                guard(&record)?;
                Ok(GdprResponse::Metadata(vec![(record.key, record.metadata)]))
            }
            ReadMetadataByUser(user) => Ok(metadata_of(
                self.read_matching(&RecordPredicate::User(user.clone()))?,
            )),
            ReadMetadataBySharedWith(party) => Ok(metadata_of(
                self.read_matching(&RecordPredicate::SharedWith(party.clone()))?,
            )),

            UpdateDataByKey { key, data } => {
                let mut record = self.fetch_required(key)?;
                guard(&record)?;
                record.data = data.clone();
                self.store.rewrite(&record, false)?;
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByKey { key, update } => {
                let mut record = self.fetch_required(key)?;
                guard(&record)?;
                let ttl_changed = matches!(update, crate::query::MetadataUpdate::SetTtl(_));
                update.apply(&mut record.metadata)?;
                self.store.rewrite(&record, ttl_changed)?;
                self.reindex(&record, ttl_changed);
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByPurpose { purpose, update } => Ok(GdprResponse::Updated(
                self.update_matching(&RecordPredicate::DeclaredPurpose(purpose.clone()), update)?,
            )),
            UpdateMetadataByUser { user, update } => Ok(GdprResponse::Updated(
                self.update_matching(&RecordPredicate::User(user.clone()), update)?,
            )),

            GetSystemLogs { from_ms, to_ms } => Ok(GdprResponse::Logs(
                self.audit.lines_between(*from_ms, *to_ms),
            )),
            GetSystemFeatures => Ok(GdprResponse::Features(self.store.features())),
            VerifyDeletion(key) => Ok(GdprResponse::DeletionVerified(
                self.store.fetch(key)?.is_none(),
            )),
        }
    }
}

/// The audit entry a query outcome owes — shared by the engine's execute
/// paths and [`crate::sharded::ShardedEngine`]'s, so batched and
/// sequential execution render byte-identical trails.
pub(crate) fn audit_draft(
    session: &Session,
    query: &GdprQuery,
    result: &GdprResult<GdprResponse>,
) -> AuditDraft {
    let err_text = result.as_ref().err().map(ToString::to_string);
    let outcome = match &result {
        Ok(resp) => Ok(resp.cardinality()),
        Err(_) => Err(err_text.as_deref().unwrap_or("error")),
    };
    AuditDraft::new(session, query.name(), query.detail(), outcome)
}

/// Every engine is a connector: backends only implement [`RecordStore`],
/// and the engine supplies the whole [`GdprConnector`] surface.
impl<S: RecordStore> GdprConnector for ComplianceEngine<S> {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        ComplianceEngine::execute(self, session, query)
    }

    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        ComplianceEngine::execute_batch(self, ops)
    }

    fn features(&self) -> FeatureReport {
        self.store.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.store.space_report()
    }

    fn record_count(&self) -> usize {
        self.store.record_count()
    }

    fn name(&self) -> &str {
        self.store.name()
    }

    fn close(&self) -> GdprResult<()> {
        ComplianceEngine::close(self).map(|_| ())
    }

    fn op_telemetry(&self) -> Option<OpTelemetrySnapshot> {
        Some(self.telemetry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// A trivial in-memory RecordStore with no TTL machinery and no
    /// pushdown — exercises the engine's scan and index paths in isolation
    /// from the real backends.
    struct MemStore {
        rows: Mutex<BTreeMap<String, PersonalRecord>>,
        clock: SharedClock,
    }

    impl MemStore {
        fn new() -> MemStore {
            MemStore {
                rows: Mutex::new(BTreeMap::new()),
                clock: clock::sim(),
            }
        }
    }

    impl RecordStore for MemStore {
        fn clock(&self) -> SharedClock {
            self.clock.clone()
        }
        fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
            Ok(self.rows.lock().get(key).cloned())
        }
        fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn rewrite(&self, record: &PersonalRecord, _ttl_changed: bool) -> GdprResult<()> {
            self.rows.lock().insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn delete(&self, key: &str) -> GdprResult<bool> {
            Ok(self.rows.lock().remove(key).is_some())
        }
        fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
            Ok(self.rows.lock().values().cloned().collect())
        }
        fn purge_expired(&self) -> GdprResult<usize> {
            Ok(0)
        }
        fn space_report(&self) -> SpaceReport {
            SpaceReport::default()
        }
        fn record_count(&self) -> usize {
            self.rows.lock().len()
        }
        fn features(&self) -> FeatureReport {
            FeatureReport::default()
        }
        fn name(&self) -> &str {
            "mem"
        }
    }

    fn record(key: &str, user: &str, purposes: &[&str]) -> PersonalRecord {
        PersonalRecord::new(
            key,
            format!("data-{key}"),
            Metadata::new(
                user,
                purposes.iter().map(|s| s.to_string()).collect(),
                Duration::from_secs(3600),
            ),
        )
    }

    fn engines() -> Vec<ComplianceEngine<MemStore>> {
        vec![
            ComplianceEngine::new(MemStore::new()),
            ComplianceEngine::with_metadata_index(MemStore::new()).unwrap(),
        ]
    }

    #[test]
    fn scan_and_index_paths_agree() {
        for engine in engines() {
            let controller = Session::controller();
            for (k, u, p) in [
                ("a", "neo", &["ads"][..]),
                ("b", "neo", &["2fa"][..]),
                ("c", "trinity", &["ads"][..]),
            ] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(record(k, u, p)))
                    .unwrap();
            }
            let resp = engine
                .execute(
                    &Session::customer("neo"),
                    &GdprQuery::ReadDataByUser("neo".into()),
                )
                .unwrap();
            let mut keys: Vec<_> = resp
                .as_data()
                .unwrap()
                .iter()
                .map(|(k, _)| k.clone())
                .collect();
            keys.sort();
            assert_eq!(
                keys,
                vec!["a", "b"],
                "indexed={}",
                engine.metadata_index().is_some()
            );

            let resp = engine
                .execute(
                    &Session::processor("ads"),
                    &GdprQuery::ReadDataByPurpose("ads".into()),
                )
                .unwrap();
            assert_eq!(resp.cardinality(), 2);
        }
    }

    #[test]
    fn index_tracks_create_update_delete() {
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        let index = Arc::clone(engine.metadata_index().unwrap());
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        assert_eq!(index.keys_by_user("neo"), vec!["k1"]);
        assert_eq!(index.keys_by_purpose("ads"), vec!["k1"]);

        // Objection lands in the objection index.
        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::UpdateMetadataByKey {
                    key: "k1".into(),
                    update: crate::query::MetadataUpdate::Add(
                        crate::query::MetadataField::Objections,
                        "ads".into(),
                    ),
                },
            )
            .unwrap();
        assert_eq!(index.keys_with_objection("ads"), vec!["k1"]);
        // AllowsPurpose now excludes it.
        assert_eq!(
            index.keys_for(&RecordPredicate::AllowsPurpose("ads".into())),
            Some(vec![])
        );

        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::DeleteByKey("k1".into()),
            )
            .unwrap();
        assert!(index.fully_absent("k1"));
    }

    #[test]
    fn backfill_indexes_preexisting_records() {
        let store = MemStore::new();
        store.put(&record("old", "neo", &["ads"])).unwrap();
        let engine = ComplianceEngine::with_metadata_index(store).unwrap();
        assert_eq!(
            engine.metadata_index().unwrap().keys_by_user("neo"),
            vec!["old"]
        );
        let resp = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 1);
    }

    #[test]
    fn stale_index_entries_are_filtered_not_returned() {
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        // Sabotage: remove the row behind the index's back.
        engine.store().rows.lock().remove("k1");
        let resp = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 0, "stale candidate must not surface");
    }

    /// Regression (write-path consistency): a group metadata update whose
    /// `update.apply` is invalid for a *later* match must mutate nothing.
    /// Before validate-all-then-commit, the loop rewrote and reindexed
    /// earlier matches, then returned `Err` — the caller saw failure while
    /// half the group was already updated.
    #[test]
    fn group_update_validates_all_matches_before_committing() {
        for engine in engines() {
            let controller = Session::controller();
            // Scan order is key order: "a" (valid for the update) commits
            // first under the old code, then "b" (whose only purpose is
            // "ads") fails validation.
            engine
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(record("a", "neo", &["ads", "2fa"])),
                )
                .unwrap();
            engine
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(record("b", "neo", &["ads"])),
                )
                .unwrap();
            let result = engine.execute(
                &controller,
                &GdprQuery::UpdateMetadataByPurpose {
                    purpose: "ads".into(),
                    update: crate::query::MetadataUpdate::Remove(
                        crate::query::MetadataField::Purposes,
                        "ads".into(),
                    ),
                },
            );
            assert!(
                matches!(result, Err(GdprError::InvalidRecord(_))),
                "removing b's last purpose must fail the whole group"
            );
            // No partial mutation: both records keep their purposes.
            for (key, purposes) in [("a", vec!["ads", "2fa"]), ("b", vec!["ads"])] {
                let stored = engine.store().fetch(key).unwrap().unwrap();
                assert_eq!(
                    stored.metadata.purposes,
                    purposes,
                    "indexed={}: {key} must be untouched after the failed group update",
                    engine.metadata_index().is_some()
                );
            }
            // And any index still advertises both under the purpose.
            if let Some(index) = engine.metadata_index() {
                assert_eq!(index.keys_by_purpose("ads"), vec!["a", "b"]);
            }
        }
    }

    /// The negative predicates resolve through the index — `keys_for` is
    /// `Some` for every `RecordPredicate` variant — and agree with the
    /// scan path.
    #[test]
    fn negative_predicates_resolve_through_the_index() {
        let controller = Session::controller();
        let engines = engines();
        for engine in &engines {
            let mut objecting = record("k-obj", "neo", &["ads"]);
            objecting.metadata.objections.push("ads".into());
            let mut opted_out = record("k-dec", "neo", &["2fa"]);
            opted_out
                .metadata
                .decisions
                .push(crate::record::Metadata::DEC_OPT_OUT.to_string());
            for r in [objecting, opted_out, record("k-plain", "trinity", &["ads"])] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(r))
                    .unwrap();
            }
        }
        let cases = [
            (
                GdprQuery::ReadDataNotObjecting("ads".into()),
                vec!["k-dec", "k-plain"],
            ),
            (
                GdprQuery::ReadDataDecisionEligible,
                vec!["k-obj", "k-plain"],
            ),
        ];
        for engine in &engines {
            for (query, expected) in &cases {
                let resp = engine.execute(&Session::processor("x"), query).unwrap();
                let mut keys: Vec<_> = resp
                    .as_data()
                    .unwrap()
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect();
                keys.sort();
                assert_eq!(
                    &keys,
                    expected,
                    "indexed={}: {query:?}",
                    engine.metadata_index().is_some()
                );
            }
        }
        let index = engines[1].metadata_index().unwrap();
        for pred in [
            RecordPredicate::User("neo".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x".into()),
        ] {
            assert!(
                index.keys_for(&pred).is_some(),
                "{pred:?} must take the index path"
            );
        }
    }

    #[test]
    fn audit_records_every_execution() {
        let engine = ComplianceEngine::new(MemStore::new());
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        let _ = engine.execute(&controller, &GdprQuery::ReadDataByKey("k1".into()));
        assert_eq!(engine.audit().len(), 2, "denied queries are audited too");
        let lines = engine.audit().lines_between(0, u64::MAX);
        assert!(lines.iter().any(|l| l.operation == "create-record"));
    }
}
