//! The shared compliance engine: authorization, record visibility, audit
//! logging, and the full [`GdprQuery`] dispatch, implemented exactly once
//! over the narrow [`RecordStore`] backend trait.
//!
//! Before this module, every connector hand-rolled a near-identical ~300
//! line dispatcher, and the Redis-shaped one answered *every* metadata
//! predicate with a full scan-decrypt-parse of the keyspace. The engine
//! centralizes the policy layer (this is the "compliance as a first-class
//! database concern" framing of the Cambridge Report the paper cites) and
//! resolves each metadata predicate through a three-level strategy:
//!
//! 1. **Pushdown** — the backend evaluates the predicate natively
//!    ([`RecordStore::select`]); the relational store routes this to its
//!    own secondary indexes.
//! 2. **Engine index** — an attached [`MetadataIndex`] answers by inverted
//!    lookup in O(matches), then every candidate is re-fetched and
//!    re-verified; this is what turns the key-value backend's O(n) scans
//!    into O(matches) probes.
//! 3. **Full scan** — [`RecordStore::scan`] filtered by
//!    [`RecordPredicate::matches`], the reference semantics.
//!
//! All three levels return identical result sets (the property suite pins
//! this), so index and pushdown are pure accelerations, never semantic
//! forks.

use crate::acl::{authorize, record_visible};
use crate::audit::{AuditDraft, AuditTrail};
use crate::compliance::FeatureReport;
use crate::connector::SpaceReport;
use crate::error::{GdprError, GdprResult};
use crate::metaindex::{IndexBatch, MetadataIndex};
use crate::query::GdprQuery;
use crate::record::PersonalRecord;
use crate::response::GdprResponse;
use crate::role::Session;
use crate::snapshot::{self, IndexRecovery, SnapshotStamp};
use crate::store::{RecordPredicate, RecordStore};
use crate::telemetry::{OpTelemetry, OpTelemetrySnapshot};
use crate::tenant::TenantId;
use crate::GdprConnector;
use clock::SharedClock;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where (and as which shard of which topology) this engine persists its
/// index snapshot.
struct SnapshotConfig {
    path: PathBuf,
    shard_index: u32,
    shard_count: u32,
}

/// Everything one tenant owns inside an engine: its audit trail (so
/// GET-SYSTEM-LOGS returns only the caller's interactions), its metadata
/// index partition (when the engine is indexed), and its telemetry table
/// (so op/error counts and slow-op lines attribute to a tenant).
pub(crate) struct TenantState {
    pub(crate) audit: AuditTrail,
    pub(crate) index: Option<Arc<MetadataIndex>>,
    pub(crate) telemetry: Arc<OpTelemetry>,
}

/// The tenant → state table. The default tenant is a direct field (the
/// single-tenant hot path never touches a lock); named tenants live in
/// an RwLock'd map, created lazily on first use or restored at open.
struct TenantTable {
    default_state: Arc<TenantState>,
    extra: RwLock<BTreeMap<String, Arc<TenantState>>>,
    /// Flipped (and never unflipped) once any named tenant exists — the
    /// cue for the write paths to stop using store-wide pushdowns that
    /// would cross tenant boundaries.
    multi: AtomicBool,
}

impl TenantTable {
    fn new(clock: &SharedClock, indexed: bool) -> Arc<TenantTable> {
        Arc::new(TenantTable {
            default_state: Arc::new(TenantState {
                audit: AuditTrail::new(clock.clone()),
                index: indexed.then(|| Arc::new(MetadataIndex::new())),
                telemetry: Arc::new(OpTelemetry::new()),
            }),
            extra: RwLock::new(BTreeMap::new()),
            multi: AtomicBool::new(false),
        })
    }

    fn get(&self, name: &str) -> Option<Arc<TenantState>> {
        if name.is_empty() {
            return Some(Arc::clone(&self.default_state));
        }
        self.extra.read().get(name).map(Arc::clone)
    }

    /// Route a store-side expiry to the owning tenant's index partition.
    /// Looks up only — a reap never creates tenant state.
    fn on_store_expiry(&self, storage_key: &str) {
        let (tenant, _) = TenantId::split_storage_key(storage_key);
        if let Some(state) = self.get(tenant) {
            if let Some(index) = &state.index {
                index.remove(storage_key);
            }
        }
    }
}

/// The one compliance layer every backend shares.
pub struct ComplianceEngine<S: RecordStore> {
    store: S,
    /// Per-tenant audit/index/telemetry partitions; see [`TenantTable`].
    tenants: Arc<TenantTable>,
    clock: SharedClock,
    /// Set on the snapshot-aware open path; enables
    /// [`Self::write_index_snapshot`] / [`Self::close`].
    snapshot: Option<SnapshotConfig>,
    /// How the index came up on the snapshot-aware open path.
    recovery: Option<IndexRecovery>,
}

impl<S: RecordStore> ComplianceEngine<S> {
    /// An engine resolving metadata predicates by pushdown or full scan —
    /// the paper-faithful configuration for stores without secondary
    /// indexes.
    pub fn new(store: S) -> ComplianceEngine<S> {
        Self::build(store, false)
    }

    fn build(store: S, indexed: bool) -> ComplianceEngine<S> {
        let clock = store.clock();
        ComplianceEngine {
            tenants: TenantTable::new(&clock, indexed),
            clock,
            store,
            snapshot: None,
            recovery: None,
        }
    }

    /// Does this engine maintain metadata index partitions?
    fn indexed(&self) -> bool {
        self.tenants.default_state.index.is_some()
    }

    /// Has any named tenant ever been seen? While false, the engine is in
    /// the degenerate single-tenant mode and keeps the exact pre-tenancy
    /// fast paths (store-wide pushdown deletes and purges).
    fn multi_tenant(&self) -> bool {
        self.tenants.multi.load(Ordering::Relaxed)
    }

    /// An engine maintaining a [`MetadataIndex`] over the store: inverted
    /// `user/purpose/objection/sharing → keys` maps, the all-keys and
    /// decision-eligibility sets (which make the negative predicates
    /// index-answerable), plus a deadline-ordered expiry set. Existing
    /// records are back-filled in one batch (TTL deadlines re-anchor at
    /// attach time), and the store's expiry path is wired to invalidate
    /// index entries the moment a record is reaped.
    pub fn with_metadata_index(store: S) -> GdprResult<ComplianceEngine<S>> {
        let engine = ComplianceEngine::build(store, true);
        engine.attach_index_listener();
        engine.backfill_all()?;
        Ok(engine)
    }

    /// The snapshot-aware open path: as [`Self::with_metadata_index`],
    /// but the index is recovered through
    /// [`MetadataIndex::restore_or_rebuild`] against the image at `path`
    /// — O(index) when the image is trustworthy (its generation stamp
    /// equals [`RecordStore::persistence_generation`] and its topology
    /// header matches), the usual O(n) backfill otherwise. The engine
    /// remembers `path` so [`Self::write_index_snapshot`] /
    /// [`Self::close`] can persist the index again; a missing image on
    /// first boot simply rebuilds and is written on the next close.
    pub fn with_metadata_index_snapshot(
        store: S,
        path: impl Into<PathBuf>,
    ) -> GdprResult<ComplianceEngine<S>> {
        Self::with_metadata_index_snapshot_at(store, path, 0, 1)
    }

    /// As [`Self::with_metadata_index_snapshot`], for one shard of a
    /// sharded topology: the shard coordinates are stamped into (and
    /// checked against) the snapshot header, so an image written under a
    /// different shard count can never be loaded into a topology where
    /// the key→shard map changed ([`crate::sharded::ShardedEngine`] opens
    /// its shards through this).
    pub fn with_metadata_index_snapshot_at(
        store: S,
        path: impl Into<PathBuf>,
        shard_index: u32,
        shard_count: u32,
    ) -> GdprResult<ComplianceEngine<S>> {
        let mut engine = ComplianceEngine::build(store, true);
        engine.attach_index_listener();
        let path = path.into();
        let expected = SnapshotStamp {
            generation: engine.store.persistence_generation(),
            shard_index,
            shard_count,
        };
        let recovery = {
            let engine = &engine;
            snapshot::restore_or_rebuild_tenants(
                &path,
                &expected,
                &mut |tenant_name| {
                    let tenant = TenantId::new(tenant_name)
                        .map_err(crate::snapshot::SnapshotInvalid::BadTenant)?;
                    let state = engine
                        .create_or_get_state(&tenant, false)
                        .map_err(|e| crate::snapshot::SnapshotInvalid::BadTenant(e.to_string()))?;
                    state.index.clone().ok_or_else(|| {
                        crate::snapshot::SnapshotInvalid::BadTenant(
                            "engine is not indexed".to_string(),
                        )
                    })
                },
                || engine.backfill_all(),
            )?
        };
        engine.snapshot = Some(SnapshotConfig {
            path,
            shard_index,
            shard_count,
        });
        engine.recovery = Some(recovery);
        Ok(engine)
    }

    /// Wire the store's expiry path to the tenant table before any
    /// backfill/restore: a reap routes to the owning tenant's index
    /// partition by storage-key prefix. A reap racing a build can be
    /// clobbered by the install and leave a stale entry — the same
    /// transient window as live index maintenance, and equally harmless:
    /// reads re-verify candidates against the store, and the purge path
    /// unions store-side deadlines.
    fn attach_index_listener(&self) {
        let table = Arc::clone(&self.tenants);
        self.store.on_expiry(Arc::new(move |key| {
            table.on_store_expiry(key);
        }));
    }

    /// The O(n) index build for every tenant at once: scan every record,
    /// partition by storage-key prefix, and apply one batch per tenant
    /// (creating tenant states as discovered). Returns how many records
    /// were scanned.
    fn backfill_all(&self) -> GdprResult<usize> {
        let now_ms = self.clock.now().as_millis();
        let records = self.store.scan()?;
        let n = records.len();
        let mut batches: Vec<(String, IndexBatch)> = Vec::new();
        for record in records {
            // The store's remaining deadline is authoritative for records
            // that predate the engine; re-deriving `now + declared TTL`
            // would extend their retention by the already-elapsed lifetime.
            let deadline_ms = self.store.deadline_ms(&record.key).or_else(|| {
                record
                    .metadata
                    .ttl
                    .map(|ttl| now_ms + ttl.as_millis() as u64)
            });
            let (tenant, _) = TenantId::split_storage_key(&record.key);
            let batch = match batches.iter_mut().find(|(t, _)| t == tenant) {
                Some((_, batch)) => batch,
                None => {
                    batches.push((tenant.to_string(), IndexBatch::new()));
                    &mut batches.last_mut().expect("just pushed").1
                }
            };
            batch.upsert_at(record, deadline_ms);
        }
        for (tenant_name, batch) in batches {
            // Prefixes that are not valid tenant names cannot have been
            // written through the engine; skip rather than fabricate a
            // partition for them.
            let Ok(tenant) = TenantId::new(tenant_name) else {
                continue;
            };
            let state = self.create_or_get_state(&tenant, false)?;
            if let Some(index) = &state.index {
                // One lock acquisition per tenant, not one per record.
                index.apply(batch);
            }
        }
        Ok(n)
    }

    /// The per-tenant O(n) index build: scan, keep this tenant's records,
    /// apply one batch. Used when a tenant state is created lazily at
    /// runtime (after a restart, the tenant's records are already in the
    /// store but its partition does not exist yet).
    fn backfill_tenant(&self, tenant: &TenantId, index: &MetadataIndex) -> GdprResult<usize> {
        let now_ms = self.clock.now().as_millis();
        let mut batch = IndexBatch::new();
        let mut n = 0;
        for record in self.store.scan()? {
            if !tenant.owns(&record.key) {
                continue;
            }
            let deadline_ms = self.store.deadline_ms(&record.key).or_else(|| {
                record
                    .metadata
                    .ttl
                    .map(|ttl| now_ms + ttl.as_millis() as u64)
            });
            batch.upsert_at(record, deadline_ms);
            n += 1;
        }
        index.apply(batch);
        Ok(n)
    }

    /// Resolve the state a session's tenant operates in, creating it on
    /// first use (with a scoped backfill when the engine is indexed).
    pub(crate) fn tenant_state(&self, tenant: &TenantId) -> GdprResult<Arc<TenantState>> {
        if tenant.is_default() {
            return Ok(Arc::clone(&self.tenants.default_state));
        }
        if let Some(state) = self.tenants.get(tenant.name()) {
            return Ok(state);
        }
        self.create_or_get_state(tenant, true)
    }

    /// Install a fresh state for `tenant` (or adopt a concurrently
    /// installed one). The state is registered *before* any backfill so
    /// concurrent writes from the same tenant index into the installed
    /// partition rather than a discarded one; the backfill's upserts are
    /// idempotent against them.
    fn create_or_get_state(
        &self,
        tenant: &TenantId,
        backfill: bool,
    ) -> GdprResult<Arc<TenantState>> {
        if tenant.is_default() {
            // The default tenant's state is pre-built; routing it through
            // the `extra` map would shadow it (and wrongly flip `multi`).
            return Ok(Arc::clone(&self.tenants.default_state));
        }
        let state = Arc::new(TenantState {
            audit: AuditTrail::new(self.clock.clone()),
            index: self.indexed().then(|| Arc::new(MetadataIndex::new())),
            telemetry: Arc::new(OpTelemetry::labeled(tenant.label())),
        });
        {
            let mut extra = self.tenants.extra.write();
            match extra.entry(tenant.name().to_string()) {
                std::collections::btree_map::Entry::Occupied(existing) => {
                    return Ok(Arc::clone(existing.get()));
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(Arc::clone(&state));
                }
            }
        }
        self.tenants.multi.store(true, Ordering::Relaxed);
        if backfill {
            if let Some(index) = &state.index {
                if let Err(e) = self.backfill_tenant(tenant, index) {
                    // Never leave a half-built partition behind: an empty
                    // index would silently answer predicates with misses.
                    self.tenants.extra.write().remove(tenant.name());
                    return Err(e);
                }
            }
        }
        Ok(state)
    }

    /// How the index came up on the snapshot-aware open path (`None` for
    /// the other constructors).
    pub fn index_recovery(&self) -> Option<&IndexRecovery> {
        self.recovery.as_ref()
    }

    /// Persist the index image now: stamp it with the store's persistence
    /// generation and atomically replace the configured snapshot file.
    /// Returns the entry count.
    ///
    /// Snapshots are meant for **write-quiescent moments** (graceful
    /// close, admin checkpoints — the same discipline as `rebalance()`).
    /// The generation is captured before the export and re-checked after:
    /// a store write racing the export window fails the call loudly
    /// instead of producing an image whose stamp and content could
    /// disagree (a torn AOF tail replaying to exactly the stamped
    /// generation would then trust a divergent image). The engine is
    /// non-transactional, so a store-committed write whose index update
    /// has not yet been applied is indistinguishable from quiescence —
    /// hold writes while snapshotting, as `close()` callers do.
    pub fn write_index_snapshot(&self) -> GdprResult<usize> {
        let Some(cfg) = &self.snapshot else {
            return Err(GdprError::Unsupported(
                "engine was not opened with an index snapshot path".to_string(),
            ));
        };
        if !self.indexed() {
            return Err(GdprError::Unsupported(
                "engine maintains no metadata index".to_string(),
            ));
        }
        // One multi-tenant image: the default tenant's section first, then
        // every named tenant in name order — the tenant set is part of the
        // checksummed image, so a vanished partition can never be mistaken
        // for an empty-but-trusted one.
        let mut sections: Vec<(String, Arc<MetadataIndex>)> = Vec::new();
        if let Some(index) = &self.tenants.default_state.index {
            sections.push((String::new(), Arc::clone(index)));
        }
        for (name, state) in self.tenants.extra.read().iter() {
            if let Some(index) = &state.index {
                sections.push((name.clone(), Arc::clone(index)));
            }
        }
        let generation = self.store.persistence_generation();
        let stamp = SnapshotStamp {
            generation,
            shard_index: cfg.shard_index,
            shard_count: cfg.shard_count,
        };
        let written = snapshot::write_snapshot(&cfg.path, &sections, &stamp)?;
        if self.store.persistence_generation() != generation {
            // A write landed mid-export; the image on disk is stamped
            // with a generation the store has moved past, so recovery
            // would correctly refuse it — surface the race instead of
            // leaving a snapshot that can only rebuild.
            return Err(GdprError::Store(
                "a store write raced the index snapshot; retry at write quiescence".to_string(),
            ));
        }
        Ok(written)
    }

    /// Graceful close: persist the index snapshot when one is configured
    /// (no-op otherwise), returning the entries written. Safe to call
    /// repeatedly.
    pub fn close(&self) -> GdprResult<usize> {
        if self.snapshot.is_some() {
            self.write_index_snapshot()
        } else {
            Ok(0)
        }
    }

    /// The backend.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The default tenant's audit trail serving GET-SYSTEM-LOGS (named
    /// tenants keep their own; see [`Self::tenant_audit`]).
    pub fn audit(&self) -> &AuditTrail {
        &self.tenants.default_state.audit
    }

    /// A tenant's full state, if that tenant has been seen.
    pub(crate) fn tenant_state_if_seen(&self, tenant: &TenantId) -> Option<Arc<TenantState>> {
        self.tenants.get(tenant.name())
    }

    /// The default tenant's metadata index partition, if this engine
    /// maintains indexes.
    pub fn metadata_index(&self) -> Option<&Arc<MetadataIndex>> {
        self.tenants.default_state.index.as_ref()
    }

    /// A named tenant's metadata index partition, if it exists.
    pub fn tenant_metadata_index(&self, tenant: &TenantId) -> Option<Arc<MetadataIndex>> {
        self.tenants
            .get(tenant.name())
            .and_then(|s| s.index.clone())
    }

    /// The default tenant's per-opcode telemetry table.
    pub fn telemetry(&self) -> &Arc<OpTelemetry> {
        &self.tenants.default_state.telemetry
    }

    /// Pre-provision a tenant (create its audit/index/telemetry state now
    /// instead of on first query) — `gdpr-serve --tenants N` uses this so
    /// per-tenant metrics series exist before traffic arrives.
    pub fn ensure_tenant(&self, tenant: &TenantId) -> GdprResult<()> {
        self.tenant_state(tenant).map(|_| ())
    }

    /// Every tenant's telemetry snapshot, labeled (`"default"` first).
    pub fn tenant_telemetry_snapshots(&self) -> Vec<(String, OpTelemetrySnapshot)> {
        let mut out = vec![(
            "default".to_string(),
            self.tenants.default_state.telemetry.snapshot(),
        )];
        for (name, state) in self.tenants.extra.read().iter() {
            out.push((name.clone(), state.telemetry.snapshot()));
        }
        out
    }

    /// Execute one GDPR query under a session, recording it in the
    /// session tenant's audit trail whatever the outcome (G30: every
    /// interaction is logged).
    pub fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        let state = self.tenant_state(&session.tenant)?;
        let started = Instant::now();
        let result = self.dispatch_in(&state, session, query);
        state
            .telemetry
            .record(query, started.elapsed(), result.is_err());
        state
            .audit
            .record_batch(vec![audit_draft(session, query, &result)]);
        result
    }

    /// Execute a batch of queries in order — semantically identical to
    /// calling [`ComplianceEngine::execute`] per op, but audit entries are
    /// committed per batch per tenant (one clock read, one lock
    /// acquisition) instead of per op. A `GetSystemLogs` inside the batch
    /// flushes that tenant's pending entries first, so log reads observe
    /// their batch predecessors exactly as sequential execution would —
    /// other tenants' pending entries are invisible to it either way.
    pub fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        let mut results = Vec::with_capacity(ops.len());
        // Per-tenant pending drafts; batches rarely span many tenants, so
        // a linear scan keyed by state identity beats a hash map here.
        let mut drafts: Vec<(Arc<TenantState>, Vec<AuditDraft>)> = Vec::new();
        for (session, query) in &ops {
            let state = match self.tenant_state(&session.tenant) {
                Ok(state) => state,
                Err(e) => {
                    results.push(Err(e));
                    continue;
                }
            };
            if matches!(query, GdprQuery::GetSystemLogs { .. }) {
                if let Some((_, pending)) = drafts.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &state))
                {
                    state.audit.record_batch(std::mem::take(pending));
                }
            }
            let started = Instant::now();
            let result = self.dispatch_in(&state, session, query);
            state
                .telemetry
                .record(query, started.elapsed(), result.is_err());
            let draft = audit_draft(session, query, &result);
            match drafts.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &state)) {
                Some((_, pending)) => pending.push(draft),
                None => drafts.push((state, vec![draft])),
            }
            results.push(result);
        }
        for (state, pending) in drafts {
            state.audit.record_batch(pending);
        }
        results
    }

    fn now_ms(&self) -> u64 {
        self.clock.now().as_millis()
    }

    /// Translate a logical key into the session tenant's storage key,
    /// rejecting keys that embed the tenant separator (which could forge
    /// an address in another tenant's partition).
    fn storage_key(&self, tenant: &TenantId, key: &str) -> GdprResult<String> {
        TenantId::check_logical_key(key).map_err(GdprError::InvalidRecord)?;
        Ok(tenant.storage_key(key))
    }

    /// Strip the tenant prefix off a storage key for a response. The
    /// default tenant's keys pass through untouched (no reallocation).
    fn logical_key(tenant: &TenantId, key: String) -> String {
        if tenant.is_default() {
            key
        } else {
            tenant.logical(&key).to_string()
        }
    }

    /// Fetch a record that must exist, or `NotFound` under its logical key.
    fn fetch_required(&self, tenant: &TenantId, key: &str) -> GdprResult<PersonalRecord> {
        let storage_key = self.storage_key(tenant, key)?;
        self.store
            .fetch(&storage_key)?
            .ok_or_else(|| GdprError::NotFound(key.to_string()))
    }

    /// All of **this tenant's** records matching `pred`, resolved
    /// pushdown → index partition → scan. Pushdown and scan evaluate over
    /// the shared store, so their results are filtered by storage-key
    /// ownership; the index partition is tenant-scoped by construction.
    fn read_matching(
        &self,
        state: &TenantState,
        tenant: &TenantId,
        pred: &RecordPredicate,
    ) -> GdprResult<Vec<PersonalRecord>> {
        if let Some(result) = self.store.select(pred) {
            let mut records = result?;
            records.retain(|r| tenant.owns(&r.key));
            return Ok(records);
        }
        if let Some(index) = &state.index {
            if let Some(keys) = index.keys_for(pred) {
                let mut out = Vec::with_capacity(keys.len());
                for key in keys {
                    // A candidate can be stale (expired since indexing, or
                    // mutated concurrently): re-verify against the
                    // reference semantics before returning it.
                    match self.store.fetch(&key)? {
                        Some(record) if pred.matches(&record) => out.push(record),
                        _ => {}
                    }
                }
                return Ok(out);
            }
        }
        Ok(self
            .store
            .scan()?
            .into_iter()
            .filter(|r| tenant.owns(&r.key) && pred.matches(r))
            .collect())
    }

    /// Erase all records matching `pred`, keeping any index consistent.
    /// Index maintenance is coalesced into one [`IndexBatch`] (one lock
    /// acquisition for the whole group), applied even when a store delete
    /// fails mid-loop so the index tracks exactly the committed deletions.
    fn delete_matching(
        &self,
        state: &TenantState,
        tenant: &TenantId,
        pred: &RecordPredicate,
    ) -> GdprResult<usize> {
        // With an engine index attached, deletion must go key-by-key so the
        // index learns which records died; pushdown would erase them behind
        // the index's back. Once any named tenant exists, pushdown is off
        // for everyone: the store-wide delete cannot see tenant boundaries.
        if state.index.is_none() && !self.multi_tenant() {
            if let Some(result) = self.store.delete_matching(pred) {
                return result;
            }
        }
        let victims = self.read_matching(state, tenant, pred)?;
        self.commit_batched(
            state,
            victims,
            |engine, record| engine.store.delete(&record.key),
            |record, batch| batch.remove(record.key),
        )
    }

    /// Apply a metadata update to all records matching `pred` —
    /// **validate-all-then-commit**: `update.apply` runs on every match
    /// before any `store.rewrite`, so an update that is invalid for *any*
    /// matching record (e.g. removing the last declared purpose of one of
    /// them) mutates nothing at all. Without the validation phase a
    /// mid-loop failure would leave earlier matches rewritten and
    /// reindexed while the caller sees `Err`.
    ///
    /// A *store* failure during the commit phase still leaves earlier
    /// rewrites in place (the same partial progress a sharded fan-out
    /// exposes); the index batch is applied either way so it tracks
    /// exactly the committed rewrites.
    fn update_matching(
        &self,
        state: &TenantState,
        tenant: &TenantId,
        pred: &RecordPredicate,
        update: &crate::query::MetadataUpdate,
    ) -> GdprResult<usize> {
        let ttl_changed = matches!(update, crate::query::MetadataUpdate::SetTtl(_));
        let mut updated = self.read_matching(state, tenant, pred)?;
        for record in &mut updated {
            update.apply(&mut record.metadata)?;
        }
        let now_ms = self.now_ms();
        self.commit_batched(
            state,
            updated,
            |engine, record| engine.store.rewrite(record, ttl_changed).map(|()| true),
            |record, batch| batch.upsert(record, now_ms, !ttl_changed),
        )
    }

    /// The shared commit loop of every multi-record write: run the store
    /// op per item, stopping at the first store failure, and record index
    /// maintenance for each *committed* item into one [`IndexBatch`] that
    /// is applied whatever happens — so the index tracks exactly the
    /// committed ops, success or failure. Returns how many ops counted
    /// (the store op's `bool`).
    fn commit_batched<T>(
        &self,
        state: &TenantState,
        items: impl IntoIterator<Item = T>,
        mut store_op: impl FnMut(&Self, &T) -> GdprResult<bool>,
        mut index_op: impl FnMut(T, &mut IndexBatch),
    ) -> GdprResult<usize> {
        let mut batch = IndexBatch::new();
        let mut n = 0;
        let mut failure = None;
        for item in items {
            match store_op(self, &item) {
                Ok(counted) => {
                    if counted {
                        n += 1;
                    }
                    index_op(item, &mut batch);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(index) = &state.index {
            index.apply(batch);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Dry-run a group update: `update.apply` on (a copy of) every record
    /// matching `pred`, committing nothing. [`crate::sharded::ShardedEngine`]
    /// runs this on *every* shard before dispatching the update to *any*
    /// shard, so a validation failure leaves all shards untouched — exactly
    /// what the unsharded engine's validate-all-then-commit guarantees.
    pub(crate) fn validate_update(
        &self,
        tenant: &TenantId,
        pred: &RecordPredicate,
        update: &crate::query::MetadataUpdate,
    ) -> GdprResult<()> {
        let state = self.tenant_state(tenant)?;
        for mut record in self.read_matching(&state, tenant, pred)? {
            update.apply(&mut record.metadata)?;
        }
        Ok(())
    }

    fn index_new(&self, state: &TenantState, record: &PersonalRecord) {
        if let Some(index) = &state.index {
            index.upsert(record, self.now_ms(), false);
        }
    }

    /// Apply a coalesced maintenance batch, routing each op to the owning
    /// tenant's index partition by storage-key prefix — one lock
    /// acquisition per touched tenant however many records the batch
    /// holds. [`crate::sharded::ShardedEngine::rebalance`] feeds this with
    /// mixed-tenant batches; single-tenant callers pay one partition
    /// lookup and one apply, exactly as before. No-op without indexes.
    pub(crate) fn apply_index_batch(&self, batch: IndexBatch) {
        if !self.indexed() || batch.is_empty() {
            return;
        }
        for (tenant_name, sub) in
            batch.split_by(|key| TenantId::split_storage_key(key).0.to_string())
        {
            let Ok(tenant) = TenantId::new(tenant_name) else {
                // A prefix that is not a valid tenant name cannot have
                // been written through the engine; nothing to maintain.
                continue;
            };
            let Ok(state) = self.tenant_state(&tenant) else {
                continue;
            };
            if let Some(index) = &state.index {
                index.apply(sub);
            }
        }
    }

    fn reindex(&self, state: &TenantState, record: &PersonalRecord, ttl_changed: bool) {
        if let Some(index) = &state.index {
            index.upsert(record, self.now_ms(), !ttl_changed);
        }
    }

    pub(crate) fn unindex(&self, state: &TenantState, key: &str) {
        if let Some(index) = &state.index {
            index.remove(key);
        }
    }

    /// DELETE-RECORD-BY-TTL: purge everything past due (deadlines are
    /// inclusive: `deadline == now` is already due). With an index, the
    /// deadline-ordered expiry set yields the due keys in O(expired) —
    /// but the index is an accelerator, not the source of truth, so its
    /// due set is **unioned** with the store's own purge machinery:
    /// records the index never learned (written behind the engine, or
    /// indexed before a `clear()`) still carry store-side deadlines and
    /// must not outlive them just because the index forgot. Index
    /// removals are coalesced into one batch.
    fn purge_expired(&self, state: &TenantState, tenant: &TenantId) -> GdprResult<usize> {
        if !self.multi_tenant() {
            // Degenerate single-tenant mode: the exact pre-tenancy path.
            let Some(index) = &state.index else {
                return self.store.purge_expired();
            };
            let mut n = self.commit_batched(
                state,
                index.expired_keys(self.now_ms()),
                |engine, key| engine.store.delete(key),
                |key, batch| batch.remove(key),
            )?;
            // Store-side stragglers the index never knew about. Keys
            // already deleted above are gone from the store, so nothing
            // double-counts; stores whose purge fires the expiry listener
            // scrub any matching index entries themselves.
            n += self.store.purge_expired()?;
            Ok(n)
        } else {
            // Multi-tenant: a tenant's purge must only erase (and only
            // count) its own records, so the store-wide purge machinery is
            // off limits. Union the tenant's index partition due set with
            // an ownership-filtered sweep of store-side deadlines — the
            // index stays an accelerator, never the sole source of truth.
            // The sweep uses `expired_keys` (a side-effect-free key
            // enumeration), NOT `scan`: on the key-value store a scan's
            // GETs lazily reap every tenant's past-due records, which both
            // crosses tenant boundaries and destroys the very records this
            // tenant is entitled to count in its own purge.
            let now_ms = self.now_ms();
            let mut victims: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
            if let Some(index) = &state.index {
                victims.extend(index.expired_keys(now_ms));
            }
            for key in self.store.expired_keys()? {
                if tenant.owns(&key) {
                    victims.insert(key);
                }
            }
            self.commit_batched(
                state,
                victims,
                |engine, key| engine.store.delete(key),
                |key, batch| batch.remove(key),
            )
        }
    }

    /// The single `GdprQuery` dispatch in the workspace. Crate-visible so
    /// [`crate::sharded::ShardedEngine`] can route queries to shard engines
    /// without each shard recording a fragment of the audit trail — the
    /// router keeps the one unified trail (G30: one event per query).
    pub(crate) fn dispatch(
        &self,
        session: &Session,
        query: &GdprQuery,
    ) -> GdprResult<GdprResponse> {
        let state = self.tenant_state(&session.tenant)?;
        self.dispatch_in(&state, session, query)
    }

    /// The dispatch body, scoped to one resolved tenant state. Logical ↔
    /// storage key translation happens here — queries arrive with logical
    /// keys, the store is addressed with tenant-namespaced storage keys,
    /// and every response key is translated back before it leaves.
    fn dispatch_in(
        &self,
        state: &TenantState,
        session: &Session,
        query: &GdprQuery,
    ) -> GdprResult<GdprResponse> {
        use GdprQuery::*;
        let tenant = &session.tenant;
        let decision = authorize(session, query)?;
        let guard = |record: &PersonalRecord| -> GdprResult<()> {
            if decision.requires_record_check && !record_visible(session, record) {
                Err(GdprError::AccessDenied {
                    role: session.role.name().to_string(),
                    query: query.name().to_string(),
                    reason: "record not visible to this session".to_string(),
                })
            } else {
                Ok(())
            }
        };
        let data_of = |records: Vec<PersonalRecord>| {
            GdprResponse::Data(
                records
                    .into_iter()
                    .map(|r| (Self::logical_key(tenant, r.key), r.data))
                    .collect(),
            )
        };
        let metadata_of = |records: Vec<PersonalRecord>| {
            GdprResponse::Metadata(
                records
                    .into_iter()
                    .map(|r| (Self::logical_key(tenant, r.key), r.metadata))
                    .collect(),
            )
        };

        match query {
            CreateRecord(record) => {
                // Collision detection is the store's contract (`put` fails
                // with AlreadyExists): an engine-level pre-fetch would add a
                // redundant full point lookup to every create on the
                // bulk-load hot path.
                if tenant.is_default() {
                    TenantId::check_logical_key(&record.key).map_err(GdprError::InvalidRecord)?;
                    self.store.put(record)?;
                    self.index_new(state, record);
                } else {
                    let mut namespaced = record.clone();
                    namespaced.key = self.storage_key(tenant, &record.key)?;
                    self.store.put(&namespaced).map_err(|e| match e {
                        // Surface the logical key, not the storage key.
                        GdprError::AlreadyExists(_) => GdprError::AlreadyExists(record.key.clone()),
                        other => other,
                    })?;
                    self.index_new(state, &namespaced);
                }
                Ok(GdprResponse::Created)
            }

            DeleteByKey(key) => {
                let record = self.fetch_required(tenant, key)?;
                guard(&record)?;
                self.store.delete(&record.key)?;
                self.unindex(state, &record.key);
                Ok(GdprResponse::Deleted(1))
            }
            DeleteByPurpose(purpose) => Ok(GdprResponse::Deleted(self.delete_matching(
                state,
                tenant,
                &RecordPredicate::DeclaredPurpose(purpose.clone()),
            )?)),
            DeleteExpired => Ok(GdprResponse::Deleted(self.purge_expired(state, tenant)?)),
            DeleteByUser(user) => Ok(GdprResponse::Deleted(self.delete_matching(
                state,
                tenant,
                &RecordPredicate::User(user.clone()),
            )?)),

            ReadDataByKey(key) => {
                let record = self.fetch_required(tenant, key)?;
                guard(&record)?;
                Ok(GdprResponse::Data(vec![(
                    Self::logical_key(tenant, record.key),
                    record.data,
                )]))
            }
            // Canonical READ-DATA-BY-PUR semantics for every backend:
            // declared purpose AND no objection to it (G5.1b + G21).
            ReadDataByPurpose(purpose) => Ok(data_of(self.read_matching(
                state,
                tenant,
                &RecordPredicate::AllowsPurpose(purpose.clone()),
            )?)),
            ReadDataByUser(user) => Ok(data_of(self.read_matching(
                state,
                tenant,
                &RecordPredicate::User(user.clone()),
            )?)),
            ReadDataNotObjecting(usage) => Ok(data_of(self.read_matching(
                state,
                tenant,
                &RecordPredicate::NotObjecting(usage.clone()),
            )?)),
            ReadDataDecisionEligible => Ok(data_of(self.read_matching(
                state,
                tenant,
                &RecordPredicate::DecisionEligible,
            )?)),

            ReadMetadataByKey(key) => {
                let record = self.fetch_required(tenant, key)?;
                guard(&record)?;
                Ok(GdprResponse::Metadata(vec![(
                    Self::logical_key(tenant, record.key),
                    record.metadata,
                )]))
            }
            ReadMetadataByUser(user) => Ok(metadata_of(self.read_matching(
                state,
                tenant,
                &RecordPredicate::User(user.clone()),
            )?)),
            ReadMetadataBySharedWith(party) => Ok(metadata_of(self.read_matching(
                state,
                tenant,
                &RecordPredicate::SharedWith(party.clone()),
            )?)),

            UpdateDataByKey { key, data } => {
                let mut record = self.fetch_required(tenant, key)?;
                guard(&record)?;
                record.data = data.clone();
                self.store.rewrite(&record, false)?;
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByKey { key, update } => {
                let mut record = self.fetch_required(tenant, key)?;
                guard(&record)?;
                let ttl_changed = matches!(update, crate::query::MetadataUpdate::SetTtl(_));
                update.apply(&mut record.metadata)?;
                self.store.rewrite(&record, ttl_changed)?;
                self.reindex(state, &record, ttl_changed);
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByPurpose { purpose, update } => {
                Ok(GdprResponse::Updated(self.update_matching(
                    state,
                    tenant,
                    &RecordPredicate::DeclaredPurpose(purpose.clone()),
                    update,
                )?))
            }
            UpdateMetadataByUser { user, update } => Ok(GdprResponse::Updated(
                self.update_matching(state, tenant, &RecordPredicate::User(user.clone()), update)?,
            )),

            GetSystemLogs { from_ms, to_ms } => Ok(GdprResponse::Logs(
                state.audit.lines_between(*from_ms, *to_ms),
            )),
            GetSystemFeatures => Ok(GdprResponse::Features(self.store.features())),
            VerifyDeletion(key) => {
                let storage_key = self.storage_key(tenant, key)?;
                Ok(GdprResponse::DeletionVerified(
                    self.store.fetch(&storage_key)?.is_none(),
                ))
            }
        }
    }
}

/// The audit entry a query outcome owes — shared by the engine's execute
/// paths and [`crate::sharded::ShardedEngine`]'s, so batched and
/// sequential execution render byte-identical trails.
pub(crate) fn audit_draft(
    session: &Session,
    query: &GdprQuery,
    result: &GdprResult<GdprResponse>,
) -> AuditDraft {
    let err_text = result.as_ref().err().map(ToString::to_string);
    let outcome = match &result {
        Ok(resp) => Ok(resp.cardinality()),
        Err(_) => Err(err_text.as_deref().unwrap_or("error")),
    };
    AuditDraft::new(session, query.name(), query.detail(), outcome)
}

/// Every engine is a connector: backends only implement [`RecordStore`],
/// and the engine supplies the whole [`GdprConnector`] surface.
impl<S: RecordStore> GdprConnector for ComplianceEngine<S> {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        ComplianceEngine::execute(self, session, query)
    }

    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        ComplianceEngine::execute_batch(self, ops)
    }

    fn features(&self) -> FeatureReport {
        self.store.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.store.space_report()
    }

    fn record_count(&self) -> usize {
        self.store.record_count()
    }

    fn name(&self) -> &str {
        self.store.name()
    }

    fn close(&self) -> GdprResult<()> {
        ComplianceEngine::close(self).map(|_| ())
    }

    fn op_telemetry(&self) -> Option<OpTelemetrySnapshot> {
        // Deployment-wide view: the default tenant's counters merged with
        // every named tenant's, preserving the pre-tenancy meaning.
        let mut merged = self.tenants.default_state.telemetry.snapshot();
        for state in self.tenants.extra.read().values() {
            merged.merge(&state.telemetry.snapshot());
        }
        Some(merged)
    }

    fn op_telemetry_for(&self, tenant: &TenantId) -> Option<OpTelemetrySnapshot> {
        self.tenant_state_if_seen(tenant)
            .map(|state| state.telemetry.snapshot())
    }

    fn tenant_telemetry(&self) -> Vec<(String, OpTelemetrySnapshot)> {
        self.tenant_telemetry_snapshots()
    }

    fn provision_tenant(&self, tenant: &TenantId) -> GdprResult<()> {
        self.ensure_tenant(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// A trivial in-memory RecordStore with no TTL machinery and no
    /// pushdown — exercises the engine's scan and index paths in isolation
    /// from the real backends.
    struct MemStore {
        rows: Mutex<BTreeMap<String, PersonalRecord>>,
        clock: SharedClock,
    }

    impl MemStore {
        fn new() -> MemStore {
            MemStore {
                rows: Mutex::new(BTreeMap::new()),
                clock: clock::sim(),
            }
        }
    }

    impl RecordStore for MemStore {
        fn clock(&self) -> SharedClock {
            self.clock.clone()
        }
        fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
            Ok(self.rows.lock().get(key).cloned())
        }
        fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn rewrite(&self, record: &PersonalRecord, _ttl_changed: bool) -> GdprResult<()> {
            self.rows.lock().insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn delete(&self, key: &str) -> GdprResult<bool> {
            Ok(self.rows.lock().remove(key).is_some())
        }
        fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
            Ok(self.rows.lock().values().cloned().collect())
        }
        fn purge_expired(&self) -> GdprResult<usize> {
            Ok(0)
        }
        fn space_report(&self) -> SpaceReport {
            SpaceReport::default()
        }
        fn record_count(&self) -> usize {
            self.rows.lock().len()
        }
        fn features(&self) -> FeatureReport {
            FeatureReport::default()
        }
        fn name(&self) -> &str {
            "mem"
        }
    }

    fn record(key: &str, user: &str, purposes: &[&str]) -> PersonalRecord {
        PersonalRecord::new(
            key,
            format!("data-{key}"),
            Metadata::new(
                user,
                purposes.iter().map(|s| s.to_string()).collect(),
                Duration::from_secs(3600),
            ),
        )
    }

    fn engines() -> Vec<ComplianceEngine<MemStore>> {
        vec![
            ComplianceEngine::new(MemStore::new()),
            ComplianceEngine::with_metadata_index(MemStore::new()).unwrap(),
        ]
    }

    #[test]
    fn scan_and_index_paths_agree() {
        for engine in engines() {
            let controller = Session::controller();
            for (k, u, p) in [
                ("a", "neo", &["ads"][..]),
                ("b", "neo", &["2fa"][..]),
                ("c", "trinity", &["ads"][..]),
            ] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(record(k, u, p)))
                    .unwrap();
            }
            let resp = engine
                .execute(
                    &Session::customer("neo"),
                    &GdprQuery::ReadDataByUser("neo".into()),
                )
                .unwrap();
            let mut keys: Vec<_> = resp
                .as_data()
                .unwrap()
                .iter()
                .map(|(k, _)| k.clone())
                .collect();
            keys.sort();
            assert_eq!(
                keys,
                vec!["a", "b"],
                "indexed={}",
                engine.metadata_index().is_some()
            );

            let resp = engine
                .execute(
                    &Session::processor("ads"),
                    &GdprQuery::ReadDataByPurpose("ads".into()),
                )
                .unwrap();
            assert_eq!(resp.cardinality(), 2);
        }
    }

    #[test]
    fn index_tracks_create_update_delete() {
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        let index = Arc::clone(engine.metadata_index().unwrap());
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        assert_eq!(index.keys_by_user("neo"), vec!["k1"]);
        assert_eq!(index.keys_by_purpose("ads"), vec!["k1"]);

        // Objection lands in the objection index.
        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::UpdateMetadataByKey {
                    key: "k1".into(),
                    update: crate::query::MetadataUpdate::Add(
                        crate::query::MetadataField::Objections,
                        "ads".into(),
                    ),
                },
            )
            .unwrap();
        assert_eq!(index.keys_with_objection("ads"), vec!["k1"]);
        // AllowsPurpose now excludes it.
        assert_eq!(
            index.keys_for(&RecordPredicate::AllowsPurpose("ads".into())),
            Some(vec![])
        );

        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::DeleteByKey("k1".into()),
            )
            .unwrap();
        assert!(index.fully_absent("k1"));
    }

    #[test]
    fn backfill_indexes_preexisting_records() {
        let store = MemStore::new();
        store.put(&record("old", "neo", &["ads"])).unwrap();
        let engine = ComplianceEngine::with_metadata_index(store).unwrap();
        assert_eq!(
            engine.metadata_index().unwrap().keys_by_user("neo"),
            vec!["old"]
        );
        let resp = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 1);
    }

    #[test]
    fn stale_index_entries_are_filtered_not_returned() {
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        // Sabotage: remove the row behind the index's back.
        engine.store().rows.lock().remove("k1");
        let resp = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 0, "stale candidate must not surface");
    }

    /// Regression (write-path consistency): a group metadata update whose
    /// `update.apply` is invalid for a *later* match must mutate nothing.
    /// Before validate-all-then-commit, the loop rewrote and reindexed
    /// earlier matches, then returned `Err` — the caller saw failure while
    /// half the group was already updated.
    #[test]
    fn group_update_validates_all_matches_before_committing() {
        for engine in engines() {
            let controller = Session::controller();
            // Scan order is key order: "a" (valid for the update) commits
            // first under the old code, then "b" (whose only purpose is
            // "ads") fails validation.
            engine
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(record("a", "neo", &["ads", "2fa"])),
                )
                .unwrap();
            engine
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(record("b", "neo", &["ads"])),
                )
                .unwrap();
            let result = engine.execute(
                &controller,
                &GdprQuery::UpdateMetadataByPurpose {
                    purpose: "ads".into(),
                    update: crate::query::MetadataUpdate::Remove(
                        crate::query::MetadataField::Purposes,
                        "ads".into(),
                    ),
                },
            );
            assert!(
                matches!(result, Err(GdprError::InvalidRecord(_))),
                "removing b's last purpose must fail the whole group"
            );
            // No partial mutation: both records keep their purposes.
            for (key, purposes) in [("a", vec!["ads", "2fa"]), ("b", vec!["ads"])] {
                let stored = engine.store().fetch(key).unwrap().unwrap();
                assert_eq!(
                    stored.metadata.purposes,
                    purposes,
                    "indexed={}: {key} must be untouched after the failed group update",
                    engine.metadata_index().is_some()
                );
            }
            // And any index still advertises both under the purpose.
            if let Some(index) = engine.metadata_index() {
                assert_eq!(index.keys_by_purpose("ads"), vec!["a", "b"]);
            }
        }
    }

    /// The negative predicates resolve through the index — `keys_for` is
    /// `Some` for every `RecordPredicate` variant — and agree with the
    /// scan path.
    #[test]
    fn negative_predicates_resolve_through_the_index() {
        let controller = Session::controller();
        let engines = engines();
        for engine in &engines {
            let mut objecting = record("k-obj", "neo", &["ads"]);
            objecting.metadata.objections.push("ads".into());
            let mut opted_out = record("k-dec", "neo", &["2fa"]);
            opted_out
                .metadata
                .decisions
                .push(crate::record::Metadata::DEC_OPT_OUT.to_string());
            for r in [objecting, opted_out, record("k-plain", "trinity", &["ads"])] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(r))
                    .unwrap();
            }
        }
        let cases = [
            (
                GdprQuery::ReadDataNotObjecting("ads".into()),
                vec!["k-dec", "k-plain"],
            ),
            (
                GdprQuery::ReadDataDecisionEligible,
                vec!["k-obj", "k-plain"],
            ),
        ];
        for engine in &engines {
            for (query, expected) in &cases {
                let resp = engine.execute(&Session::processor("x"), query).unwrap();
                let mut keys: Vec<_> = resp
                    .as_data()
                    .unwrap()
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect();
                keys.sort();
                assert_eq!(
                    &keys,
                    expected,
                    "indexed={}: {query:?}",
                    engine.metadata_index().is_some()
                );
            }
        }
        let index = engines[1].metadata_index().unwrap();
        for pred in [
            RecordPredicate::User("neo".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x".into()),
        ] {
            assert!(
                index.keys_for(&pred).is_some(),
                "{pred:?} must take the index path"
            );
        }
    }

    #[test]
    fn audit_records_every_execution() {
        let engine = ComplianceEngine::new(MemStore::new());
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        let _ = engine.execute(&controller, &GdprQuery::ReadDataByKey("k1".into()));
        assert_eq!(engine.audit().len(), 2, "denied queries are audited too");
        let lines = engine.audit().lines_between(0, u64::MAX);
        assert!(lines.iter().any(|l| l.operation == "create-record"));
    }

    fn for_tenant(base: Session, tenant: &str) -> Session {
        base.with_tenant(TenantId::new(tenant).unwrap())
    }

    #[test]
    fn tenants_are_isolated_end_to_end() {
        for engine in engines() {
            let indexed = engine.metadata_index().is_some();
            let acme_ctl = for_tenant(Session::controller(), "acme");
            let acme_proc = for_tenant(Session::processor("ads"), "acme");
            let zeta_ctl = for_tenant(Session::controller(), "zeta");
            let zeta_proc = for_tenant(Session::processor("ads"), "zeta");
            // Same logical key in both tenants: no AlreadyExists collision.
            for s in [&acme_ctl, &zeta_ctl] {
                engine
                    .execute(s, &GdprQuery::CreateRecord(record("k", "neo", &["ads"])))
                    .unwrap();
            }
            // Point reads come back under the logical key, per tenant.
            for s in [&acme_proc, &zeta_proc] {
                let resp = engine
                    .execute(s, &GdprQuery::ReadDataByKey("k".into()))
                    .unwrap();
                assert_eq!(resp.as_data().unwrap()[0].0, "k", "indexed={indexed}");
            }
            // Predicate reads never cross the boundary.
            let resp = engine
                .execute(
                    &for_tenant(Session::customer("neo"), "acme"),
                    &GdprQuery::ReadDataByUser("neo".into()),
                )
                .unwrap();
            assert_eq!(resp.as_data().unwrap().len(), 1, "indexed={indexed}");
            // Erasure in one tenant leaves the other's record intact.
            engine
                .execute(&acme_ctl, &GdprQuery::DeleteByKey("k".into()))
                .unwrap();
            assert!(matches!(
                engine.execute(&acme_proc, &GdprQuery::ReadDataByKey("k".into())),
                Err(GdprError::NotFound(_))
            ));
            let resp = engine
                .execute(&zeta_proc, &GdprQuery::ReadDataByKey("k".into()))
                .unwrap();
            assert_eq!(resp.as_data().unwrap().len(), 1, "indexed={indexed}");
            // Audit trails are per tenant: acme sees only its own queries.
            let resp = engine
                .execute(
                    &for_tenant(Session::regulator(), "acme"),
                    &GdprQuery::GetSystemLogs {
                        from_ms: 0,
                        to_ms: u64::MAX,
                    },
                )
                .unwrap();
            let GdprResponse::Logs(lines) = resp else {
                panic!("expected logs");
            };
            assert_eq!(lines.len(), 5, "indexed={indexed}");
            // Telemetry is labeled and scoped per tenant.
            let snap = engine
                .op_telemetry_for(&TenantId::new("zeta").unwrap())
                .unwrap();
            assert_eq!(
                snap.get("create-record").map(|o| o.total()),
                Some(1),
                "indexed={indexed}"
            );
        }
    }

    #[test]
    fn default_tenant_rejects_separator_keys_and_stays_unprefixed() {
        let engine = ComplianceEngine::new(MemStore::new());
        let controller = Session::controller();
        let mut forged = record("k", "neo", &["ads"]);
        forged.key = format!("acme{}k", crate::tenant::TENANT_SEPARATOR);
        assert!(matches!(
            engine.execute(&controller, &GdprQuery::CreateRecord(forged)),
            Err(GdprError::InvalidRecord(_))
        ));
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("plain", "neo", &["ads"])),
            )
            .unwrap();
        // Default-tenant keys hit the store verbatim (degenerate mode).
        assert!(engine.store().fetch("plain").unwrap().is_some());
    }

    #[test]
    fn named_tenant_state_backfills_lazily_after_restart() {
        // Records written under a tenant survive into a fresh engine over
        // the same store: the partition is rebuilt on first use.
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        engine
            .execute(
                &for_tenant(Session::controller(), "acme"),
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        let survivor = MemStore {
            rows: Mutex::new(engine.store().rows.lock().clone()),
            clock: engine.store().clock.clone(),
        };
        drop(engine);
        let engine = ComplianceEngine::with_metadata_index(survivor).unwrap();
        let resp = engine
            .execute(
                &for_tenant(Session::customer("neo"), "acme"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.as_data().unwrap()[0].0, "k1");
    }
}
