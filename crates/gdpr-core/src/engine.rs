//! The shared compliance engine: authorization, record visibility, audit
//! logging, and the full [`GdprQuery`] dispatch, implemented exactly once
//! over the narrow [`RecordStore`] backend trait.
//!
//! Before this module, every connector hand-rolled a near-identical ~300
//! line dispatcher, and the Redis-shaped one answered *every* metadata
//! predicate with a full scan-decrypt-parse of the keyspace. The engine
//! centralizes the policy layer (this is the "compliance as a first-class
//! database concern" framing of the Cambridge Report the paper cites) and
//! resolves each metadata predicate through a three-level strategy:
//!
//! 1. **Pushdown** — the backend evaluates the predicate natively
//!    ([`RecordStore::select`]); the relational store routes this to its
//!    own secondary indexes.
//! 2. **Engine index** — an attached [`MetadataIndex`] answers by inverted
//!    lookup in O(matches), then every candidate is re-fetched and
//!    re-verified; this is what turns the key-value backend's O(n) scans
//!    into O(matches) probes.
//! 3. **Full scan** — [`RecordStore::scan`] filtered by
//!    [`RecordPredicate::matches`], the reference semantics.
//!
//! All three levels return identical result sets (the property suite pins
//! this), so index and pushdown are pure accelerations, never semantic
//! forks.

use crate::acl::{authorize, record_visible};
use crate::audit::AuditTrail;
use crate::compliance::FeatureReport;
use crate::connector::SpaceReport;
use crate::error::{GdprError, GdprResult};
use crate::metaindex::MetadataIndex;
use crate::query::GdprQuery;
use crate::record::PersonalRecord;
use crate::response::GdprResponse;
use crate::role::Session;
use crate::store::{RecordPredicate, RecordStore};
use crate::GdprConnector;
use clock::SharedClock;
use std::sync::Arc;

/// The one compliance layer every backend shares.
pub struct ComplianceEngine<S: RecordStore> {
    store: S,
    audit: AuditTrail,
    index: Option<Arc<MetadataIndex>>,
    clock: SharedClock,
}

impl<S: RecordStore> ComplianceEngine<S> {
    /// An engine resolving metadata predicates by pushdown or full scan —
    /// the paper-faithful configuration for stores without secondary
    /// indexes.
    pub fn new(store: S) -> ComplianceEngine<S> {
        let clock = store.clock();
        ComplianceEngine {
            audit: AuditTrail::new(clock.clone()),
            index: None,
            clock,
            store,
        }
    }

    /// An engine maintaining a [`MetadataIndex`] over the store: inverted
    /// `user/purpose/objection/sharing → keys` maps plus a deadline-ordered
    /// expiry set. Existing records are back-filled (TTL deadlines re-anchor
    /// at attach time), and the store's expiry path is wired to invalidate
    /// index entries the moment a record is reaped.
    pub fn with_metadata_index(store: S) -> GdprResult<ComplianceEngine<S>> {
        let mut engine = ComplianceEngine::new(store);
        let index = Arc::new(MetadataIndex::new());
        let listener_index = Arc::clone(&index);
        engine.store.on_expiry(Arc::new(move |key| {
            listener_index.remove(key);
        }));
        let now_ms = engine.clock.now().as_millis();
        for record in engine.store.scan()? {
            // The store's remaining deadline is authoritative for records
            // that predate the engine; re-deriving `now + declared TTL`
            // would extend their retention by the already-elapsed lifetime.
            let deadline_ms = engine.store.deadline_ms(&record.key).or_else(|| {
                record
                    .metadata
                    .ttl
                    .map(|ttl| now_ms + ttl.as_millis() as u64)
            });
            index.upsert_with_deadline(&record, deadline_ms);
        }
        engine.index = Some(index);
        Ok(engine)
    }

    /// The backend.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The audit trail serving GET-SYSTEM-LOGS.
    pub fn audit(&self) -> &AuditTrail {
        &self.audit
    }

    /// The attached metadata index, if this engine maintains one.
    pub fn metadata_index(&self) -> Option<&Arc<MetadataIndex>> {
        self.index.as_ref()
    }

    /// Execute one GDPR query under a session, recording it in the audit
    /// trail whatever the outcome (G30: every interaction is logged).
    pub fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        let result = self.dispatch(session, query);
        let err_text = result.as_ref().err().map(ToString::to_string);
        let outcome = match &result {
            Ok(resp) => Ok(resp.cardinality()),
            Err(_) => Err(err_text.as_deref().unwrap_or("error")),
        };
        self.audit
            .record(session, query.name(), query.detail(), outcome);
        result
    }

    fn now_ms(&self) -> u64 {
        self.clock.now().as_millis()
    }

    /// Fetch a record that must exist, or `NotFound`.
    fn fetch_required(&self, key: &str) -> GdprResult<PersonalRecord> {
        self.store
            .fetch(key)?
            .ok_or_else(|| GdprError::NotFound(key.to_string()))
    }

    /// All records matching `pred`, resolved pushdown → index → scan.
    fn read_matching(&self, pred: &RecordPredicate) -> GdprResult<Vec<PersonalRecord>> {
        if let Some(result) = self.store.select(pred) {
            return result;
        }
        if let Some(index) = &self.index {
            if let Some(keys) = index.keys_for(pred) {
                let mut out = Vec::with_capacity(keys.len());
                for key in keys {
                    // A candidate can be stale (expired since indexing, or
                    // mutated concurrently): re-verify against the
                    // reference semantics before returning it.
                    match self.store.fetch(&key)? {
                        Some(record) if pred.matches(&record) => out.push(record),
                        _ => {}
                    }
                }
                return Ok(out);
            }
        }
        Ok(self
            .store
            .scan()?
            .into_iter()
            .filter(|r| pred.matches(r))
            .collect())
    }

    /// Erase all records matching `pred`, keeping any index consistent.
    fn delete_matching(&self, pred: &RecordPredicate) -> GdprResult<usize> {
        // With an engine index attached, deletion must go key-by-key so the
        // index learns which records died; pushdown would erase them behind
        // the index's back.
        if self.index.is_none() {
            if let Some(result) = self.store.delete_matching(pred) {
                return result;
            }
        }
        let victims = self.read_matching(pred)?;
        let mut n = 0;
        for record in victims {
            if self.store.delete(&record.key)? {
                n += 1;
            }
            self.unindex(&record.key);
        }
        Ok(n)
    }

    /// Apply a metadata update to all records matching `pred`.
    fn update_matching(
        &self,
        pred: &RecordPredicate,
        update: &crate::query::MetadataUpdate,
    ) -> GdprResult<usize> {
        let ttl_changed = matches!(update, crate::query::MetadataUpdate::SetTtl(_));
        let mut n = 0;
        for mut record in self.read_matching(pred)? {
            update.apply(&mut record.metadata)?;
            self.store.rewrite(&record, ttl_changed)?;
            self.reindex(&record, ttl_changed);
            n += 1;
        }
        Ok(n)
    }

    fn index_new(&self, record: &PersonalRecord) {
        if let Some(index) = &self.index {
            index.upsert(record, self.now_ms(), false);
        }
    }

    fn reindex(&self, record: &PersonalRecord, ttl_changed: bool) {
        if let Some(index) = &self.index {
            index.upsert(record, self.now_ms(), !ttl_changed);
        }
    }

    pub(crate) fn unindex(&self, key: &str) {
        if let Some(index) = &self.index {
            index.remove(key);
        }
    }

    /// Index a record under an explicit absolute deadline — the shard
    /// rebalance path, where a record migrates between engines and its
    /// store-side remaining deadline (not `now + declared TTL`) must
    /// survive the move.
    pub(crate) fn index_with_deadline(&self, record: &PersonalRecord, deadline_ms: Option<u64>) {
        if let Some(index) = &self.index {
            index.upsert_with_deadline(record, deadline_ms);
        }
    }

    /// DELETE-RECORD-BY-TTL: purge everything past due. With an index, the
    /// deadline-ordered expiry set yields exactly the due keys in
    /// O(expired); without one, the store runs its own purge machinery.
    fn purge_expired(&self) -> GdprResult<usize> {
        match &self.index {
            Some(index) => {
                let mut n = 0;
                for key in index.expired_keys(self.now_ms()) {
                    if self.store.delete(&key)? {
                        n += 1;
                    }
                    index.remove(&key);
                }
                Ok(n)
            }
            None => self.store.purge_expired(),
        }
    }

    /// The single `GdprQuery` dispatch in the workspace. Crate-visible so
    /// [`crate::sharded::ShardedEngine`] can route queries to shard engines
    /// without each shard recording a fragment of the audit trail — the
    /// router keeps the one unified trail (G30: one event per query).
    pub(crate) fn dispatch(
        &self,
        session: &Session,
        query: &GdprQuery,
    ) -> GdprResult<GdprResponse> {
        use GdprQuery::*;
        let decision = authorize(session, query)?;
        let guard = |record: &PersonalRecord| -> GdprResult<()> {
            if decision.requires_record_check && !record_visible(session, record) {
                Err(GdprError::AccessDenied {
                    role: session.role.name().to_string(),
                    query: query.name().to_string(),
                    reason: "record not visible to this session".to_string(),
                })
            } else {
                Ok(())
            }
        };
        let data_of = |records: Vec<PersonalRecord>| {
            GdprResponse::Data(records.into_iter().map(|r| (r.key, r.data)).collect())
        };
        let metadata_of = |records: Vec<PersonalRecord>| {
            GdprResponse::Metadata(records.into_iter().map(|r| (r.key, r.metadata)).collect())
        };

        match query {
            CreateRecord(record) => {
                // Collision detection is the store's contract (`put` fails
                // with AlreadyExists): an engine-level pre-fetch would add a
                // redundant full point lookup to every create on the
                // bulk-load hot path.
                self.store.put(record)?;
                self.index_new(record);
                Ok(GdprResponse::Created)
            }

            DeleteByKey(key) => {
                let record = self.fetch_required(key)?;
                guard(&record)?;
                self.store.delete(key)?;
                self.unindex(key);
                Ok(GdprResponse::Deleted(1))
            }
            DeleteByPurpose(purpose) => Ok(GdprResponse::Deleted(
                self.delete_matching(&RecordPredicate::DeclaredPurpose(purpose.clone()))?,
            )),
            DeleteExpired => Ok(GdprResponse::Deleted(self.purge_expired()?)),
            DeleteByUser(user) => Ok(GdprResponse::Deleted(
                self.delete_matching(&RecordPredicate::User(user.clone()))?,
            )),

            ReadDataByKey(key) => {
                let record = self.fetch_required(key)?;
                guard(&record)?;
                Ok(GdprResponse::Data(vec![(record.key, record.data)]))
            }
            // Canonical READ-DATA-BY-PUR semantics for every backend:
            // declared purpose AND no objection to it (G5.1b + G21).
            ReadDataByPurpose(purpose) => Ok(data_of(
                self.read_matching(&RecordPredicate::AllowsPurpose(purpose.clone()))?,
            )),
            ReadDataByUser(user) => Ok(data_of(
                self.read_matching(&RecordPredicate::User(user.clone()))?,
            )),
            ReadDataNotObjecting(usage) => Ok(data_of(
                self.read_matching(&RecordPredicate::NotObjecting(usage.clone()))?,
            )),
            ReadDataDecisionEligible => Ok(data_of(
                self.read_matching(&RecordPredicate::DecisionEligible)?,
            )),

            ReadMetadataByKey(key) => {
                let record = self.fetch_required(key)?;
                guard(&record)?;
                Ok(GdprResponse::Metadata(vec![(record.key, record.metadata)]))
            }
            ReadMetadataByUser(user) => Ok(metadata_of(
                self.read_matching(&RecordPredicate::User(user.clone()))?,
            )),
            ReadMetadataBySharedWith(party) => Ok(metadata_of(
                self.read_matching(&RecordPredicate::SharedWith(party.clone()))?,
            )),

            UpdateDataByKey { key, data } => {
                let mut record = self.fetch_required(key)?;
                guard(&record)?;
                record.data = data.clone();
                self.store.rewrite(&record, false)?;
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByKey { key, update } => {
                let mut record = self.fetch_required(key)?;
                guard(&record)?;
                let ttl_changed = matches!(update, crate::query::MetadataUpdate::SetTtl(_));
                update.apply(&mut record.metadata)?;
                self.store.rewrite(&record, ttl_changed)?;
                self.reindex(&record, ttl_changed);
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByPurpose { purpose, update } => Ok(GdprResponse::Updated(
                self.update_matching(&RecordPredicate::DeclaredPurpose(purpose.clone()), update)?,
            )),
            UpdateMetadataByUser { user, update } => Ok(GdprResponse::Updated(
                self.update_matching(&RecordPredicate::User(user.clone()), update)?,
            )),

            GetSystemLogs { from_ms, to_ms } => Ok(GdprResponse::Logs(
                self.audit.lines_between(*from_ms, *to_ms),
            )),
            GetSystemFeatures => Ok(GdprResponse::Features(self.store.features())),
            VerifyDeletion(key) => Ok(GdprResponse::DeletionVerified(
                self.store.fetch(key)?.is_none(),
            )),
        }
    }
}

/// Every engine is a connector: backends only implement [`RecordStore`],
/// and the engine supplies the whole [`GdprConnector`] surface.
impl<S: RecordStore> GdprConnector for ComplianceEngine<S> {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        ComplianceEngine::execute(self, session, query)
    }

    fn features(&self) -> FeatureReport {
        self.store.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.store.space_report()
    }

    fn record_count(&self) -> usize {
        self.store.record_count()
    }

    fn name(&self) -> &str {
        self.store.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// A trivial in-memory RecordStore with no TTL machinery and no
    /// pushdown — exercises the engine's scan and index paths in isolation
    /// from the real backends.
    struct MemStore {
        rows: Mutex<BTreeMap<String, PersonalRecord>>,
        clock: SharedClock,
    }

    impl MemStore {
        fn new() -> MemStore {
            MemStore {
                rows: Mutex::new(BTreeMap::new()),
                clock: clock::sim(),
            }
        }
    }

    impl RecordStore for MemStore {
        fn clock(&self) -> SharedClock {
            self.clock.clone()
        }
        fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
            Ok(self.rows.lock().get(key).cloned())
        }
        fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn rewrite(&self, record: &PersonalRecord, _ttl_changed: bool) -> GdprResult<()> {
            self.rows.lock().insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn delete(&self, key: &str) -> GdprResult<bool> {
            Ok(self.rows.lock().remove(key).is_some())
        }
        fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
            Ok(self.rows.lock().values().cloned().collect())
        }
        fn purge_expired(&self) -> GdprResult<usize> {
            Ok(0)
        }
        fn space_report(&self) -> SpaceReport {
            SpaceReport::default()
        }
        fn record_count(&self) -> usize {
            self.rows.lock().len()
        }
        fn features(&self) -> FeatureReport {
            FeatureReport::default()
        }
        fn name(&self) -> &str {
            "mem"
        }
    }

    fn record(key: &str, user: &str, purposes: &[&str]) -> PersonalRecord {
        PersonalRecord::new(
            key,
            format!("data-{key}"),
            Metadata::new(
                user,
                purposes.iter().map(|s| s.to_string()).collect(),
                Duration::from_secs(3600),
            ),
        )
    }

    fn engines() -> Vec<ComplianceEngine<MemStore>> {
        vec![
            ComplianceEngine::new(MemStore::new()),
            ComplianceEngine::with_metadata_index(MemStore::new()).unwrap(),
        ]
    }

    #[test]
    fn scan_and_index_paths_agree() {
        for engine in engines() {
            let controller = Session::controller();
            for (k, u, p) in [
                ("a", "neo", &["ads"][..]),
                ("b", "neo", &["2fa"][..]),
                ("c", "trinity", &["ads"][..]),
            ] {
                engine
                    .execute(&controller, &GdprQuery::CreateRecord(record(k, u, p)))
                    .unwrap();
            }
            let resp = engine
                .execute(
                    &Session::customer("neo"),
                    &GdprQuery::ReadDataByUser("neo".into()),
                )
                .unwrap();
            let mut keys: Vec<_> = resp
                .as_data()
                .unwrap()
                .iter()
                .map(|(k, _)| k.clone())
                .collect();
            keys.sort();
            assert_eq!(
                keys,
                vec!["a", "b"],
                "indexed={}",
                engine.metadata_index().is_some()
            );

            let resp = engine
                .execute(
                    &Session::processor("ads"),
                    &GdprQuery::ReadDataByPurpose("ads".into()),
                )
                .unwrap();
            assert_eq!(resp.cardinality(), 2);
        }
    }

    #[test]
    fn index_tracks_create_update_delete() {
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        let index = Arc::clone(engine.metadata_index().unwrap());
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        assert_eq!(index.keys_by_user("neo"), vec!["k1"]);
        assert_eq!(index.keys_by_purpose("ads"), vec!["k1"]);

        // Objection lands in the objection index.
        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::UpdateMetadataByKey {
                    key: "k1".into(),
                    update: crate::query::MetadataUpdate::Add(
                        crate::query::MetadataField::Objections,
                        "ads".into(),
                    ),
                },
            )
            .unwrap();
        assert_eq!(index.keys_with_objection("ads"), vec!["k1"]);
        // AllowsPurpose now excludes it.
        assert_eq!(
            index.keys_for(&RecordPredicate::AllowsPurpose("ads".into())),
            Some(vec![])
        );

        engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::DeleteByKey("k1".into()),
            )
            .unwrap();
        assert!(index.fully_absent("k1"));
    }

    #[test]
    fn backfill_indexes_preexisting_records() {
        let store = MemStore::new();
        store.put(&record("old", "neo", &["ads"])).unwrap();
        let engine = ComplianceEngine::with_metadata_index(store).unwrap();
        assert_eq!(
            engine.metadata_index().unwrap().keys_by_user("neo"),
            vec!["old"]
        );
        let resp = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 1);
    }

    #[test]
    fn stale_index_entries_are_filtered_not_returned() {
        let engine = ComplianceEngine::with_metadata_index(MemStore::new()).unwrap();
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        // Sabotage: remove the row behind the index's back.
        engine.store().rows.lock().remove("k1");
        let resp = engine
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadDataByUser("neo".into()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), 0, "stale candidate must not surface");
    }

    #[test]
    fn audit_records_every_execution() {
        let engine = ComplianceEngine::new(MemStore::new());
        let controller = Session::controller();
        engine
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record("k1", "neo", &["ads"])),
            )
            .unwrap();
        let _ = engine.execute(&controller, &GdprQuery::ReadDataByKey("k1".into()));
        assert_eq!(engine.audit().len(), 2, "denied queries are audited too");
        let lines = engine.audit().lines_between(0, u64::MAX);
        assert!(lines.iter().any(|l| l.operation == "create-record"));
    }
}
