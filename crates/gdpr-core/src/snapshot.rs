//! Persistent [`MetadataIndex`] snapshots with crash-consistent recovery.
//!
//! Without this module, every restart of an indexed engine pays the O(n)
//! backfill in [`crate::engine::ComplianceEngine::with_metadata_index`]: a
//! full scan-decrypt-parse of the backing store — exactly the cost profile
//! the paper's indexed variants exist to avoid. A snapshot makes recovery
//! O(index): the index dump is written as a checksummed image alongside
//! the store's own persistence (AOF/WAL), and
//! [`MetadataIndex::restore_or_rebuild`] loads it *only* when it provably
//! describes the reopened store, falling back loudly to the full rebuild
//! in every other case. An untrustworthy image must never be trusted —
//! a stale index can silently drop records from `READ-DATA-BY-USER`
//! (Article 15) or keep serving data whose subject has objected
//! (Article 21) — so the failure mode of every corruption class is
//! *rebuild*, never *wrong answers*.
//!
//! # File format (version 2)
//!
//! All integers little-endian. Strings are `u32 length ‖ UTF-8 bytes`.
//! One image holds **one section per tenant** (a single-tenant engine
//! writes exactly the default-tenant section), so all of an engine's
//! index partitions recover from one atomic file — a per-tenant sibling
//! file scheme was rejected because a deleted sibling is
//! indistinguishable from an empty partition. Within a section, the
//! metadata vocabulary (users, purposes, usage and party names) is
//! stored **once** in a term table; entries reference it by `u32` id —
//! which both halves the image and lets the restore path rebuild the
//! index without hashing a single term string (memberships become array
//! indexes into the parsed table).
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GDPRIDX\x01"
//! 8       4     u32    format version (= 2)
//! 12      1     u8     flags (bit 0: generation stamp present)
//! 13      8     u64    generation stamp (0 when unstamped)
//! 21      4     u32    shard index of the engine that wrote the image
//! 25      4     u32    shard count of the topology it belonged to
//! 29      4     u32    section count
//! 33      ...          sections (strictly ascending by tenant name; the
//!                      default tenant's empty name sorts first), each:
//!                        tenant name (string, "" = default tenant)
//!                        u64 entry count
//!                        u32 term-table size, then the term table: the
//!                          distinct metadata terms, in first-use order
//!                        entries (strictly ascending by key, every key
//!                        owned by the section's tenant), each:
//!                          key (string), u32 user term id,
//!                          purposes / objections / sharing as
//!                            `u32 count ‖ u32 term ids`,
//!                          u8  flags (bit 0: decision-eligible,
//!                                     bit 1: deadline present)
//!                          u64 absolute deadline ms (iff bit 1)
//! end-8   8     u64    SipHash-2-4 over every preceding byte
//! ```
//!
//! Version-1 images (single tenant, no section framing) are rejected as
//! [`SnapshotInvalid::UnsupportedVersion`] and rebuild loudly — the
//! upgrade cost is one O(n) backfill, never a misread image.
//!
//! The **generation stamp** ties the image to the backing store's
//! persistence state ([`crate::store::RecordStore::persistence_generation`]:
//! the key-value store's AOF write-frame sequence, the relational store's
//! WAL statement position). Snapshots are written at write-quiescent
//! moments (graceful close, admin checkpoints); the writer captures the
//! generation before the export and re-checks it after, failing loudly
//! if a store write raced the window (see
//! [`crate::engine::ComplianceEngine::write_index_snapshot`]). On
//! restore the stamp must equal the reopened store's generation exactly:
//! a larger store generation means writes landed after the snapshot
//! (e.g. a `set_ex` behind the engine, or AOF replay past the stamp); a
//! smaller one means the store lost a tail the index still describes
//! (torn AOF). Both are staleness; both rebuild.
//!
//! The **shard topology** header makes a reopened
//! [`crate::sharded::ShardedEngine`] reject images written under a
//! different shard count (the key→shard map changed, so per-shard images
//! describe the wrong key population), consistent with the router's
//! misroute detection — the shards rebuild, and `rebalance()` handles the
//! store side.
//!
//! Writes are atomic: the image goes to `<path>.tmp`, is fsynced, and is
//! renamed over the target (then the directory is fsynced), so a crash
//! mid-write leaves either the old image or none — never a torn file that
//! parses. Torn, truncated, bit-flipped, or trailing-garbage images fail
//! the checksum or the bounds-checked parse and rebuild instead; the
//! fault-injection harness (`tests/recovery_faults.rs`) sweeps every
//! byte-prefix truncation and flip class against this guarantee.

use crate::error::{GdprError, GdprResult};
use crate::metaindex::{IndexEntry, MetadataIndex, VocabIndexBuilder};
use crate::tenant::TenantId;
use crypto::SipHash24;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Leading magic: `GDPRIDX` plus a format byte.
pub const MAGIC: [u8; 8] = *b"GDPRIDX\x01";
/// Current format version.
pub const VERSION: u32 = 2;

/// Fixed SipHash-2-4 key for the integrity checksum. The checksum guards
/// against torn writes and bitrot, not adversaries — an attacker who can
/// rewrite the snapshot can rewrite the store beside it; at-rest secrecy
/// is the store volume's job (the snapshot holds keys and metadata terms
/// only, never record payloads).
const CHECKSUM_KEY: [u8; 16] = *b"gdpr-index-snap1";

/// What a snapshot must match to be trusted at restore time — and what
/// gets stamped into the header at write time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStamp {
    /// The backing store's persistence generation
    /// ([`crate::store::RecordStore::persistence_generation`]). `None`
    /// means the store cannot stamp its state — such snapshots are
    /// written unstamped and are **never** trusted on restore.
    pub generation: Option<u64>,
    /// Which shard of the topology this index serves (0 unsharded).
    pub shard_index: u32,
    /// Total shard count of the topology (1 unsharded).
    pub shard_count: u32,
}

impl SnapshotStamp {
    /// The stamp of an unsharded engine over a store at `generation`.
    pub fn unsharded(generation: Option<u64>) -> SnapshotStamp {
        SnapshotStamp {
            generation,
            shard_index: 0,
            shard_count: 1,
        }
    }
}

/// Why a snapshot image cannot be trusted. Every variant ends in the same
/// place — a loud full rebuild — but the cause is surfaced so operators
/// (and the fault-injection suite) can tell a missing file from sabotage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotInvalid {
    /// No snapshot file at the configured path (first boot, or the store
    /// was moved without its index image).
    Missing,
    /// The file exists but could not be read.
    Io(String),
    /// Structurally unreadable: bad magic, torn/truncated data, hostile
    /// lengths, or trailing bytes after the checksum.
    Malformed(String),
    /// A version this build does not read.
    UnsupportedVersion(u32),
    /// A tenant section the opening engine cannot accept: an invalid
    /// tenant name in the image, or a partition the engine cannot
    /// materialize (e.g. restoring a tenant section into an unindexed
    /// engine).
    BadTenant(String),
    /// The SipHash integrity check failed (bitrot or tampering).
    ChecksumMismatch,
    /// Written under a different shard topology: `(shard_index,
    /// shard_count)` as recorded vs expected.
    TopologyMismatch {
        snapshot: (u32, u32),
        expected: (u32, u32),
    },
    /// The generation stamp does not equal the store's: the store moved
    /// past the image (writes behind the snapshot) or fell short of it
    /// (torn AOF/WAL replay) — or one side cannot stamp at all.
    StaleGeneration {
        snapshot: Option<u64>,
        store: Option<u64>,
    },
}

impl fmt::Display for SnapshotInvalid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotInvalid::Missing => write!(f, "no snapshot file"),
            SnapshotInvalid::Io(e) => write!(f, "unreadable snapshot: {e}"),
            SnapshotInvalid::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotInvalid::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotInvalid::BadTenant(e) => write!(f, "unacceptable tenant section: {e}"),
            SnapshotInvalid::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotInvalid::TopologyMismatch { snapshot, expected } => write!(
                f,
                "snapshot written for shard {}/{} but opened as shard {}/{}",
                snapshot.0, snapshot.1, expected.0, expected.1
            ),
            SnapshotInvalid::StaleGeneration { snapshot, store } => write!(
                f,
                "snapshot generation {snapshot:?} does not match store generation {store:?}"
            ),
        }
    }
}

/// How an indexed engine came back up: the O(index) restore, or the O(n)
/// rebuild with the cause that forced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexRecovery {
    /// The snapshot was trusted and loaded — O(index).
    Restored { entries: usize, generation: u64 },
    /// The snapshot was missing or untrustworthy; the index was rebuilt
    /// from a full store scan — O(n).
    Rebuilt {
        records: usize,
        cause: SnapshotInvalid,
    },
}

impl IndexRecovery {
    pub fn is_restored(&self) -> bool {
        matches!(self, IndexRecovery::Restored { .. })
    }
}

impl fmt::Display for IndexRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexRecovery::Restored {
                entries,
                generation,
            } => write!(
                f,
                "restored {entries} index entries from snapshot (generation {generation})"
            ),
            IndexRecovery::Rebuilt { records, cause } => {
                write!(f, "rebuilt index from {records} store records ({cause})")
            }
        }
    }
}

// ---- encoding ----

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serialize one tenant section: name, entry count, per-section term
/// table, entries.
fn encode_section(out: &mut Vec<u8>, tenant: &str, entries: &[IndexEntry]) {
    put_str(out, tenant);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    // First pass: collect the term vocabulary in first-use order (terms
    // borrow from `entries`, which outlives both tables).
    let mut ids: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    let mut vocab: Vec<&str> = Vec::new();
    for e in entries {
        for term in std::iter::once(e.user.as_str()).chain(
            e.purposes
                .iter()
                .chain(&e.objections)
                .chain(&e.sharing)
                .map(String::as_str),
        ) {
            if !ids.contains_key(term) {
                ids.insert(term, vocab.len() as u32);
                vocab.push(term);
            }
        }
    }
    out.extend_from_slice(&(vocab.len() as u32).to_le_bytes());
    for term in &vocab {
        put_str(out, term);
    }
    let put_ids = |out: &mut Vec<u8>, terms: &[String]| {
        out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
        for t in terms {
            out.extend_from_slice(&ids[t.as_str()].to_le_bytes());
        }
    };
    for e in entries {
        put_str(out, &e.key);
        out.extend_from_slice(&ids[e.user.as_str()].to_le_bytes());
        put_ids(out, &e.purposes);
        put_ids(out, &e.objections);
        put_ids(out, &e.sharing);
        let flags = u8::from(e.decision_eligible) | (u8::from(e.deadline_ms.is_some()) << 1);
        out.push(flags);
        if let Some(at) = e.deadline_ms {
            out.extend_from_slice(&at.to_le_bytes());
        }
    }
}

/// Serialize tenant sections under a stamp (header + sections +
/// checksum). Callers pass sections in strictly ascending tenant order
/// with section keys owned by the section tenant — the engine's export
/// does so by construction, and both readers enforce it.
pub fn encode_sections(sections: &[(String, Vec<IndexEntry>)], stamp: &SnapshotStamp) -> Vec<u8> {
    let total: usize = sections.iter().map(|(_, e)| e.len()).sum();
    let mut out = Vec::with_capacity(64 + sections.len() * 16 + total * 48);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(u8::from(stamp.generation.is_some()));
    out.extend_from_slice(&stamp.generation.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&stamp.shard_index.to_le_bytes());
    out.extend_from_slice(&stamp.shard_count.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tenant, entries) in sections {
        encode_section(&mut out, tenant, entries);
    }
    let sum = SipHash24::from_key_bytes(&CHECKSUM_KEY).hash(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Serialize a single default-tenant entry dump — the degenerate
/// single-tenant image (one section, empty tenant name).
pub fn encode(entries: &[IndexEntry], stamp: &SnapshotStamp) -> Vec<u8> {
    encode_sections(&[(String::new(), entries.to_vec())], stamp)
}

// ---- decoding (bounds-checked; never panics, never over-allocates) ----

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotInvalid> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.data.len())
            .ok_or_else(|| SnapshotInvalid::Malformed("truncated".into()))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotInvalid> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotInvalid> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotInvalid> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A string borrowed straight from the image buffer — the streaming
    /// restore path reads every string this way and allocates only what
    /// actually enters the index.
    fn str_ref(&mut self) -> Result<&'a str, SnapshotInvalid> {
        let len = self.u32()? as usize;
        // `take` bounds hostile lengths against the remaining bytes, so a
        // corrupt length can never drive a huge allocation.
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| SnapshotInvalid::Malformed("non-UTF-8 string".into()))
    }

    fn string(&mut self) -> Result<String, SnapshotInvalid> {
        self.str_ref().map(str::to_string)
    }

    /// Bounds-check a list/table count against the remaining bytes (each
    /// element needs ≥ 4 bytes), so a corrupt count can never drive a
    /// huge allocation.
    fn count(&mut self) -> Result<usize, SnapshotInvalid> {
        let n = self.u32()? as usize;
        if n > (self.data.len() - self.pos) / 4 {
            return Err(SnapshotInvalid::Malformed("hostile element count".into()));
        }
        Ok(n)
    }

    /// The term table: every distinct metadata term, borrowed from the
    /// buffer. Duplicate terms are rejected — two ids naming the same
    /// term would split its postings across map entries at restore time
    /// (one silently shadowing the other), so a duplicated table is a
    /// forgery even when the checksum holds, exactly like non-ascending
    /// keys.
    fn vocab(&mut self) -> Result<Vec<&'a str>, SnapshotInvalid> {
        let n = self.count()?;
        let terms: Vec<&'a str> = (0..n).map(|_| self.str_ref()).collect::<Result<_, _>>()?;
        let distinct: std::collections::HashSet<&str> = terms.iter().copied().collect();
        if distinct.len() != terms.len() {
            return Err(SnapshotInvalid::Malformed(
                "duplicate term in vocabulary table".into(),
            ));
        }
        Ok(terms)
    }

    /// A term-id list into a reusable scratch buffer, each id verified
    /// against the term-table size.
    fn id_list(&mut self, vocab_len: usize, out: &mut Vec<u32>) -> Result<(), SnapshotInvalid> {
        out.clear();
        let n = self.count()?;
        for _ in 0..n {
            let id = self.u32()?;
            if id as usize >= vocab_len {
                return Err(SnapshotInvalid::Malformed("term id out of range".into()));
            }
            out.push(id);
        }
        Ok(())
    }

    /// One term id, verified against the term-table size.
    fn id(&mut self, vocab_len: usize) -> Result<u32, SnapshotInvalid> {
        let id = self.u32()?;
        if id as usize >= vocab_len {
            return Err(SnapshotInvalid::Malformed("term id out of range".into()));
        }
        Ok(id)
    }
}

/// The verified fixed header: checksum true, magic/version right,
/// section count sane; the cursor sits at the first section.
struct VerifiedHeader<'a> {
    cur: Cursor<'a>,
    /// Tenant-section count (a v2 image is a sequence of sections).
    sections: usize,
    generation: Option<u64>,
    shard_index: u32,
    shard_count: u32,
    /// Length of the checksummed body (everything but the trailing sum).
    body_len: usize,
}

impl VerifiedHeader<'_> {
    fn stamp(&self) -> (Option<u64>, u32, u32) {
        (self.generation, self.shard_index, self.shard_count)
    }
}

fn check_stamp(
    (generation, shard_index, shard_count): (Option<u64>, u32, u32),
    expected: &SnapshotStamp,
) -> Result<(), SnapshotInvalid> {
    if (shard_index, shard_count) != (expected.shard_index, expected.shard_count) {
        return Err(SnapshotInvalid::TopologyMismatch {
            snapshot: (shard_index, shard_count),
            expected: (expected.shard_index, expected.shard_count),
        });
    }
    match (generation, expected.generation) {
        (Some(snap), Some(store)) if snap == store => Ok(()),
        (snapshot, store) => Err(SnapshotInvalid::StaleGeneration { snapshot, store }),
    }
}

/// Structure-and-checksum verification shared by both readers.
fn verify_header(data: &[u8]) -> Result<VerifiedHeader<'_>, SnapshotInvalid> {
    // Fixed header (33 bytes) + checksum (8).
    if data.len() < MAGIC.len() + 4 + 1 + 8 + 4 + 4 + 4 + 8 {
        return Err(SnapshotInvalid::Malformed("shorter than the header".into()));
    }
    if data[..MAGIC.len()] != MAGIC {
        return Err(SnapshotInvalid::Malformed("bad magic".into()));
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let stored_sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if SipHash24::from_key_bytes(&CHECKSUM_KEY).hash(body) != stored_sum {
        return Err(SnapshotInvalid::ChecksumMismatch);
    }
    let mut cur = Cursor {
        data: body,
        pos: MAGIC.len(),
    };
    let version = cur.u32()?;
    if version != VERSION {
        return Err(SnapshotInvalid::UnsupportedVersion(version));
    }
    let flags = cur.u8()?;
    let generation_value = cur.u64()?;
    let generation = (flags & 1 != 0).then_some(generation_value);
    let shard_index = cur.u32()?;
    let shard_count = cur.u32()?;
    let sections = cur.u32()? as usize;
    if sections > (body.len() - cur.pos) / 16 {
        // Minimum section footprint: tenant-name prefix + u64 entry count
        // + term-table size = 16 bytes.
        return Err(SnapshotInvalid::Malformed("hostile section count".into()));
    }
    Ok(VerifiedHeader {
        cur,
        sections,
        generation,
        shard_index,
        shard_count,
        body_len: body.len(),
    })
}

/// Per-section validation shared by both readers: a well-formed tenant
/// name, strictly ascending across sections (the default tenant's empty
/// name sorts first).
fn check_section_tenant(tenant: &str, prev: Option<&str>) -> Result<(), SnapshotInvalid> {
    TenantId::check_name(tenant).map_err(SnapshotInvalid::BadTenant)?;
    if prev.is_some_and(|p| p >= tenant) {
        return Err(SnapshotInvalid::Malformed(
            "tenant sections not strictly ascending".into(),
        ));
    }
    Ok(())
}

/// Every entry key must live in its section's tenant partition — a
/// checksum-valid image whose keys leak across sections is a forgery
/// that would silently cross the isolation boundary at restore time.
fn check_section_key(tenant: &str, key: &str) -> Result<(), SnapshotInvalid> {
    if TenantId::split_storage_key(key).0 != tenant {
        return Err(SnapshotInvalid::Malformed(
            "entry key outside its tenant section".into(),
        ));
    }
    Ok(())
}

/// Parse and verify an image against `expected`, materializing the
/// sections. Validation order: structure and checksum first (is this
/// byte string a snapshot at all?), then topology, then the generation
/// stamp — so the error names the *first* reason the image cannot be
/// trusted.
pub fn decode_sections(
    data: &[u8],
    expected: &SnapshotStamp,
) -> Result<Vec<(String, Vec<IndexEntry>)>, SnapshotInvalid> {
    let header = verify_header(data)?;
    let stamp = header.stamp();
    let VerifiedHeader {
        mut cur,
        sections: section_count,
        body_len,
        ..
    } = header;
    let mut sections: Vec<(String, Vec<IndexEntry>)> = Vec::with_capacity(section_count);
    let mut ids: Vec<u32> = Vec::new();
    for _ in 0..section_count {
        let tenant = cur.string()?;
        check_section_tenant(&tenant, sections.last().map(|(t, _)| t.as_str()))?;
        let count = cur.u64()? as usize;
        if count > (body_len - cur.pos) / 11 {
            // Minimum entry footprint: 2 string prefixes + 3 list
            // prefixes + flags = 21 bytes; 11 is a safely small bound.
            return Err(SnapshotInvalid::Malformed("hostile entry count".into()));
        }
        let vocab = cur.vocab()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let key = cur.string()?;
            // Same strictly-ascending rule as the engine's streaming
            // reader (`parse_sections`): both readers must agree on what
            // is a valid image, or diagnostics would accept files
            // recovery rejects.
            if entries
                .last()
                .is_some_and(|prev: &IndexEntry| prev.key >= key)
            {
                return Err(SnapshotInvalid::Malformed(
                    "keys not strictly ascending".into(),
                ));
            }
            check_section_key(&tenant, &key)?;
            let user = vocab[cur.id(vocab.len())? as usize].to_string();
            let mut resolve = |cur: &mut Cursor| -> Result<Vec<String>, SnapshotInvalid> {
                cur.id_list(vocab.len(), &mut ids)?;
                Ok(ids.iter().map(|&i| vocab[i as usize].to_string()).collect())
            };
            let purposes = resolve(&mut cur)?;
            let objections = resolve(&mut cur)?;
            let sharing = resolve(&mut cur)?;
            let eflags = cur.u8()?;
            let deadline_ms = if eflags & 2 != 0 {
                Some(cur.u64()?)
            } else {
                None
            };
            entries.push(IndexEntry {
                key,
                user,
                purposes,
                objections,
                sharing,
                decision_eligible: eflags & 1 != 0,
                deadline_ms,
            });
        }
        sections.push((tenant, entries));
    }
    if cur.pos != body_len {
        return Err(SnapshotInvalid::Malformed(
            "trailing bytes after the last entry".into(),
        ));
    }
    check_stamp(stamp, expected)?;
    Ok(sections)
}

/// Parse and verify an image, flattening every tenant section into one
/// entry list (storage keys are globally unique, so nothing collides).
/// Diagnostics and single-tenant tooling; the recovery path streams via
/// [`restore_or_rebuild_tenants`] instead.
pub fn decode(data: &[u8], expected: &SnapshotStamp) -> Result<Vec<IndexEntry>, SnapshotInvalid> {
    Ok(decode_sections(data, expected)?
        .into_iter()
        .flat_map(|(_, entries)| entries)
        .collect())
}

/// The streaming restore reader: verify, then feed each tenant section
/// straight into a [`VocabIndexBuilder`]. Each section's term table
/// becomes its partition's shared vocabulary (one allocation per
/// *distinct* term), entry keys are borrowed from the buffer until they
/// enter a builder, the stamp is checked *before* any building (a stale
/// image fails in microseconds instead of after a full load), and keys
/// must arrive strictly ascending within their section — the writer
/// sorts them, so anything else is a forgery even if the checksum holds.
///
/// Nothing is installed here: the staged builders come back only once
/// the **whole** image has parsed, so a section that fails late can
/// never leave an earlier tenant's partition half-restored.
fn parse_sections(
    data: &[u8],
    expected: &SnapshotStamp,
) -> Result<Vec<(String, VocabIndexBuilder)>, SnapshotInvalid> {
    let header = verify_header(data)?;
    check_stamp(header.stamp(), expected)?;
    let VerifiedHeader {
        mut cur,
        sections: section_count,
        body_len,
        ..
    } = header;
    let mut staged: Vec<(String, VocabIndexBuilder)> = Vec::with_capacity(section_count);
    let mut purposes: Vec<u32> = Vec::new();
    let mut objections: Vec<u32> = Vec::new();
    let mut sharing: Vec<u32> = Vec::new();
    for _ in 0..section_count {
        let tenant = cur.string()?;
        check_section_tenant(&tenant, staged.last().map(|(t, _)| t.as_str()))?;
        let count = cur.u64()? as usize;
        if count > (body_len - cur.pos) / 11 {
            return Err(SnapshotInvalid::Malformed("hostile entry count".into()));
        }
        let vocab_refs = cur.vocab()?;
        let vocab_len = vocab_refs.len();
        let vocab: Vec<Arc<str>> = vocab_refs.into_iter().map(Arc::from).collect();
        let mut builder = VocabIndexBuilder::new(vocab, count);
        let mut prev_key: Option<&str> = None;
        for _ in 0..count {
            let key = cur.str_ref()?;
            if prev_key.is_some_and(|prev| prev >= key) {
                return Err(SnapshotInvalid::Malformed(
                    "keys not strictly ascending".into(),
                ));
            }
            prev_key = Some(key);
            check_section_key(&tenant, key)?;
            let user_id = cur.id(vocab_len)?;
            cur.id_list(vocab_len, &mut purposes)?;
            cur.id_list(vocab_len, &mut objections)?;
            cur.id_list(vocab_len, &mut sharing)?;
            let eflags = cur.u8()?;
            let deadline_ms = if eflags & 2 != 0 {
                Some(cur.u64()?)
            } else {
                None
            };
            builder.add(
                key,
                user_id,
                &purposes,
                &objections,
                &sharing,
                eflags & 1 != 0,
                deadline_ms,
            );
        }
        staged.push((tenant, builder));
    }
    if cur.pos != body_len {
        return Err(SnapshotInvalid::Malformed(
            "trailing bytes after the last entry".into(),
        ));
    }
    Ok(staged)
}

/// Restore a **single-tenant** image into `index` — the default-tenant
/// section only. Any named-tenant section makes the image untrustworthy
/// for a single-index restore (nothing is installed).
fn decode_into(
    data: &[u8],
    expected: &SnapshotStamp,
    index: &MetadataIndex,
) -> Result<usize, SnapshotInvalid> {
    let staged = parse_sections(data, expected)?;
    if staged.iter().any(|(tenant, _)| !tenant.is_empty()) {
        return Err(SnapshotInvalid::BadTenant(
            "multi-tenant image restored into a single index".into(),
        ));
    }
    Ok(staged
        .into_iter()
        .map(|(_, builder)| builder.install(index))
        .sum())
}

/// Write every tenant partition's dump to `path` atomically: export each
/// section, encode, write `<path>.tmp`, fsync, rename over the target,
/// fsync the directory. Returns the total entry count. Sections must
/// arrive in strictly ascending tenant order (default tenant's `""`
/// first — [`crate::engine::ComplianceEngine`]'s export does so by
/// construction). **Capture the stamp before calling** (before the
/// export that happens inside): a write racing the snapshot then makes
/// the image look stale rather than falsely fresh.
pub fn write_snapshot(
    path: &Path,
    sections: &[(String, Arc<MetadataIndex>)],
    stamp: &SnapshotStamp,
) -> GdprResult<usize> {
    let exported: Vec<(String, Vec<IndexEntry>)> = sections
        .iter()
        .map(|(tenant, index)| (tenant.clone(), index.export_entries()))
        .collect();
    let total = exported.iter().map(|(_, e)| e.len()).sum();
    let bytes = encode_sections(&exported, stamp);
    let io = |e: std::io::Error| GdprError::Store(format!("index snapshot {path:?}: {e}"));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(&bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    // Make the rename itself durable. Directory fsync is advisory on some
    // filesystems; failure here cannot corrupt anything (the rename was
    // atomic), so it is not fatal.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(total)
}

fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotInvalid> {
    match std::fs::read(path) {
        Ok(data) => Ok(data),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(SnapshotInvalid::Missing),
        Err(e) => Err(SnapshotInvalid::Io(e.to_string())),
    }
}

/// Read and verify the image at `path` against `expected`, materializing
/// the entries (diagnostics and tooling; the engine's recovery path
/// streams via [`MetadataIndex::restore_or_rebuild`] instead).
pub fn read_snapshot(
    path: &Path,
    expected: &SnapshotStamp,
) -> Result<Vec<IndexEntry>, SnapshotInvalid> {
    read_file(path).and_then(|data| decode(&data, expected))
}

/// The tenant-aware crash-recovery entry point: load the image at `path`
/// when it is trustworthy, routing each tenant section into the index
/// `sink` hands back for that tenant name (the engine materializes the
/// tenant's partition there); otherwise complain on stderr and run
/// `rebuild` (the caller's O(n) store backfill across every tenant).
///
/// Installation is all-or-nothing: every section is parsed and every
/// sink resolved before a single partition is touched, so an image that
/// fails late never leaves one tenant restored and another empty.
/// Recovery never propagates a snapshot problem as an error — every
/// untrustworthy-image class degrades to the rebuild, so the only
/// failure surface is the rebuild's own store access.
pub fn restore_or_rebuild_tenants<E>(
    path: &Path,
    expected: &SnapshotStamp,
    sink: &mut dyn FnMut(&str) -> Result<Arc<MetadataIndex>, SnapshotInvalid>,
    rebuild: impl FnOnce() -> Result<usize, E>,
) -> Result<IndexRecovery, E> {
    let attempt = read_file(path)
        .and_then(|data| parse_sections(&data, expected))
        .and_then(|staged| {
            let mut resolved = Vec::with_capacity(staged.len());
            for (tenant, builder) in staged {
                resolved.push((sink(&tenant)?, builder));
            }
            Ok(resolved
                .into_iter()
                .map(|(index, builder)| builder.install(&index))
                .sum())
        });
    match attempt {
        Ok(n) => Ok(IndexRecovery::Restored {
            entries: n,
            generation: expected.generation.unwrap_or(0),
        }),
        Err(cause) => {
            eprintln!(
                "gdpr-core: index snapshot {path:?} not usable ({cause}); \
                 rebuilding the metadata index from a full store scan"
            );
            let records = rebuild()?;
            Ok(IndexRecovery::Rebuilt { records, cause })
        }
    }
}

impl MetadataIndex {
    /// The crash-recovery entry point: load the snapshot at `path` into
    /// this (fresh) index when it is trustworthy — present, structurally
    /// valid, checksum-true, written for `expected`'s shard topology, and
    /// stamped with exactly the store generation `expected` carries — in
    /// O(index); otherwise complain on stderr and run `rebuild` (the
    /// caller's O(n) store backfill) instead. The returned
    /// [`IndexRecovery`] says which path was taken and why.
    ///
    /// Recovery never propagates a snapshot problem as an error: every
    /// untrustworthy-image class degrades to the rebuild, so the only
    /// failure surface is the rebuild's own store access.
    pub fn restore_or_rebuild<E>(
        &self,
        path: &Path,
        expected: &SnapshotStamp,
        rebuild: impl FnOnce(&MetadataIndex) -> Result<usize, E>,
    ) -> Result<IndexRecovery, E> {
        let attempt = read_file(path).and_then(|data| decode_into(&data, expected, self));
        match attempt {
            Ok(n) => Ok(IndexRecovery::Restored {
                entries: n,
                generation: expected.generation.unwrap_or(0),
            }),
            Err(cause) => {
                eprintln!(
                    "gdpr-core: index snapshot {path:?} not usable ({cause}); \
                     rebuilding the metadata index from a full store scan"
                );
                let records = rebuild(self)?;
                Ok(IndexRecovery::Rebuilt { records, cause })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use crate::store::RecordPredicate;
    use std::time::Duration;

    fn sample_index() -> MetadataIndex {
        let idx = MetadataIndex::new();
        let mut m = Metadata::new(
            "neo",
            vec!["ads".into(), "2fa".into()],
            Duration::from_secs(60),
        );
        m.objections.push("ads".into());
        m.sharing.push("x-corp".into());
        idx.upsert(
            &crate::record::PersonalRecord::new("k1", "d1", m),
            1_000,
            false,
        );
        let mut m2 = Metadata::new("trinity", vec!["ads".into()], Duration::from_secs(1));
        m2.ttl = None;
        m2.decisions.push(Metadata::DEC_OPT_OUT.to_string());
        idx.upsert(
            &crate::record::PersonalRecord::new("k2", "d2", m2),
            1_000,
            false,
        );
        idx
    }

    fn all_predicates() -> Vec<RecordPredicate> {
        vec![
            RecordPredicate::User("neo".into()),
            RecordPredicate::User("trinity".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x-corp".into()),
        ]
    }

    fn assert_equivalent(a: &MetadataIndex, b: &MetadataIndex) {
        for pred in all_predicates() {
            assert_eq!(a.keys_for(&pred), b.keys_for(&pred), "{pred:?}");
        }
        for key in ["k1", "k2"] {
            assert_eq!(a.deadline_of(key), b.deadline_of(key), "{key}");
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.expired_keys(u64::MAX), b.expired_keys(u64::MAX));
    }

    #[test]
    fn export_load_roundtrip_reproduces_every_structure() {
        let idx = sample_index();
        let restored = MetadataIndex::new();
        assert_eq!(restored.load_entries(idx.export_entries()), 2);
        assert_equivalent(&idx, &restored);
        // Deterministic dump: two exports are byte-identical once encoded.
        let stamp = SnapshotStamp::unsharded(Some(7));
        assert_eq!(
            encode(&idx.export_entries(), &stamp),
            encode(&idx.export_entries(), &stamp)
        );
    }

    #[test]
    fn encode_decode_roundtrip_and_stamp_checks() {
        let idx = sample_index();
        let stamp = SnapshotStamp {
            generation: Some(42),
            shard_index: 3,
            shard_count: 8,
        };
        let bytes = encode(&idx.export_entries(), &stamp);
        let entries = decode(&bytes, &stamp).unwrap();
        let restored = MetadataIndex::new();
        restored.load_entries(entries);
        assert_equivalent(&idx, &restored);

        // Wrong generation → stale.
        assert!(matches!(
            decode(
                &bytes,
                &SnapshotStamp {
                    generation: Some(43),
                    ..stamp.clone()
                }
            ),
            Err(SnapshotInvalid::StaleGeneration {
                snapshot: Some(42),
                store: Some(43)
            })
        ));
        // A store that cannot stamp trusts nothing.
        assert!(matches!(
            decode(
                &bytes,
                &SnapshotStamp {
                    generation: None,
                    ..stamp.clone()
                }
            ),
            Err(SnapshotInvalid::StaleGeneration { .. })
        ));
        // Unstamped image is never trusted either.
        let unstamped = encode(
            &idx.export_entries(),
            &SnapshotStamp {
                generation: None,
                ..stamp.clone()
            },
        );
        assert!(matches!(
            decode(&unstamped, &stamp),
            Err(SnapshotInvalid::StaleGeneration { snapshot: None, .. })
        ));
        // Topology mismatch checked before generation can pass.
        assert!(matches!(
            decode(
                &bytes,
                &SnapshotStamp {
                    generation: Some(42),
                    shard_index: 3,
                    shard_count: 4
                }
            ),
            Err(SnapshotInvalid::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_and_flip_is_rejected_without_panicking() {
        let idx = sample_index();
        let stamp = SnapshotStamp::unsharded(Some(1));
        let bytes = encode(&idx.export_entries(), &stamp);
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len], &stamp).is_err(),
                "prefix of {len} bytes must be rejected"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            assert!(
                decode(&bad, &stamp).is_err(),
                "flip at {i} must be rejected"
            );
        }
        // Trailing garbage after a valid image.
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"zzzz");
        assert!(decode(&padded, &stamp).is_err());
        // A duplicated (self-concatenated) image is not a valid image.
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes);
        assert!(decode(&doubled, &stamp).is_err());
        assert!(
            decode(&bytes, &stamp).is_ok(),
            "the intact image still loads"
        );
    }

    /// A checksum-valid image whose keys are not strictly ascending is a
    /// forgery (the writer always sorts) — both readers must reject it,
    /// and the recovery path must degrade to the rebuild, because a
    /// duplicate or reordered key stream can split postings and drop
    /// records from predicate answers.
    #[test]
    fn forged_key_order_is_rejected_by_both_readers() {
        let idx = sample_index();
        let stamp = SnapshotStamp::unsharded(Some(3));
        let mut entries = idx.export_entries();
        entries.reverse(); // k2 before k1: checksum-valid, order-forged
        let forged = encode(&entries, &stamp);
        assert!(matches!(
            decode(&forged, &stamp),
            Err(SnapshotInvalid::Malformed(_))
        ));
        let fresh = MetadataIndex::new();
        assert!(matches!(
            decode_into(&forged, &stamp, &fresh),
            Err(SnapshotInvalid::Malformed(_))
        ));
        assert!(fresh.is_empty(), "a rejected image must install nothing");
        // Duplicated keys are equally a forgery.
        let mut entries = idx.export_entries();
        let dup = entries[0].clone();
        entries.insert(1, dup);
        let forged = encode(&entries, &stamp);
        assert!(matches!(
            decode(&forged, &stamp),
            Err(SnapshotInvalid::Malformed(_))
        ));
    }

    #[test]
    fn atomic_write_and_restore_or_rebuild() {
        let dir = std::env::temp_dir().join(format!("gidx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.snap");
        let _ = std::fs::remove_file(&path);
        let idx = sample_index();
        let stamp = SnapshotStamp::unsharded(Some(5));

        // Missing file → rebuild (closure runs).
        let fresh = MetadataIndex::new();
        let outcome: Result<IndexRecovery, GdprError> =
            fresh.restore_or_rebuild(&path, &stamp, |_| Ok(9));
        assert_eq!(
            outcome.unwrap(),
            IndexRecovery::Rebuilt {
                records: 9,
                cause: SnapshotInvalid::Missing
            }
        );

        let sections = vec![(String::new(), Arc::new(sample_index()))];
        assert_eq!(write_snapshot(&path, &sections, &stamp).unwrap(), 2);
        let fresh = MetadataIndex::new();
        let outcome: Result<IndexRecovery, GdprError> =
            fresh.restore_or_rebuild(&path, &stamp, |_| panic!("must not rebuild"));
        assert!(outcome.unwrap().is_restored());
        assert_equivalent(&idx, &fresh);

        // A rebuild error propagates.
        let bad: Result<IndexRecovery, GdprError> = MetadataIndex::new().restore_or_rebuild(
            &path,
            &SnapshotStamp::unsharded(Some(6)),
            |_| Err(GdprError::Store("scan failed".into())),
        );
        assert!(bad.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    fn tenant_index(tenant: &str) -> MetadataIndex {
        let t = TenantId::new(tenant).unwrap();
        let idx = MetadataIndex::new();
        let m = Metadata::new("neo", vec!["ads".into()], Duration::from_secs(60));
        idx.upsert(
            &crate::record::PersonalRecord::new(t.storage_key("k1"), "d", m),
            1_000,
            false,
        );
        idx
    }

    #[test]
    fn multi_tenant_sections_roundtrip_and_route() {
        let stamp = SnapshotStamp::unsharded(Some(9));
        let sections = vec![
            (String::new(), Arc::new(sample_index())),
            ("acme".to_string(), Arc::new(tenant_index("acme"))),
            ("zeta".to_string(), Arc::new(tenant_index("zeta"))),
        ];
        let exported: Vec<(String, Vec<IndexEntry>)> = sections
            .iter()
            .map(|(t, i)| (t.clone(), i.export_entries()))
            .collect();
        let bytes = encode_sections(&exported, &stamp);
        let decoded = decode_sections(&bytes, &stamp).unwrap();
        assert_eq!(
            decoded.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>(),
            vec!["", "acme", "zeta"]
        );
        assert_eq!(decoded[0].1.len(), 2);
        assert_eq!(decoded[1].1.len(), 1);
        assert_eq!(decoded[1].1[0].key, "acme\u{1d}k1");

        // The tenant-aware recovery routes each section to its partition.
        let dir = std::env::temp_dir().join(format!("gidx-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multi.snap");
        write_snapshot(&path, &sections, &stamp).unwrap();
        let mut restored: Vec<(String, Arc<MetadataIndex>)> = Vec::new();
        let outcome: Result<IndexRecovery, GdprError> = restore_or_rebuild_tenants(
            &path,
            &stamp,
            &mut |tenant| {
                let idx = Arc::new(MetadataIndex::new());
                restored.push((tenant.to_string(), Arc::clone(&idx)));
                Ok(idx)
            },
            || panic!("must not rebuild"),
        );
        assert_eq!(
            outcome.unwrap(),
            IndexRecovery::Restored {
                entries: 4,
                generation: 9
            }
        );
        assert_eq!(restored.len(), 3);
        assert_eq!(restored[1].0, "acme");
        assert_eq!(restored[1].1.len(), 1);
        assert_equivalent(&sections[0].1, &restored[0].1);
        std::fs::remove_file(&path).unwrap();

        // A multi-tenant image never restores into a single bare index.
        let single = MetadataIndex::new();
        assert!(matches!(
            decode_into(&bytes, &stamp, &single),
            Err(SnapshotInvalid::BadTenant(_))
        ));
        assert!(single.is_empty());
    }

    #[test]
    fn cross_tenant_and_misordered_sections_are_forgeries() {
        let stamp = SnapshotStamp::unsharded(Some(2));
        // Section order must be strictly ascending.
        let misordered = encode_sections(
            &[
                ("zeta".to_string(), tenant_index("zeta").export_entries()),
                ("acme".to_string(), tenant_index("acme").export_entries()),
            ],
            &stamp,
        );
        assert!(matches!(
            decode_sections(&misordered, &stamp),
            Err(SnapshotInvalid::Malformed(_))
        ));
        // A key parked in the wrong tenant's section is rejected even
        // though the checksum holds.
        let leaked = encode_sections(
            &[("acme".to_string(), tenant_index("zeta").export_entries())],
            &stamp,
        );
        assert!(matches!(
            decode_sections(&leaked, &stamp),
            Err(SnapshotInvalid::Malformed(_))
        ));
        // An invalid tenant name in the image is rejected.
        let bad_name = encode_sections(&[("has space".to_string(), Vec::new())], &stamp);
        assert!(matches!(
            decode_sections(&bad_name, &stamp),
            Err(SnapshotInvalid::BadTenant(_))
        ));
        // A version this build does not read rebuilds loudly.
        let mut old = encode(&sample_index().export_entries(), &stamp);
        old[8..12].copy_from_slice(&1u32.to_le_bytes());
        let body_len = old.len() - 8;
        let sum = SipHash24::from_key_bytes(&CHECKSUM_KEY).hash(&old[..body_len]);
        old[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&old, &stamp),
            Err(SnapshotInvalid::UnsupportedVersion(1))
        ));
    }
}
