//! The benchmark's record wire format (§4.2.1):
//!
//! ```text
//! ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=365days;USR=neo;OBJ=∅;DEC=∅;SHR=∅;SRC=first-party;
//! ```
//!
//! Fields are `;`-separated, list values `,`-separated, `∅` denotes an empty
//! attribute, and all fields are ASCII except the separators themselves.

use crate::error::{GdprError, GdprResult};
use crate::record::{Metadata, PersonalRecord};
use std::time::Duration;

/// The empty-attribute marker. (The paper prints U+2205 EMPTY SET; it is the
/// one non-ASCII codepoint in the format.)
pub const EMPTY: &str = "∅";

/// Serialize a record to its wire form.
pub fn serialize(record: &PersonalRecord) -> String {
    let m = &record.metadata;
    format!(
        "{};{};PUR={};TTL={};USR={};OBJ={};DEC={};SHR={};SRC={};",
        record.key,
        record.data,
        join(&m.purposes),
        m.ttl.map_or_else(|| EMPTY.to_string(), format_ttl),
        nonempty(&m.user),
        join(&m.objections),
        join(&m.decisions),
        join(&m.sharing),
        nonempty(&m.source),
    )
}

/// Parse a wire-form record.
pub fn parse(s: &str) -> GdprResult<PersonalRecord> {
    let s = s.strip_suffix(';').unwrap_or(s);
    let fields: Vec<&str> = s.split(';').collect();
    if fields.len() != 9 {
        return Err(GdprError::InvalidRecord(format!(
            "expected 9 fields, got {}",
            fields.len()
        )));
    }
    let key = fields[0];
    let data = fields[1];
    if key.is_empty() {
        return Err(GdprError::InvalidRecord("empty key".into()));
    }
    validate_ascii(key)?;
    validate_ascii(data)?;

    let mut metadata = Metadata::default();
    for (i, expected) in ["PUR", "TTL", "USR", "OBJ", "DEC", "SHR", "SRC"]
        .iter()
        .enumerate()
    {
        let field = fields[2 + i];
        let value = field
            .strip_prefix(expected)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| {
                GdprError::InvalidRecord(format!("field {} must be {expected}=...", 2 + i))
            })?;
        match *expected {
            "PUR" => metadata.purposes = split(value),
            "TTL" => metadata.ttl = parse_ttl(value)?,
            "USR" => metadata.user = scalar(value),
            "OBJ" => metadata.objections = split(value),
            "DEC" => metadata.decisions = split(value),
            "SHR" => metadata.sharing = split(value),
            "SRC" => metadata.source = scalar(value),
            _ => unreachable!(),
        }
    }
    Ok(PersonalRecord::new(key, data, metadata))
}

fn join(items: &[String]) -> String {
    if items.is_empty() {
        EMPTY.to_string()
    } else {
        items.join(",")
    }
}

fn nonempty(s: &str) -> &str {
    if s.is_empty() {
        EMPTY
    } else {
        s
    }
}

fn split(value: &str) -> Vec<String> {
    if value == EMPTY || value.is_empty() {
        Vec::new()
    } else {
        value.split(',').map(str::to_string).collect()
    }
}

fn scalar(value: &str) -> String {
    if value == EMPTY {
        String::new()
    } else {
        value.to_string()
    }
}

fn validate_ascii(s: &str) -> GdprResult<()> {
    if let Some(bad) = s.chars().find(|c| !c.is_ascii() || *c == ';' || *c == ',') {
        return Err(GdprError::InvalidRecord(format!(
            "illegal character {bad:?} in field {s:?}"
        )));
    }
    Ok(())
}

/// Format a TTL like the paper's examples: `365days`, falling through to
/// hours/mins/secs for sub-day durations.
pub fn format_ttl(ttl: Duration) -> String {
    let secs = ttl.as_secs();
    if secs == 0 {
        return "0secs".to_string();
    }
    if secs.is_multiple_of(86_400) {
        format!("{}days", secs / 86_400)
    } else if secs.is_multiple_of(3_600) {
        format!("{}hours", secs / 3_600)
    } else if secs.is_multiple_of(60) {
        format!("{}mins", secs / 60)
    } else {
        format!("{secs}secs")
    }
}

/// Parse a TTL value (`365days`, `12hours`, `30mins`, `45secs`, or `∅`).
pub fn parse_ttl(value: &str) -> GdprResult<Option<Duration>> {
    if value == EMPTY || value.is_empty() {
        return Ok(None);
    }
    let split_at = value
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| GdprError::InvalidRecord(format!("TTL {value:?} missing unit")))?;
    let (digits, unit) = value.split_at(split_at);
    let n: u64 = digits
        .parse()
        .map_err(|_| GdprError::InvalidRecord(format!("bad TTL count {digits:?}")))?;
    let secs = match unit {
        "days" | "day" => n * 86_400,
        "hours" | "hour" => n * 3_600,
        "mins" | "min" => n * 60,
        "secs" | "sec" => n,
        other => {
            return Err(GdprError::InvalidRecord(format!(
                "unknown TTL unit {other:?}"
            )));
        }
    };
    Ok(Some(Duration::from_secs(secs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_EXAMPLE: &str =
        "ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=365days;USR=neo;OBJ=∅;DEC=∅;SHR=∅;SRC=first-party;";

    #[test]
    fn parses_the_papers_example_record() {
        let record = parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(record.key, "ph-1x4b");
        assert_eq!(record.data, "123-456-7890");
        assert_eq!(record.metadata.purposes, vec!["ads", "2fa"]);
        assert_eq!(record.metadata.ttl, Some(Duration::from_secs(365 * 86_400)));
        assert_eq!(record.metadata.user, "neo");
        assert!(record.metadata.objections.is_empty());
        assert!(record.metadata.decisions.is_empty());
        assert!(record.metadata.sharing.is_empty());
        assert_eq!(record.metadata.source, "first-party");
    }

    #[test]
    fn roundtrip_preserves_record() {
        let record = parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(serialize(&record), PAPER_EXAMPLE);
        assert_eq!(parse(&serialize(&record)).unwrap(), record);
    }

    #[test]
    fn roundtrip_with_every_field_populated() {
        use crate::record::Metadata;
        let record = PersonalRecord::new(
            "k-99",
            "data-value",
            Metadata {
                purposes: vec!["ads".into()],
                ttl: Some(Duration::from_secs(90)),
                user: "morpheus".into(),
                objections: vec!["ads".into(), "sales".into()],
                decisions: vec!["credit-score".into()],
                sharing: vec!["a-corp".into(), "b-corp".into()],
                source: "third-party".into(),
            },
        );
        let wire = serialize(&record);
        assert_eq!(parse(&wire).unwrap(), record);
        assert!(wire.contains("TTL=90secs"));
        assert!(wire.contains("OBJ=ads,sales"));
    }

    #[test]
    fn ttl_formats() {
        assert_eq!(format_ttl(Duration::from_secs(365 * 86_400)), "365days");
        assert_eq!(format_ttl(Duration::from_secs(7_200)), "2hours");
        assert_eq!(format_ttl(Duration::from_secs(300)), "5mins");
        assert_eq!(format_ttl(Duration::from_secs(61)), "61secs");
        for s in ["365days", "2hours", "5mins", "61secs"] {
            let d = parse_ttl(s).unwrap().unwrap();
            assert_eq!(format_ttl(d), s, "roundtrip {s}");
        }
    }

    #[test]
    fn ttl_parse_errors() {
        assert!(parse_ttl("days").is_err());
        assert!(parse_ttl("12").is_err());
        assert!(parse_ttl("12years").is_err());
        assert_eq!(parse_ttl("∅").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(parse("too;few;fields").is_err());
        assert!(parse("").is_err());
        // Wrong attribute order/name.
        let bad = PAPER_EXAMPLE.replace("PUR=", "XXX=");
        assert!(parse(&bad).is_err());
        // Empty key.
        let bad = PAPER_EXAMPLE.replacen("ph-1x4b", "", 1);
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn rejects_separator_in_payload() {
        let record = PersonalRecord::new("k", "data;with;semis", Metadata::default());
        // serialize would produce an ambiguous wire form; parse must refuse
        // such payloads on the way in.
        let wire = serialize(&record);
        assert!(parse(&wire).is_err());
    }

    #[test]
    fn empty_metadata_serializes_to_empty_markers() {
        let record = PersonalRecord::new("k", "d", Metadata::default());
        let wire = serialize(&record);
        assert!(wire.contains("PUR=∅"));
        assert!(wire.contains("TTL=∅"));
        assert!(wire.contains("USR=∅"));
        let parsed = parse(&wire).unwrap();
        assert_eq!(parsed.metadata, Metadata::default());
    }
}
