//! Table 1 of the paper, as data: the map from GDPR articles to database
//! attributes and actions.
//!
//! This is both documentation and an executable checklist — tests assert
//! the map covers exactly the paper's twelve rows, and
//! [`articles_satisfied_by`] relates a store's [`FeatureReport`] back to the
//! articles it addresses (the substance of a GET-SYSTEM-FEATURES audit).

use crate::compliance::{ComplianceFeature, FeatureReport};
use crate::query::MetadataField;

/// A database-relevant action demanded by an article (Table 1's "Actions"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbAction {
    MetadataIndexing,
    TimelyDeletion,
    AccessControl,
    MonitorAndLog,
    Encryption,
}

impl DbAction {
    /// The compliance feature that implements this action.
    pub fn feature(&self) -> ComplianceFeature {
        match self {
            DbAction::MetadataIndexing => ComplianceFeature::MetadataIndexing,
            DbAction::TimelyDeletion => ComplianceFeature::TimelyDeletion,
            DbAction::AccessControl => ComplianceFeature::AccessControl,
            DbAction::MonitorAndLog => ComplianceFeature::MonitoringAndLogging,
            DbAction::Encryption => ComplianceFeature::Encryption,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArticleRequirement {
    /// GDPR article number.
    pub article: u8,
    /// The article/clause title.
    pub clause: &'static str,
    /// What it regulates, in the paper's words.
    pub regulates: &'static str,
    /// Metadata attributes involved (Table 1's "Attributes" column).
    pub attributes: &'static [MetadataField],
    /// Whether the TTL attribute is involved (TTL is not a
    /// [`MetadataField`] — it has dedicated handling).
    pub involves_ttl: bool,
    /// Database actions demanded.
    pub actions: &'static [DbAction],
}

/// The twelve rows of Table 1.
pub const ARTICLE_MAP: &[ArticleRequirement] = &[
    ArticleRequirement {
        article: 5,
        clause: "Purpose limitation",
        regulates: "Collect data for explicit purposes",
        attributes: &[MetadataField::Purposes],
        involves_ttl: false,
        actions: &[DbAction::MetadataIndexing],
    },
    ArticleRequirement {
        article: 5,
        clause: "Storage limitation",
        regulates: "Do not store data indefinitely",
        attributes: &[],
        involves_ttl: true,
        actions: &[DbAction::TimelyDeletion],
    },
    ArticleRequirement {
        article: 13, // and 14
        clause: "Information to be provided [...]",
        regulates: "Inform customers about all the GDPR metadata associated with their data",
        attributes: &[
            MetadataField::Purposes,
            MetadataField::Source,
            MetadataField::Sharing,
        ],
        involves_ttl: true,
        actions: &[DbAction::MetadataIndexing],
    },
    ArticleRequirement {
        article: 15,
        clause: "Right of access by users",
        regulates: "Allow customers to access all their data",
        attributes: &[MetadataField::User],
        involves_ttl: false,
        actions: &[DbAction::MetadataIndexing],
    },
    ArticleRequirement {
        article: 17,
        clause: "Right to be forgotten",
        regulates: "Allow customers to erasure their data",
        attributes: &[],
        involves_ttl: true,
        actions: &[DbAction::TimelyDeletion],
    },
    ArticleRequirement {
        article: 21,
        clause: "Right to object",
        regulates: "Do not use data for any objected reasons",
        attributes: &[MetadataField::Objections],
        involves_ttl: false,
        actions: &[DbAction::MetadataIndexing],
    },
    ArticleRequirement {
        article: 22,
        clause: "Automated individual decision-making",
        regulates: "Allow customers to withdraw from fully algorithmic decision-making",
        attributes: &[MetadataField::Decisions],
        involves_ttl: false,
        actions: &[DbAction::MetadataIndexing],
    },
    ArticleRequirement {
        article: 25,
        clause: "Data protection by design and default",
        regulates: "Safeguard and restrict access to data",
        attributes: &[],
        involves_ttl: false,
        actions: &[DbAction::AccessControl],
    },
    ArticleRequirement {
        article: 28,
        clause: "Processor",
        regulates: "Do not grant unlimited access to data",
        attributes: &[],
        involves_ttl: false,
        actions: &[DbAction::AccessControl],
    },
    ArticleRequirement {
        article: 30,
        clause: "Records of processing activity",
        regulates: "Audit all operations on personal data",
        attributes: &[],
        involves_ttl: false,
        actions: &[DbAction::MonitorAndLog],
    },
    ArticleRequirement {
        article: 32,
        clause: "Security of processing",
        regulates: "Implement appropriate data security",
        attributes: &[],
        involves_ttl: false,
        actions: &[DbAction::Encryption],
    },
    ArticleRequirement {
        article: 33,
        clause: "Notification of personal data breach",
        regulates: "Share audit trails from affected systems",
        attributes: &[],
        involves_ttl: false,
        actions: &[DbAction::MonitorAndLog],
    },
];

/// Which Table 1 rows a store's feature report satisfies.
pub fn articles_satisfied_by(report: &FeatureReport) -> Vec<&'static ArticleRequirement> {
    ARTICLE_MAP
        .iter()
        .filter(|req| {
            req.actions
                .iter()
                .all(|a| report.support_for(a.feature()).is_supported())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compliance::FeatureSupport;

    #[test]
    fn table1_has_twelve_rows() {
        assert_eq!(ARTICLE_MAP.len(), 12);
    }

    #[test]
    fn every_action_family_appears() {
        use std::collections::HashSet;
        let actions: HashSet<_> = ARTICLE_MAP
            .iter()
            .flat_map(|r| r.actions.iter().copied())
            .collect();
        assert_eq!(actions.len(), 5, "all five DB actions must be demanded");
    }

    #[test]
    fn articles_match_papers_numbers() {
        let numbers: Vec<u8> = ARTICLE_MAP.iter().map(|r| r.article).collect();
        assert_eq!(numbers, vec![5, 5, 13, 15, 17, 21, 22, 25, 28, 30, 32, 33]);
    }

    #[test]
    fn full_report_satisfies_all_rows() {
        let report = FeatureReport {
            timely_deletion: FeatureSupport::Retrofitted,
            monitoring_and_logging: FeatureSupport::Retrofitted,
            metadata_indexing: FeatureSupport::Retrofitted,
            encryption: FeatureSupport::Retrofitted,
            access_control: FeatureSupport::Retrofitted,
        };
        assert_eq!(articles_satisfied_by(&report).len(), 12);
    }

    #[test]
    fn missing_logging_drops_articles_30_and_33() {
        let report = FeatureReport {
            timely_deletion: FeatureSupport::Native,
            monitoring_and_logging: FeatureSupport::Unsupported,
            metadata_indexing: FeatureSupport::Native,
            encryption: FeatureSupport::Native,
            access_control: FeatureSupport::Native,
        };
        let satisfied = articles_satisfied_by(&report);
        assert_eq!(satisfied.len(), 10);
        assert!(satisfied.iter().all(|r| r.article != 30 && r.article != 33));
    }

    #[test]
    fn bare_store_satisfies_nothing() {
        assert!(articles_satisfied_by(&FeatureReport::default()).is_empty());
    }
}
