//! Responses to GDPR queries.

use crate::compliance::FeatureReport;
use crate::record::{Metadata, PersonalRecord};

/// One audit/system log line returned to a regulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    pub timestamp_ms: u64,
    pub actor: String,
    pub operation: String,
    pub detail: String,
}

/// The response to a [`crate::GdprQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum GdprResponse {
    /// CREATE-RECORD succeeded.
    Created,
    /// Deletion removed this many records.
    Deleted(usize),
    /// Full records (key + data + metadata).
    Records(Vec<PersonalRecord>),
    /// Data-only pairs `(key, data)` — what processors see.
    Data(Vec<(String, String)>),
    /// Metadata-only pairs `(key, metadata)` — what regulators see.
    Metadata(Vec<(String, Metadata)>),
    /// Update touched this many records.
    Updated(usize),
    /// System log lines for a time range.
    Logs(Vec<LogLine>),
    /// Capability report (GET-SYSTEM-FEATURES).
    Features(FeatureReport),
    /// verify-deletion: true iff the key is gone.
    DeletionVerified(bool),
}

impl GdprResponse {
    /// Records/rows conveyed, for stats and correctness accounting.
    pub fn cardinality(&self) -> usize {
        match self {
            GdprResponse::Created => 1,
            GdprResponse::Deleted(n) | GdprResponse::Updated(n) => *n,
            GdprResponse::Records(v) => v.len(),
            GdprResponse::Data(v) => v.len(),
            GdprResponse::Metadata(v) => v.len(),
            GdprResponse::Logs(v) => v.len(),
            GdprResponse::Features(_) => 1,
            GdprResponse::DeletionVerified(_) => 1,
        }
    }

    pub fn as_data(&self) -> Option<&[(String, String)]> {
        match self {
            GdprResponse::Data(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_records(&self) -> Option<&[PersonalRecord]> {
        match self {
            GdprResponse::Records(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_metadata(&self) -> Option<&[(String, Metadata)]> {
        match self {
            GdprResponse::Metadata(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities() {
        assert_eq!(GdprResponse::Created.cardinality(), 1);
        assert_eq!(GdprResponse::Deleted(7).cardinality(), 7);
        assert_eq!(
            GdprResponse::Data(vec![("k".into(), "v".into())]).cardinality(),
            1
        );
        assert_eq!(GdprResponse::DeletionVerified(true).cardinality(), 1);
    }

    #[test]
    fn accessors() {
        let r = GdprResponse::Data(vec![("k".into(), "v".into())]);
        assert!(r.as_data().is_some());
        assert!(r.as_records().is_none());
        assert!(r.as_metadata().is_none());
    }
}
