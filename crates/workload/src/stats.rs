//! Measurement: log-bucketed latency histograms and per-operation counters
//! — the role YCSB's `Measurements` module plays.

use std::time::Duration;

/// Number of buckets: bucket `i` covers latencies in `[2^i, 2^(i+1))` µs.
const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros() as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us / self.count)
    }

    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_us)
        }
    }

    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Upper bound of the bucket containing the `q` quantile (0.0–1.0).
    /// Log-bucketed, so the value is accurate to within 2×.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(1 << (i + 1));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Per-operation-class statistics.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    pub ok: u64,
    pub errors: u64,
    pub latency: Histogram,
}

impl OpStats {
    pub fn record_ok(&mut self, latency: Duration) {
        self.ok += 1;
        self.latency.record(latency);
    }

    pub fn record_error(&mut self, latency: Duration) {
        self.errors += 1;
        self.latency.record(latency);
    }

    pub fn total(&self) -> u64 {
        self.ok + self.errors
    }

    pub fn merge(&mut self, other: &OpStats) {
        self.ok += other.ok;
        self.errors += other.errors;
        self.latency.merge(&other.latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summaries() {
        let mut h = Histogram::new();
        for us in [10u64, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Duration::from_micros(2777));
        assert_eq!(h.min(), Duration::from_micros(10));
        assert_eq!(h.max(), Duration::from_micros(10_000));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        // log2 buckets: p50 (value 500) lands in [512,1024) upper bound 1024.
        assert!(p50 >= Duration::from_micros(500));
        assert!(p50 <= Duration::from_micros(1024));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(10));
        let mut b = Histogram::new();
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_micros(10));
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn opstats_accumulate() {
        let mut s = OpStats::default();
        s.record_ok(Duration::from_micros(5));
        s.record_error(Duration::from_micros(7));
        assert_eq!(s.total(), 2);
        let mut t = OpStats::default();
        t.record_ok(Duration::from_micros(9));
        s.merge(&t);
        assert_eq!(s.ok, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.latency.count(), 3);
    }
}
