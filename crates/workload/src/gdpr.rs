//! The four GDPRbench workloads (Table 2a of the paper).
//!
//! | workload | operations (default weights) | distribution |
//! |---|---|---|
//! | Controller | create-record 25 / delete-by-{pur,ttl,usr} 25 / update-metadata-by-{pur,usr,shr} 50 | uniform |
//! | Customer | read-data-by-usr, read-metadata-by-key, update-data-by-key, update-metadata-by-key, delete-record-by-key — 20 each | zipf |
//! | Processor | read-data-by-key 80 (zipf) / read-data-by-{pur,obj,dec} 20 (uniform) | mixed |
//! | Regulator | read-metadata-by-usr 46 / get-system-logs 31 / verify-deletion 23 | zipf |
//!
//! The weights follow the paper's calibration: controller uniformity from
//! G5.1 steady-state, customer/regulator zipf from the Google RTBF report,
//! regulator splits from the EDPB's first-nine-months complaint statistics
//! (46% customer complaints / 31% breach notifications / 23% statutory
//! inquiries). One workload note: §3.3's taxonomy has no
//! `update-metadata-by-shr` query, although Table 2a names one — we follow
//! the taxonomy and model the controller's sharing-maintenance as
//! user-scoped sharing updates.

use crate::datagen::{self, CorpusConfig, PURPOSES, THIRD_PARTIES};
use crate::generator::{Discrete, IndexGenerator, Uniform, Zipfian};
use gdpr_core::query::{GdprQuery, MetadataField, MetadataUpdate};
use gdpr_core::role::Session;
use gdpr_core::tenant::TenantId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which of the four entity workloads to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GdprWorkloadKind {
    Controller,
    Customer,
    Processor,
    Regulator,
}

impl GdprWorkloadKind {
    pub const ALL: [GdprWorkloadKind; 4] = [
        GdprWorkloadKind::Controller,
        GdprWorkloadKind::Customer,
        GdprWorkloadKind::Processor,
        GdprWorkloadKind::Regulator,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            GdprWorkloadKind::Controller => "controller",
            GdprWorkloadKind::Customer => "customer",
            GdprWorkloadKind::Processor => "processor",
            GdprWorkloadKind::Regulator => "regulator",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpName {
    Create,
    DeleteByPur,
    DeleteByTtl,
    DeleteByUsr,
    UpdateMetaByPur,
    UpdateMetaByUsr,
    UpdateMetaSharing,
    ReadDataByUsr,
    ReadMetaByKey,
    UpdateDataByKey,
    UpdateMetaByKey,
    DeleteByKey,
    ReadDataByKey,
    ReadDataByPur,
    ReadDataByObj,
    ReadDataByDec,
    ReadMetaByUsr,
    GetSystemLogs,
    VerifyDeletion,
}

/// One of the four workloads, generating `(Session, GdprQuery)` streams.
///
/// One instance per client thread; `create_counter` is shared so controller
/// threads mint disjoint new record keys.
pub struct GdprWorkload {
    kind: GdprWorkloadKind,
    corpus: CorpusConfig,
    op_chooser: Discrete<OpName>,
    zipf_records: Zipfian,
    zipf_users: Zipfian,
    uniform_records: Uniform,
    uniform_users: Uniform,
    /// Keys owned by each user index (derived from the deterministic corpus).
    user_keys: Arc<HashMap<usize, Vec<usize>>>,
    create_counter: Arc<AtomicU64>,
    /// Every generated session executes under this tenant.
    tenant: TenantId,
    /// When set (`--skew zipf:THETA`), purpose picks become zipf-ranked
    /// instead of uniform, matching the re-skewed key/user generators.
    purpose_zipf: Option<Zipfian>,
}

impl GdprWorkload {
    /// Build a workload over a corpus of `corpus.records` preloaded records.
    /// `create_counter` must start at `corpus.records` and be shared across
    /// threads.
    pub fn new(
        kind: GdprWorkloadKind,
        corpus: CorpusConfig,
        create_counter: Arc<AtomicU64>,
    ) -> Self {
        let op_chooser = Discrete::new(Self::mix(kind));
        let n = corpus.records.max(1) as u64;
        let users = corpus.users.max(1) as u64;
        let mut user_keys: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..corpus.records {
            let user_idx = user_index_of(i, &corpus);
            user_keys.entry(user_idx).or_default().push(i);
        }
        GdprWorkload {
            kind,
            corpus,
            op_chooser,
            zipf_records: Zipfian::new(n),
            zipf_users: Zipfian::new(users),
            uniform_records: Uniform::new(n),
            uniform_users: Uniform::new(users),
            user_keys: Arc::new(user_keys),
            create_counter,
            tenant: TenantId::default(),
            purpose_zipf: None,
        }
    }

    /// Run every generated session under `tenant`. The default tenant is
    /// the single-controller degenerate case and changes nothing.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Override the zipf skew constant for record/user picks and switch
    /// purpose picks from uniform to zipf-ranked (`--skew zipf:THETA`).
    /// Higher theta → hotter head; YCSB's default is 0.99.
    pub fn with_zipf_theta(mut self, theta: f64) -> Self {
        let n = self.corpus.records.max(1) as u64;
        let users = self.corpus.users.max(1) as u64;
        self.zipf_records = Zipfian::with_theta(n, theta);
        self.zipf_users = Zipfian::with_theta(users, theta);
        self.purpose_zipf = Some(Zipfian::with_theta(PURPOSES.len() as u64, theta));
        self
    }

    /// The Table 2a operation mixes.
    fn mix(kind: GdprWorkloadKind) -> Vec<(f64, OpName)> {
        use OpName::*;
        match kind {
            GdprWorkloadKind::Controller => vec![
                (25.0, Create),
                (25.0 / 3.0, DeleteByPur),
                (25.0 / 3.0, DeleteByTtl),
                (25.0 / 3.0, DeleteByUsr),
                (50.0 / 3.0, UpdateMetaByPur),
                (50.0 / 3.0, UpdateMetaByUsr),
                (50.0 / 3.0, UpdateMetaSharing),
            ],
            GdprWorkloadKind::Customer => vec![
                (20.0, ReadDataByUsr),
                (20.0, ReadMetaByKey),
                (20.0, UpdateDataByKey),
                (20.0, UpdateMetaByKey),
                (20.0, DeleteByKey),
            ],
            GdprWorkloadKind::Processor => vec![
                (80.0, ReadDataByKey),
                (20.0 / 3.0, ReadDataByPur),
                (20.0 / 3.0, ReadDataByObj),
                (20.0 / 3.0, ReadDataByDec),
            ],
            GdprWorkloadKind::Regulator => vec![
                (46.0, ReadMetaByUsr),
                (31.0, GetSystemLogs),
                (23.0, VerifyDeletion),
            ],
        }
    }

    pub fn kind(&self) -> GdprWorkloadKind {
        self.kind
    }

    fn record_index(&mut self, rng: &mut dyn rand::RngCore, zipf: bool) -> usize {
        if zipf {
            self.zipf_records.next(rng) as usize
        } else {
            self.uniform_records.next(rng) as usize
        }
    }

    fn user_index(&mut self, rng: &mut dyn rand::RngCore, zipf: bool) -> usize {
        if zipf {
            self.zipf_users.next(rng) as usize
        } else {
            self.uniform_users.next(rng) as usize
        }
    }

    fn user_name(idx: usize) -> String {
        format!("user{idx:06}")
    }

    /// A vocabulary purpose: uniform by default, zipf-ranked under skew
    /// (rank 0 = hottest purpose, mirroring the hot-key head).
    fn pick_purpose(&mut self, rng: &mut dyn rand::RngCore) -> &'static str {
        match self.purpose_zipf.as_mut() {
            Some(z) => PURPOSES[z.next(rng) as usize % PURPOSES.len()],
            None => PURPOSES[rng.next_u64() as usize % PURPOSES.len()],
        }
    }

    /// A key belonging to `user_idx`, or any record key if that user holds
    /// none in the corpus.
    fn key_of_user(&mut self, user_idx: usize, rng: &mut dyn rand::RngCore) -> (usize, String) {
        match self.user_keys.get(&user_idx).filter(|v| !v.is_empty()) {
            Some(keys) => {
                let pick = keys[(rng.next_u64() as usize) % keys.len()];
                (pick, datagen::key_of(pick))
            }
            None => {
                let i = self.record_index(rng, true);
                (i, datagen::key_of(i))
            }
        }
    }

    /// Generate the next operation with the session it executes under.
    pub fn next_op(&mut self, rng: &mut dyn rand::RngCore) -> (Session, GdprQuery) {
        use OpName::*;
        let op = *self.op_chooser.next(rng);
        let (session, query) = match op {
            // --- controller ---
            Create => {
                let idx = self.create_counter.fetch_add(1, Ordering::Relaxed) as usize;
                let record = datagen::record_of(idx, &self.corpus);
                (Session::controller(), GdprQuery::CreateRecord(record))
            }
            DeleteByPur => {
                // A *completed* purpose is a narrow cohort, not one of the
                // broad vocabulary purposes — deleting those would erase a
                // third of the store per operation and break the steady
                // state G5.1 implies (see datagen::COHORT_SIZE).
                let cohorts = (self.corpus.records / datagen::COHORT_SIZE).max(1);
                let cohort = datagen::cohort_purpose_of(
                    (rng.next_u64() as usize % cohorts) * datagen::COHORT_SIZE,
                );
                (Session::controller(), GdprQuery::DeleteByPurpose(cohort))
            }
            DeleteByTtl => (Session::controller(), GdprQuery::DeleteExpired),
            DeleteByUsr => {
                let user = Self::user_name(self.user_index(rng, false));
                (Session::controller(), GdprQuery::DeleteByUser(user))
            }
            UpdateMetaByPur => {
                let purpose = self.pick_purpose(rng);
                let party = THIRD_PARTIES[rng.next_u64() as usize % THIRD_PARTIES.len()];
                (
                    Session::controller(),
                    GdprQuery::UpdateMetadataByPurpose {
                        purpose: purpose.into(),
                        update: MetadataUpdate::Add(MetadataField::Sharing, party.into()),
                    },
                )
            }
            UpdateMetaByUsr => {
                let user = Self::user_name(self.user_index(rng, false));
                (
                    Session::controller(),
                    GdprQuery::UpdateMetadataByUser {
                        user,
                        update: MetadataUpdate::SetTtl(self.corpus.long_ttl),
                    },
                )
            }
            UpdateMetaSharing => {
                let user = Self::user_name(self.user_index(rng, false));
                let party = THIRD_PARTIES[rng.next_u64() as usize % THIRD_PARTIES.len()];
                (
                    Session::controller(),
                    GdprQuery::UpdateMetadataByUser {
                        user,
                        update: MetadataUpdate::Remove(MetadataField::Sharing, party.into()),
                    },
                )
            }

            // --- customer (zipf over users; key ops target own records) ---
            ReadDataByUsr => {
                let user = Self::user_name(self.user_index(rng, true));
                (
                    Session::customer(user.clone()),
                    GdprQuery::ReadDataByUser(user),
                )
            }
            ReadMetaByKey => {
                let user_idx = self.user_index(rng, true);
                let (_, key) = self.key_of_user(user_idx, rng);
                (
                    Session::customer(Self::user_name(user_idx)),
                    GdprQuery::ReadMetadataByKey(key),
                )
            }
            UpdateDataByKey => {
                let user_idx = self.user_index(rng, true);
                let (rec_idx, key) = self.key_of_user(user_idx, rng);
                (
                    Session::customer(Self::user_name(user_idx)),
                    GdprQuery::UpdateDataByKey {
                        key,
                        data: format!("rectified-{rec_idx:08}"),
                    },
                )
            }
            UpdateMetaByKey => {
                let user_idx = self.user_index(rng, true);
                let (_, key) = self.key_of_user(user_idx, rng);
                let purpose = self.pick_purpose(rng);
                (
                    Session::customer(Self::user_name(user_idx)),
                    GdprQuery::UpdateMetadataByKey {
                        key,
                        update: MetadataUpdate::Add(MetadataField::Objections, purpose.into()),
                    },
                )
            }
            DeleteByKey => {
                let user_idx = self.user_index(rng, true);
                let (_, key) = self.key_of_user(user_idx, rng);
                (
                    Session::customer(Self::user_name(user_idx)),
                    GdprQuery::DeleteByKey(key),
                )
            }

            // --- processor ---
            ReadDataByKey => {
                let idx = self.record_index(rng, true);
                let record = datagen::record_of(idx, &self.corpus);
                // A legitimate processor holds a purpose the record allows.
                let purpose = record
                    .metadata
                    .purposes
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "ads".into());
                (
                    Session::processor(purpose),
                    GdprQuery::ReadDataByKey(datagen::key_of(idx)),
                )
            }
            ReadDataByPur => {
                let purpose = self.pick_purpose(rng);
                (
                    Session::processor(purpose),
                    GdprQuery::ReadDataByPurpose(purpose.into()),
                )
            }
            ReadDataByObj => {
                let purpose = self.pick_purpose(rng);
                (
                    Session::processor(purpose),
                    GdprQuery::ReadDataNotObjecting(purpose.into()),
                )
            }
            ReadDataByDec => {
                let purpose = self.pick_purpose(rng);
                (
                    Session::processor(purpose),
                    GdprQuery::ReadDataDecisionEligible,
                )
            }

            // --- regulator ---
            ReadMetaByUsr => {
                let user = Self::user_name(self.user_index(rng, true));
                (Session::regulator(), GdprQuery::ReadMetadataByUser(user))
            }
            GetSystemLogs => {
                // Investigations look at bounded recent windows.
                let to_ms = u64::MAX;
                (
                    Session::regulator(),
                    GdprQuery::GetSystemLogs { from_ms: 0, to_ms },
                )
            }
            VerifyDeletion => {
                let idx = self.record_index(rng, true);
                (
                    Session::regulator(),
                    GdprQuery::VerifyDeletion(datagen::key_of(idx)),
                )
            }
        };
        (session.with_tenant(self.tenant.clone()), query)
    }
}

/// The user index of record `i` (mirrors [`datagen::user_of`]).
fn user_index_of(i: usize, config: &CorpusConfig) -> usize {
    let name = datagen::user_of(i, config);
    name.trim_start_matches("user").parse().unwrap_or(0)
}

/// Load the corpus into a connector (the benchmark Load phase).
pub fn load_corpus(
    connector: &dyn gdpr_core::GdprConnector,
    corpus: &CorpusConfig,
) -> Result<(), gdpr_core::GdprError> {
    load_corpus_as(connector, corpus, &TenantId::default())
}

/// Load the corpus under one tenant's controller — the multi-tenant Load
/// phase runs this once per tenant, giving each its own full corpus.
pub fn load_corpus_as(
    connector: &dyn gdpr_core::GdprConnector,
    corpus: &CorpusConfig,
    tenant: &TenantId,
) -> Result<(), gdpr_core::GdprError> {
    let controller = Session::controller().with_tenant(tenant.clone());
    for i in 0..corpus.records {
        let record = datagen::record_of(i, corpus);
        connector.execute(&controller, &GdprQuery::CreateRecord(record))?;
    }
    Ok(())
}

/// Load the corpus into a store that may already hold (part of) it —
/// the remote-server case, where state outlives the client and a
/// re-run's load phase must top up rather than fail. Key collisions are
/// skipped; every other error still aborts. Returns how many records
/// were actually created.
pub fn load_corpus_tolerant(
    connector: &dyn gdpr_core::GdprConnector,
    corpus: &CorpusConfig,
) -> Result<usize, gdpr_core::GdprError> {
    load_corpus_tolerant_as(connector, corpus, &TenantId::default())
}

/// [`load_corpus_tolerant`] under one tenant's controller.
pub fn load_corpus_tolerant_as(
    connector: &dyn gdpr_core::GdprConnector,
    corpus: &CorpusConfig,
    tenant: &TenantId,
) -> Result<usize, gdpr_core::GdprError> {
    let controller = Session::controller().with_tenant(tenant.clone());
    let mut created = 0;
    for i in 0..corpus.records {
        let record = datagen::record_of(i, corpus);
        match connector.execute(&controller, &GdprQuery::CreateRecord(record)) {
            Ok(_) => created += 1,
            Err(gdpr_core::GdprError::AlreadyExists(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(created)
}

/// A corpus whose records never expire mid-benchmark (long TTLs), for
/// workload runs where expiry-induced churn would confound completion time.
pub fn stable_corpus(records: usize) -> CorpusConfig {
    CorpusConfig {
        records,
        // Few records per subject, so user-scoped deletes stay bounded and
        // the corpus holds its size across a controller run.
        users: (records / 3).max(1),
        short_ttl: Duration::from_secs(3_600),
        long_ttl: Duration::from_secs(30 * 24 * 3_600),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::role::Role;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ops(kind: GdprWorkloadKind, n: usize) -> Vec<(Session, GdprQuery)> {
        let corpus = stable_corpus(500);
        let counter = Arc::new(AtomicU64::new(corpus.records as u64));
        let mut w = GdprWorkload::new(kind, corpus, counter);
        let mut rng = SmallRng::seed_from_u64(3);
        (0..n).map(|_| w.next_op(&mut rng)).collect()
    }

    fn fraction(ops: &[(Session, GdprQuery)], name: &str) -> f64 {
        ops.iter().filter(|(_, q)| q.name() == name).count() as f64 / ops.len() as f64
    }

    #[test]
    fn controller_mix_matches_table2a() {
        let ops = ops(GdprWorkloadKind::Controller, 20_000);
        assert!(ops.iter().all(|(s, _)| s.role == Role::Controller));
        let create = fraction(&ops, "create-record");
        assert!((0.23..0.27).contains(&create), "create {create}");
        let deletes = fraction(&ops, "delete-record-by-pur")
            + fraction(&ops, "delete-record-by-ttl")
            + fraction(&ops, "delete-record-by-usr");
        assert!((0.23..0.27).contains(&deletes), "deletes {deletes}");
        let updates =
            fraction(&ops, "update-metadata-by-pur") + fraction(&ops, "update-metadata-by-usr");
        assert!((0.48..0.52).contains(&updates), "updates {updates}");
    }

    #[test]
    fn customer_mix_is_five_way_even() {
        let ops = ops(GdprWorkloadKind::Customer, 20_000);
        assert!(ops.iter().all(|(s, _)| s.role == Role::Customer));
        for name in [
            "read-data-by-usr",
            "read-metadata-by-key",
            "update-data-by-key",
            "update-metadata-by-key",
            "delete-record-by-key",
        ] {
            let f = fraction(&ops, name);
            assert!((0.17..0.23).contains(&f), "{name} {f}");
        }
    }

    #[test]
    fn customer_sessions_own_their_keys() {
        // Key-scoped customer ops must target the session user's own records
        // whenever that user holds any (otherwise the ACL would deny and the
        // workload would measure only failures). Users holding no records —
        // possible since the corpus hashes records onto users — fall back to
        // an arbitrary key, whose denial both store and oracle predict.
        let corpus = stable_corpus(500);
        let mut owners: std::collections::HashSet<String> = Default::default();
        for i in 0..corpus.records {
            owners.insert(datagen::user_of(i, &corpus));
        }
        let mut owned_ops = 0;
        for (session, query) in ops(GdprWorkloadKind::Customer, 2000) {
            if let GdprQuery::ReadMetadataByKey(key) = query {
                let user = session.user.as_deref().unwrap();
                if owners.contains(user) {
                    let idx = usize::from_str_radix(key.trim_start_matches("ph-"), 16).unwrap();
                    assert_eq!(datagen::user_of(idx, &corpus), user);
                    owned_ops += 1;
                }
            }
        }
        assert!(owned_ops > 100, "ownership path must dominate: {owned_ops}");
    }

    #[test]
    fn processor_mix_is_read_heavy() {
        let ops = ops(GdprWorkloadKind::Processor, 20_000);
        assert!(ops.iter().all(|(s, _)| s.role == Role::Processor));
        assert!(ops
            .iter()
            .all(|(_, q)| !q.is_write() || q.name() == "update-metadata-by-key"));
        let by_key = fraction(&ops, "read-data-by-key");
        assert!((0.77..0.83).contains(&by_key), "by-key {by_key}");
    }

    #[test]
    fn regulator_mix_matches_edpb_report() {
        let ops = ops(GdprWorkloadKind::Regulator, 20_000);
        assert!(ops.iter().all(|(s, _)| s.role == Role::Regulator));
        let meta = fraction(&ops, "read-metadata-by-usr");
        let logs = fraction(&ops, "get-system-logs");
        let verify = fraction(&ops, "verify-deletion");
        assert!((0.43..0.49).contains(&meta), "meta {meta}");
        assert!((0.28..0.34).contains(&logs), "logs {logs}");
        assert!((0.20..0.26).contains(&verify), "verify {verify}");
    }

    #[test]
    fn controller_creates_use_fresh_keys() {
        let creates: Vec<String> = ops(GdprWorkloadKind::Controller, 5000)
            .into_iter()
            .filter_map(|(_, q)| match q {
                GdprQuery::CreateRecord(r) => Some(r.key),
                _ => None,
            })
            .collect();
        let unique: std::collections::HashSet<_> = creates.iter().collect();
        assert_eq!(unique.len(), creates.len());
        // All beyond the preloaded range.
        for key in &creates {
            let idx = usize::from_str_radix(key.trim_start_matches("ph-"), 16).unwrap();
            assert!(idx >= 500);
        }
    }

    #[test]
    fn tenant_rides_on_every_generated_session() {
        let corpus = stable_corpus(200);
        let tenant = TenantId::new("acme").unwrap();
        for kind in GdprWorkloadKind::ALL {
            let counter = Arc::new(AtomicU64::new(corpus.records as u64));
            let mut w =
                GdprWorkload::new(kind, corpus.clone(), counter).with_tenant(tenant.clone());
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..200 {
                let (session, _) = w.next_op(&mut rng);
                assert_eq!(session.tenant, tenant);
            }
        }
        // And the default stays the degenerate single-tenant case.
        let counter = Arc::new(AtomicU64::new(corpus.records as u64));
        let mut w = GdprWorkload::new(GdprWorkloadKind::Customer, corpus, counter);
        let mut rng = SmallRng::seed_from_u64(11);
        let (session, _) = w.next_op(&mut rng);
        assert!(session.tenant.is_default());
    }

    #[test]
    fn zipf_skew_ranks_purposes_and_keeps_keys_in_range() {
        let corpus = stable_corpus(500);
        let counter = Arc::new(AtomicU64::new(corpus.records as u64));
        let mut w =
            GdprWorkload::new(GdprWorkloadKind::Processor, corpus, counter).with_zipf_theta(1.2);
        let mut rng = SmallRng::seed_from_u64(23);
        let mut purpose_picks = 0usize;
        let mut hottest = 0usize;
        for _ in 0..20_000 {
            let (_, query) = w.next_op(&mut rng);
            if let GdprQuery::ReadDataByPurpose(p) = &query {
                purpose_picks += 1;
                if p == PURPOSES[0] {
                    hottest += 1;
                }
            }
            if let GdprQuery::ReadDataByKey(key) = &query {
                let idx = usize::from_str_radix(key.trim_start_matches("ph-"), 16).unwrap();
                assert!(idx < 500, "skewed pick out of corpus range: {idx}");
            }
        }
        // Under uniform picking each purpose gets ~1/|PURPOSES| of the
        // draws; zipf(1.2) concentrates ~40% on rank 0.
        assert!(purpose_picks > 200, "too few purpose ops: {purpose_picks}");
        let head = hottest as f64 / purpose_picks as f64;
        assert!(
            head > 2.0 / PURPOSES.len() as f64,
            "purpose skew too weak: {head}"
        );
    }

    #[test]
    fn load_corpus_populates_connector() {
        let conn = connectors::RedisConnector::new(
            kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
        );
        let corpus = stable_corpus(100);
        load_corpus(&conn, &corpus).unwrap();
        assert_eq!(gdpr_core::GdprConnector::record_count(&conn), 100);
    }
}
