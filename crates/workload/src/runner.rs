//! The runtime engine: threads, timing, and the three GDPRbench metrics
//! (correctness, completion time, space overhead).

use crate::gdpr::{GdprWorkload, GdprWorkloadKind};
use crate::oracle::{responses_match, Oracle};
use crate::stats::OpStats;
use crate::ycsb::{apply_op, KvInterface, YcsbConfig, YcsbWorkload};
use gdpr_core::connector::SpaceReport;
use gdpr_core::telemetry::{AtomicHistogram, HistogramSnapshot};
use gdpr_core::tenant::TenantId;
use gdpr_core::GdprConnector;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbRunReport {
    pub workload: &'static str,
    pub operations: u64,
    pub errors: u64,
    pub completion: Duration,
    pub stats: OpStats,
}

impl YcsbRunReport {
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.completion.is_zero() {
            return 0.0;
        }
        self.operations as f64 / self.completion.as_secs_f64()
    }
}

/// Run one YCSB workload: `ops` operations over `threads` client threads
/// against a preloaded store of `record_count` records.
pub fn run_ycsb_workload(
    store: Arc<dyn KvInterface>,
    config: YcsbConfig,
    record_count: u64,
    ops: u64,
    threads: usize,
) -> YcsbRunReport {
    let insert_counter = Arc::new(AtomicU64::new(record_count));
    let per_thread = ops / threads as u64;
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(&store);
        let config = config.clone();
        let counter = Arc::clone(&insert_counter);
        handles.push(std::thread::spawn(move || {
            let mut workload = YcsbWorkload::new(config, record_count, counter);
            let mut rng = SmallRng::seed_from_u64(0xBEEF ^ t as u64);
            let mut stats = OpStats::default();
            for _ in 0..per_thread {
                let op = workload.next_op(&mut rng);
                let op_start = Instant::now();
                match apply_op(store.as_ref(), &op) {
                    Ok(()) => stats.record_ok(op_start.elapsed()),
                    Err(_) => stats.record_error(op_start.elapsed()),
                }
            }
            stats
        }));
    }
    let mut stats = OpStats::default();
    for h in handles {
        stats.merge(&h.join().expect("client thread panicked"));
    }
    let completion = start.elapsed();
    YcsbRunReport {
        workload: config.name,
        operations: stats.total(),
        errors: stats.errors,
        completion,
        stats,
    }
}

/// Result of a GDPRbench workload run: the §4.2.3 metrics.
#[derive(Debug, Clone)]
pub struct GdprRunReport {
    pub workload: &'static str,
    pub connector: String,
    pub operations: u64,
    pub errors: u64,
    /// Completion time — the paper's headline metric for GDPR workloads.
    pub completion: Duration,
    /// Fraction of responses matching the oracle (None if correctness
    /// checking was off, e.g. multi-threaded runs).
    pub correctness: Option<f64>,
    /// Space overhead after the run.
    pub space: SpaceReport,
    /// Per query-class stats.
    pub per_query: HashMap<&'static str, OpStats>,
}

impl GdprRunReport {
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.completion.is_zero() {
            return 0.0;
        }
        self.operations as f64 / self.completion.as_secs_f64()
    }
}

/// Per-run knobs beyond the workload kind: tenancy and key skew.
#[derive(Debug, Clone, Default)]
pub struct GdprRunOptions {
    /// Tenants to spread client threads across round-robin (thread `t`
    /// runs as `tenants[t % len]`). Empty = the default single tenant.
    pub tenants: Vec<TenantId>,
    /// Zipf theta override for record/user/purpose picks (`--skew
    /// zipf:THETA`); `None` keeps the Table 2a default distributions.
    pub zipf_theta: Option<f64>,
}

impl GdprRunOptions {
    fn tenant_of(&self, thread: usize) -> TenantId {
        if self.tenants.is_empty() {
            TenantId::default()
        } else {
            self.tenants[thread % self.tenants.len()].clone()
        }
    }

    fn workload(
        &self,
        kind: GdprWorkloadKind,
        corpus: crate::datagen::CorpusConfig,
        counter: Arc<AtomicU64>,
        thread: usize,
    ) -> GdprWorkload {
        let mut w = GdprWorkload::new(kind, corpus, counter).with_tenant(self.tenant_of(thread));
        if let Some(theta) = self.zipf_theta {
            w = w.with_zipf_theta(theta);
        }
        w
    }
}

/// Run one GDPRbench workload against a connector.
///
/// With `check_correctness` the run is forced single-threaded and every
/// response is compared against the oracle in lock-step, yielding the
/// benchmark's correctness percentage; otherwise `threads` clients run
/// concurrently and only completion time / error counts are collected.
pub fn run_gdpr_workload(
    connector: Arc<dyn GdprConnector>,
    kind: GdprWorkloadKind,
    corpus: crate::datagen::CorpusConfig,
    ops: u64,
    threads: usize,
    check_correctness: bool,
) -> GdprRunReport {
    run_gdpr_workload_with(
        connector,
        kind,
        corpus,
        ops,
        threads,
        check_correctness,
        GdprRunOptions::default(),
    )
}

/// [`run_gdpr_workload`] with tenancy/skew options. Correctness checking
/// runs the whole stream under `tenants[0]` (the oracle models one
/// tenant's view, which tenant namespacing leaves unchanged).
pub fn run_gdpr_workload_with(
    connector: Arc<dyn GdprConnector>,
    kind: GdprWorkloadKind,
    corpus: crate::datagen::CorpusConfig,
    ops: u64,
    threads: usize,
    check_correctness: bool,
    options: GdprRunOptions,
) -> GdprRunReport {
    let create_counter = Arc::new(AtomicU64::new(corpus.records as u64));

    if check_correctness {
        let mut oracle = Oracle::new();
        oracle.load((0..corpus.records).map(|i| crate::datagen::record_of(i, &corpus)));
        let mut workload = options.workload(kind, corpus.clone(), create_counter, 0);
        let mut rng = SmallRng::seed_from_u64(0xFACE);
        let mut per_query: HashMap<&'static str, OpStats> = HashMap::new();
        let mut matches = 0u64;
        let start = Instant::now();
        for _ in 0..ops {
            let (session, query) = workload.next_op(&mut rng);
            let op_start = Instant::now();
            let actual = connector.execute(&session, &query);
            let elapsed = op_start.elapsed();
            let expected = oracle.apply(&session, &query);
            if responses_match(&query, &expected, &actual) {
                matches += 1;
            }
            let stats = per_query.entry(query.name()).or_default();
            match &actual {
                Ok(_) => stats.record_ok(elapsed),
                Err(_) => stats.record_error(elapsed),
            }
        }
        let completion = start.elapsed();
        let (operations, errors) = totals(&per_query);
        GdprRunReport {
            workload: kind.name(),
            connector: connector.name().to_string(),
            operations,
            errors,
            completion,
            correctness: Some(matches as f64 / ops.max(1) as f64),
            space: connector.space_report(),
            per_query,
        }
    } else {
        let per_thread = ops / threads as u64;
        let start = Instant::now();
        let mut handles = Vec::new();
        for t in 0..threads {
            let connector = Arc::clone(&connector);
            let corpus = corpus.clone();
            let counter = Arc::clone(&create_counter);
            let options = options.clone();
            handles.push(std::thread::spawn(move || {
                let mut workload = options.workload(kind, corpus, counter, t);
                let mut rng = SmallRng::seed_from_u64(0xFACE ^ t as u64);
                let mut per_query: HashMap<&'static str, OpStats> = HashMap::new();
                for _ in 0..per_thread {
                    let (session, query) = workload.next_op(&mut rng);
                    let op_start = Instant::now();
                    let result = connector.execute(&session, &query);
                    let elapsed = op_start.elapsed();
                    let stats = per_query.entry(query.name()).or_default();
                    match result {
                        Ok(_) => stats.record_ok(elapsed),
                        Err(_) => stats.record_error(elapsed),
                    }
                }
                per_query
            }));
        }
        let mut per_query: HashMap<&'static str, OpStats> = HashMap::new();
        for h in handles {
            for (name, stats) in h.join().expect("client thread panicked") {
                per_query.entry(name).or_default().merge(&stats);
            }
        }
        let completion = start.elapsed();
        let (operations, errors) = totals(&per_query);
        GdprRunReport {
            workload: kind.name(),
            connector: connector.name().to_string(),
            operations,
            errors,
            completion,
            correctness: None,
            space: connector.space_report(),
            per_query,
        }
    }
}

/// Result of an open-loop run: latency measured against the arrival
/// schedule, so the percentiles are immune to coordinated omission.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    pub workload: &'static str,
    pub connector: String,
    /// The offered rate (ops/sec across all sender threads).
    pub arrival_rate: f64,
    pub operations: u64,
    pub errors: u64,
    /// First intended send → last response.
    pub completion: Duration,
    /// Per-op latency from the op's *intended* send time (the fixed
    /// schedule), not from when the sender actually got around to it.
    pub latency: HistogramSnapshot,
    /// Ops whose intended send time had already passed when the sender
    /// reached them (the system is not keeping up with the offered rate;
    /// their schedule-relative latencies still count — that is the point).
    pub late_sends: u64,
}

impl OpenLoopReport {
    /// The rate actually sustained (≤ the offered rate when saturated).
    pub fn achieved_ops_per_sec(&self) -> f64 {
        if self.completion.is_zero() {
            return 0.0;
        }
        self.operations as f64 / self.completion.as_secs_f64()
    }
}

/// Run one GDPRbench workload *open-loop*: op `i` is due at
/// `start + i / arrival_rate`, senders sleep until each op's due time and
/// never adjust the schedule to the system's pace. Latency is measured
/// from the intended send time, so when the system falls behind, the
/// waiting time counts against it — a closed-loop driver would silently
/// stop offering load exactly when the system is slow (coordinated
/// omission), making p99/p999 look far better than any real arrival
/// process would experience.
///
/// The global schedule is interleaved across `threads` senders (thread
/// `t` owns ops `t, t+threads, ...`), so one slow response delays only
/// that sender's share of the schedule; with enough threads the offered
/// rate holds through per-op stalls.
pub fn run_gdpr_workload_open_loop(
    connector: Arc<dyn GdprConnector>,
    kind: GdprWorkloadKind,
    corpus: crate::datagen::CorpusConfig,
    ops: u64,
    threads: usize,
    arrival_rate: f64,
) -> OpenLoopReport {
    run_gdpr_workload_open_loop_with(
        connector,
        kind,
        corpus,
        ops,
        threads,
        arrival_rate,
        GdprRunOptions::default(),
    )
}

/// [`run_gdpr_workload_open_loop`] with tenancy/skew options (sender `t`
/// runs as `tenants[t % len]`, so the offered load interleaves tenants).
pub fn run_gdpr_workload_open_loop_with(
    connector: Arc<dyn GdprConnector>,
    kind: GdprWorkloadKind,
    corpus: crate::datagen::CorpusConfig,
    ops: u64,
    threads: usize,
    arrival_rate: f64,
    options: GdprRunOptions,
) -> OpenLoopReport {
    let threads = threads.max(1);
    let arrival_rate = arrival_rate.max(1e-6);
    let create_counter = Arc::new(AtomicU64::new(corpus.records as u64));
    let interval = Duration::from_secs_f64(1.0 / arrival_rate);
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let connector = Arc::clone(&connector);
        let corpus = corpus.clone();
        let counter = Arc::clone(&create_counter);
        let options = options.clone();
        handles.push(std::thread::spawn(move || {
            let mut workload = options.workload(kind, corpus, counter, t);
            let mut rng = SmallRng::seed_from_u64(0xFACE ^ t as u64);
            let latency = AtomicHistogram::new();
            let mut errors = 0u64;
            let mut late_sends = 0u64;
            let mut sent = 0u64;
            let mut i = t as u64;
            while i < ops {
                let (session, query) = workload.next_op(&mut rng);
                let due = interval.mul_f64(i as f64);
                let intended = start + due;
                let now = Instant::now();
                if now < intended {
                    std::thread::sleep(intended - now);
                } else if now > intended {
                    late_sends += 1;
                }
                let result = connector.execute(&session, &query);
                // From the schedule, not from the actual send: queueing
                // behind a slow system is charged to the system.
                latency.record(intended.elapsed());
                if result.is_err() {
                    errors += 1;
                }
                sent += 1;
                i += threads as u64;
            }
            (latency.snapshot(), errors, late_sends, sent)
        }));
    }
    let mut latency = HistogramSnapshot::default();
    let mut errors = 0u64;
    let mut late_sends = 0u64;
    let mut operations = 0u64;
    for h in handles {
        let (snap, errs, late, sent) = h.join().expect("open-loop sender panicked");
        latency.merge(&snap);
        errors += errs;
        late_sends += late;
        operations += sent;
    }
    OpenLoopReport {
        workload: kind.name(),
        connector: connector.name().to_string(),
        arrival_rate,
        operations,
        errors,
        completion: start.elapsed(),
        latency,
        late_sends,
    }
}

fn totals(per_query: &HashMap<&'static str, OpStats>) -> (u64, u64) {
    let operations = per_query.values().map(OpStats::total).sum();
    let errors = per_query.values().map(|s| s.errors).sum();
    (operations, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ycsb_value;
    use crate::gdpr::{load_corpus, stable_corpus};
    use crate::ycsb::{ycsb_key, KvStoreYcsb, RelStoreYcsb};

    fn loaded_kv(n: u64) -> Arc<dyn KvInterface> {
        let adapter =
            KvStoreYcsb::new(kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap());
        for i in 0..n {
            adapter.insert(&ycsb_key(i), &ycsb_value(i, 100)).unwrap();
        }
        Arc::new(adapter)
    }

    #[test]
    fn ycsb_run_completes_with_no_errors() {
        let store = loaded_kv(200);
        let report = run_ycsb_workload(store, YcsbConfig::workload('A'), 200, 1000, 4);
        assert_eq!(report.operations, 1000);
        assert_eq!(report.errors, 0);
        assert!(report.throughput_ops_per_sec() > 0.0);
    }

    #[test]
    fn ycsb_all_workloads_run_on_both_stores() {
        for config in YcsbConfig::all() {
            let kv = loaded_kv(100);
            let report = run_ycsb_workload(kv, config.clone(), 100, 200, 2);
            assert_eq!(report.errors, 0, "kv errors in workload {}", config.name);

            let rel = RelStoreYcsb::new(
                relstore::Database::open(relstore::RelConfig::default()).unwrap(),
            )
            .unwrap();
            for i in 0..100 {
                rel.insert(&ycsb_key(i), &ycsb_value(i, 100)).unwrap();
            }
            let report = run_ycsb_workload(Arc::new(rel), config.clone(), 100, 200, 2);
            assert_eq!(report.errors, 0, "rel errors in workload {}", config.name);
        }
    }

    #[test]
    fn gdpr_run_with_correctness_scores_high() {
        // A fresh connector per workload: the oracle is loaded with the
        // pristine corpus, so the store must start pristine too.
        let corpus = stable_corpus(300);
        for kind in GdprWorkloadKind::ALL {
            let conn = Arc::new(connectors::RedisConnector::new(
                kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
            ));
            load_corpus(conn.as_ref(), &corpus).unwrap();
            let report = run_gdpr_workload(
                conn as Arc<dyn GdprConnector>,
                kind,
                corpus.clone(),
                200,
                1,
                true,
            );
            let correctness = report.correctness.unwrap();
            assert!(
                correctness > 0.99,
                "{} correctness {correctness} on redis: {:?}",
                kind.name(),
                report
                    .per_query
                    .iter()
                    .map(|(k, v)| (*k, v.ok, v.errors))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn open_loop_run_follows_the_schedule_and_measures_from_it() {
        let conn = Arc::new(connectors::RedisConnector::new(
            kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
        ));
        let corpus = stable_corpus(100);
        load_corpus(conn.as_ref(), &corpus).unwrap();
        // 200 ops at 2000/s over 2 senders: the schedule spans ~100ms and
        // a local engine keeps up easily.
        let report = run_gdpr_workload_open_loop(
            conn as Arc<dyn GdprConnector>,
            GdprWorkloadKind::Customer,
            corpus,
            200,
            2,
            2000.0,
        );
        assert_eq!(report.operations, 200);
        assert_eq!(report.latency.count, 200);
        // The run cannot finish before the last op's due time.
        assert!(report.completion >= Duration::from_millis(90), "{report:?}");
        // Percentiles come out monotone and populated.
        let p50 = report.latency.p50_ns();
        let p99 = report.latency.p99_ns();
        let p999 = report.latency.p999_ns();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(report.achieved_ops_per_sec() > 0.0);
    }

    #[test]
    fn open_loop_charges_stall_time_to_the_schedule() {
        use gdpr_core::compliance::FeatureReport;
        use gdpr_core::{GdprError, GdprQuery, GdprResponse, Session};

        /// A connector that stalls every op — the pathological case where
        /// closed-loop drivers under-report: with a 5ms stall per op on
        /// one sender, ops due while a stall is in progress must see the
        /// stall in their measured latency.
        struct SlowConnector;
        impl GdprConnector for SlowConnector {
            fn execute(
                &self,
                _session: &Session,
                _query: &GdprQuery,
            ) -> gdpr_core::error::GdprResult<GdprResponse> {
                std::thread::sleep(Duration::from_millis(5));
                Err(GdprError::NotFound("slow".to_string()))
            }
            fn features(&self) -> FeatureReport {
                FeatureReport::default()
            }
            fn space_report(&self) -> SpaceReport {
                SpaceReport::default()
            }
            fn record_count(&self) -> usize {
                0
            }
            fn name(&self) -> &str {
                "slow"
            }
        }

        // 40 ops offered at 1000/s (1ms apart) on 1 sender, served at
        // ~5ms each: the backlog grows ~4ms per op, so late ops must be
        // charged tens of milliseconds even though each service time is
        // only 5ms. A closed-loop driver would report ~5ms for every op.
        let report = run_gdpr_workload_open_loop(
            Arc::new(SlowConnector),
            GdprWorkloadKind::Customer,
            stable_corpus(10),
            40,
            1,
            1000.0,
        );
        assert_eq!(report.operations, 40);
        assert!(report.late_sends > 0, "{report:?}");
        let p999 = Duration::from_nanos(report.latency.p999_ns());
        assert!(
            p999 >= Duration::from_millis(50),
            "p999 {p999:?} should include schedule backlog, not just 5ms service time"
        );
    }

    #[test]
    fn gdpr_run_spreads_threads_across_tenants() {
        let conn = Arc::new(connectors::RedisConnector::new(
            kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
        ));
        let tenants: Vec<TenantId> = ["t0", "t1"]
            .iter()
            .map(|t| TenantId::new(*t).unwrap())
            .collect();
        let corpus = stable_corpus(100);
        for t in &tenants {
            crate::gdpr::load_corpus_as(conn.as_ref(), &corpus, t).unwrap();
        }
        let report = run_gdpr_workload_with(
            Arc::clone(&conn) as Arc<dyn GdprConnector>,
            GdprWorkloadKind::Customer,
            corpus,
            200,
            4,
            false,
            GdprRunOptions {
                tenants: tenants.clone(),
                zipf_theta: Some(0.99),
            },
        );
        assert_eq!(report.operations, 200);
        // Both tenants took traffic and show up in the per-tenant metrics.
        let seen: Vec<String> = conn
            .tenant_telemetry()
            .into_iter()
            .filter(|(_, snap)| snap.total_ops() > 0)
            .map(|(t, _)| t)
            .collect();
        for t in &tenants {
            assert!(
                seen.contains(&t.name().to_string()),
                "missing {t:?} in {seen:?}"
            );
        }
    }

    #[test]
    fn gdpr_run_multithreaded_has_no_store_errors() {
        let conn = Arc::new(
            connectors::PostgresConnector::new(
                relstore::Database::open(relstore::RelConfig::default()).unwrap(),
            )
            .unwrap(),
        );
        let corpus = stable_corpus(300);
        load_corpus(conn.as_ref(), &corpus).unwrap();
        let report = run_gdpr_workload(
            conn as Arc<dyn GdprConnector>,
            GdprWorkloadKind::Customer,
            corpus,
            400,
            4,
            false,
        );
        assert!(report.correctness.is_none());
        // Deletes race with reads in the customer workload, so NotFound
        // errors are legitimate; store-level failures are not, and error
        // rates should stay a small fraction.
        assert!(
            (report.errors as f64) < report.operations as f64 * 0.5,
            "too many errors: {report:?}"
        );
        assert!(report.space.personal_data_bytes > 0);
    }
}
