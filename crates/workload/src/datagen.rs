//! Deterministic personal-record corpus generation.
//!
//! The benchmark needs a reproducible universe of records whose metadata is
//! drawn from realistic vocabularies: a purpose catalogue, a user
//! population with a configurable records-per-user ratio, TTL mixes, some
//! third-party sharing and origins. Generation is a pure function of the
//! record index, so loader threads and the correctness oracle agree on the
//! corpus without coordination.

use gdpr_core::record::{Metadata, PersonalRecord};
use std::time::Duration;

/// The purpose vocabulary (kept small, as real controllers declare a
/// handful of processing purposes).
pub const PURPOSES: &[&str] = &[
    "ads",
    "2fa",
    "analytics",
    "backup",
    "billing",
    "fraud-detection",
    "personalization",
    "research",
];

/// Sources a record may have been procured from.
pub const SOURCES: &[&str] = &["first-party", "partner", "public-records", "data-broker"];

/// Third parties records may have been shared with.
pub const THIRD_PARTIES: &[&str] = &["x-corp", "y-labs", "z-inc"];

/// Records per purpose *cohort*. Besides the shared vocabulary purposes,
/// every record carries one narrow cohort purpose (`cohort-000042`) shared
/// with only [`COHORT_SIZE`] neighbours. Group operations that must stay
/// bounded — the controller's `delete-record-by-pur` for a *completed*
/// purpose (G5.1b) — target cohorts, keeping the corpus in the steady state
/// the paper postulates (creates ≈ deletions); scan-the-world purposes
/// would otherwise drain the whole store in a handful of operations.
pub const COHORT_SIZE: usize = 4;

/// The cohort purpose of record `i`.
pub fn cohort_purpose_of(i: usize) -> String {
    format!("cohort-{:06}", i / COHORT_SIZE)
}

/// Corpus shape parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Total records to generate.
    pub records: usize,
    /// Distinct data subjects. The paper's customer workload follows a Zipf
    /// distribution over users; more records than users means multi-record
    /// subjects.
    pub users: usize,
    /// Length of the personal-data payload.
    pub data_len: usize,
    /// TTL assigned to "short-lived" records.
    pub short_ttl: Duration,
    /// TTL assigned to everything else.
    pub long_ttl: Duration,
    /// Fraction of records with the short TTL (Figure 3a uses 20%).
    pub short_ttl_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            records: 1000,
            users: 100,
            data_len: 10, // Table 3: 10-byte personal data per record
            short_ttl: Duration::from_secs(5 * 60), // 5 minutes
            long_ttl: Duration::from_secs(5 * 24 * 3600), // 5 days
            short_ttl_fraction: 0.2,
        }
    }
}

/// Deterministic per-index mixing (SplitMix64) so corpus generation is a
/// pure function of the index.
fn mix(i: u64, salt: u64) -> u64 {
    let mut z = i
        .wrapping_add(salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The key of record `i`.
pub fn key_of(i: usize) -> String {
    format!("ph-{i:08x}")
}

/// The user id of record `i`'s subject.
pub fn user_of(i: usize, config: &CorpusConfig) -> String {
    format!("user{:06}", mix(i as u64, 1) as usize % config.users)
}

/// Generate record `i` of the corpus.
pub fn record_of(i: usize, config: &CorpusConfig) -> PersonalRecord {
    let h = mix(i as u64, 2);
    // 1-3 purposes per record.
    let purpose_count = 1 + (h % 3) as usize;
    let mut purposes = Vec::with_capacity(purpose_count);
    for p in 0..purpose_count {
        let purpose = PURPOSES[(mix(i as u64, 3 + p as u64) as usize) % PURPOSES.len()];
        if !purposes.iter().any(|x: &String| x == purpose) {
            purposes.push(purpose.to_string());
        }
    }
    purposes.push(cohort_purpose_of(i));
    let ttl = if (h % 1000) as f64 / 1000.0 < config.short_ttl_fraction {
        config.short_ttl
    } else {
        config.long_ttl
    };
    let mut metadata = Metadata::new(user_of(i, config), purposes, ttl);
    // ~10% of records were shared with a third party, ~5% objected to their
    // first purpose, ~25% came from somewhere other than first-party.
    if h.is_multiple_of(10) {
        metadata
            .sharing
            .push(THIRD_PARTIES[(h / 16) as usize % THIRD_PARTIES.len()].to_string());
    }
    if h % 20 == 1 {
        let objected = metadata.purposes[0].clone();
        metadata.objections.push(objected);
    }
    metadata.source = SOURCES[(mix(i as u64, 9) as usize) % SOURCES.len()].to_string();

    // Payload: digits derived from the index, padded to data_len — think
    // "123-456-7890".
    let mut data = format!("{:010}", mix(i as u64, 4) % 10_000_000_000);
    while data.len() < config.data_len {
        data.push(char::from(b'0' + (data.len() % 10) as u8));
    }
    data.truncate(config.data_len);

    PersonalRecord::new(key_of(i), data, metadata)
}

/// YCSB-style opaque value of `len` bytes, deterministic per (key, field).
pub fn ycsb_value(key_index: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = mix(key_index, 0x5943_5342);
    while out.len() < len {
        state = mix(state, 7);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = CorpusConfig::default();
        assert_eq!(record_of(42, &config), record_of(42, &config));
        assert_ne!(record_of(42, &config), record_of(43, &config));
    }

    #[test]
    fn keys_are_unique() {
        let keys: std::collections::HashSet<_> = (0..10_000).map(key_of).collect();
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn users_bounded_and_reused() {
        let config = CorpusConfig {
            users: 10,
            records: 1000,
            ..Default::default()
        };
        let users: std::collections::HashSet<_> = (0..1000).map(|i| user_of(i, &config)).collect();
        assert!(users.len() <= 10);
        assert!(
            users.len() >= 8,
            "most users should appear: {}",
            users.len()
        );
    }

    #[test]
    fn ttl_mix_matches_fraction() {
        let config = CorpusConfig {
            records: 10_000,
            ..Default::default()
        };
        let short = (0..10_000)
            .map(|i| record_of(i, &config))
            .filter(|r| r.metadata.ttl == Some(config.short_ttl))
            .count();
        let fraction = short as f64 / 10_000.0;
        assert!(
            (0.17..0.23).contains(&fraction),
            "short-TTL fraction {fraction}"
        );
    }

    #[test]
    fn records_parse_through_the_wire_format() {
        let config = CorpusConfig::default();
        for i in 0..500 {
            let record = record_of(i, &config);
            let wire = gdpr_core::wire::serialize(&record);
            let parsed = gdpr_core::wire::parse(&wire)
                .unwrap_or_else(|e| panic!("record {i} unparsable: {e}\n{wire}"));
            assert_eq!(parsed, record, "record {i} wire roundtrip");
        }
    }

    #[test]
    fn purposes_in_vocabulary_plus_one_cohort() {
        let config = CorpusConfig::default();
        for i in 0..500 {
            let r = record_of(i, &config);
            assert!(r.metadata.purposes.len() >= 2, "base purpose + cohort");
            let (cohorts, base): (Vec<_>, Vec<_>) = r
                .metadata
                .purposes
                .iter()
                .partition(|p| p.starts_with("cohort-"));
            assert_eq!(cohorts, vec![&cohort_purpose_of(i)]);
            for p in base {
                assert!(PURPOSES.contains(&p.as_str()));
            }
        }
    }

    #[test]
    fn cohorts_group_adjacent_records() {
        assert_eq!(cohort_purpose_of(0), cohort_purpose_of(3));
        assert_ne!(cohort_purpose_of(3), cohort_purpose_of(4));
    }

    #[test]
    fn data_len_respected() {
        let config = CorpusConfig {
            data_len: 100,
            ..Default::default()
        };
        assert_eq!(record_of(7, &config).data.len(), 100);
        let config = CorpusConfig {
            data_len: 10,
            ..Default::default()
        };
        assert_eq!(record_of(7, &config).data.len(), 10);
    }

    #[test]
    fn ycsb_values_deterministic_and_sized() {
        assert_eq!(ycsb_value(5, 100), ycsb_value(5, 100));
        assert_ne!(ycsb_value(5, 100), ycsb_value(6, 100));
        assert_eq!(ycsb_value(9, 37).len(), 37);
    }
}
