//! The correctness oracle (§4.2.3): a shadow model of the personal-data
//! store that computes the response every GDPR query *should* produce.
//!
//! The benchmark's correctness metric is the percentage of responses that
//! match the oracle's. The oracle is an independent, trivially-auditable
//! implementation over a hash map — it shares the ACL and metadata
//! semantics with `gdpr_core` but none of the storage machinery of the
//! connectors under test.

use gdpr_core::acl::{authorize, record_visible};
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::query::GdprQuery;
use gdpr_core::record::PersonalRecord;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use std::collections::BTreeMap;

/// The shadow model.
#[derive(Default)]
pub struct Oracle {
    records: BTreeMap<String, PersonalRecord>,
}

impl Oracle {
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Load the oracle with the same corpus the store was loaded with.
    pub fn load(&mut self, records: impl IntoIterator<Item = PersonalRecord>) {
        for r in records {
            self.records.insert(r.key.clone(), r);
        }
    }

    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Apply a query to the model, returning the expected response.
    pub fn apply(&mut self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        use GdprQuery::*;
        let decision = authorize(session, query)?;
        let visible = |r: &PersonalRecord| -> bool {
            !decision.requires_record_check || record_visible(session, r)
        };
        let denied = |r: &PersonalRecord, q: &GdprQuery| -> GdprError {
            let _ = r;
            GdprError::AccessDenied {
                role: session.role.name().to_string(),
                query: q.name().to_string(),
                reason: "record not visible to this session".to_string(),
            }
        };

        Ok(match query {
            CreateRecord(record) => {
                if self.records.contains_key(&record.key) {
                    return Err(GdprError::AlreadyExists(record.key.clone()));
                }
                self.records.insert(record.key.clone(), record.clone());
                GdprResponse::Created
            }
            DeleteByKey(key) => {
                let record = self
                    .records
                    .get(key)
                    .ok_or_else(|| GdprError::NotFound(key.clone()))?;
                if !visible(record) {
                    return Err(denied(record, query));
                }
                self.records.remove(key);
                GdprResponse::Deleted(1)
            }
            DeleteByPurpose(purpose) => {
                let before = self.records.len();
                self.records
                    .retain(|_, r| !r.metadata.purposes.iter().any(|p| p == purpose));
                GdprResponse::Deleted(before - self.records.len())
            }
            DeleteExpired => {
                // Expiry timing belongs to the store's clock domain; the
                // model does not track it. The comparator treats any count
                // as matching (see `responses_match`).
                GdprResponse::Deleted(0)
            }
            DeleteByUser(user) => {
                let before = self.records.len();
                self.records.retain(|_, r| r.metadata.user != *user);
                GdprResponse::Deleted(before - self.records.len())
            }
            ReadDataByKey(key) => {
                let record = self
                    .records
                    .get(key)
                    .ok_or_else(|| GdprError::NotFound(key.clone()))?;
                if !visible(record) {
                    return Err(denied(record, query));
                }
                GdprResponse::Data(vec![(record.key.clone(), record.data.clone())])
            }
            ReadDataByPurpose(purpose) => GdprResponse::Data(
                self.records
                    .values()
                    .filter(|r| r.metadata.allows_purpose(purpose))
                    .map(|r| (r.key.clone(), r.data.clone()))
                    .collect(),
            ),
            ReadDataByUser(user) => GdprResponse::Data(
                self.records
                    .values()
                    .filter(|r| r.metadata.user == *user)
                    .map(|r| (r.key.clone(), r.data.clone()))
                    .collect(),
            ),
            ReadDataNotObjecting(usage) => GdprResponse::Data(
                self.records
                    .values()
                    .filter(|r| !r.metadata.objections.iter().any(|o| o == usage))
                    .map(|r| (r.key.clone(), r.data.clone()))
                    .collect(),
            ),
            ReadDataDecisionEligible => GdprResponse::Data(
                self.records
                    .values()
                    .filter(|r| r.metadata.allows_automated_decisions())
                    .map(|r| (r.key.clone(), r.data.clone()))
                    .collect(),
            ),
            ReadMetadataByKey(key) => {
                let record = self
                    .records
                    .get(key)
                    .ok_or_else(|| GdprError::NotFound(key.clone()))?;
                if !visible(record) {
                    return Err(denied(record, query));
                }
                GdprResponse::Metadata(vec![(record.key.clone(), record.metadata.clone())])
            }
            ReadMetadataByUser(user) => GdprResponse::Metadata(
                self.records
                    .values()
                    .filter(|r| r.metadata.user == *user)
                    .map(|r| (r.key.clone(), r.metadata.clone()))
                    .collect(),
            ),
            ReadMetadataBySharedWith(party) => GdprResponse::Metadata(
                self.records
                    .values()
                    .filter(|r| r.metadata.sharing.iter().any(|s| s == party))
                    .map(|r| (r.key.clone(), r.metadata.clone()))
                    .collect(),
            ),
            UpdateDataByKey { key, data } => {
                let record = self
                    .records
                    .get_mut(key)
                    .ok_or_else(|| GdprError::NotFound(key.clone()))?;
                if decision.requires_record_check && !record_visible(session, record) {
                    return Err(GdprError::AccessDenied {
                        role: session.role.name().to_string(),
                        query: query.name().to_string(),
                        reason: "record not visible to this session".to_string(),
                    });
                }
                record.data = data.clone();
                GdprResponse::Updated(1)
            }
            UpdateMetadataByKey { key, update } => {
                let record = self
                    .records
                    .get_mut(key)
                    .ok_or_else(|| GdprError::NotFound(key.clone()))?;
                if decision.requires_record_check && !record_visible(session, record) {
                    return Err(GdprError::AccessDenied {
                        role: session.role.name().to_string(),
                        query: query.name().to_string(),
                        reason: "record not visible to this session".to_string(),
                    });
                }
                update.apply(&mut record.metadata)?;
                GdprResponse::Updated(1)
            }
            UpdateMetadataByPurpose { purpose, update } => {
                let mut n = 0;
                for record in self.records.values_mut() {
                    if record.metadata.purposes.iter().any(|p| p == purpose) {
                        update.apply(&mut record.metadata)?;
                        n += 1;
                    }
                }
                GdprResponse::Updated(n)
            }
            UpdateMetadataByUser { user, update } => {
                let mut n = 0;
                for record in self.records.values_mut() {
                    if record.metadata.user == *user {
                        update.apply(&mut record.metadata)?;
                        n += 1;
                    }
                }
                GdprResponse::Updated(n)
            }
            GetSystemLogs { .. } => GdprResponse::Logs(Vec::new()),
            GetSystemFeatures => GdprResponse::Features(Default::default()),
            VerifyDeletion(key) => GdprResponse::DeletionVerified(!self.records.contains_key(key)),
        })
    }
}

/// Compare a store response against the oracle's expectation.
///
/// List responses compare order-insensitively (stores return rows in
/// whatever order their access path yields). Queries whose results depend
/// on store-local state the model cannot see — expiry timing, log contents,
/// feature reports — are checked for *shape* only.
pub fn responses_match(
    query: &GdprQuery,
    expected: &GdprResult<GdprResponse>,
    actual: &GdprResult<GdprResponse>,
) -> bool {
    use GdprQuery::*;
    match (expected, actual) {
        (Err(e), Err(a)) => std::mem::discriminant(e) == std::mem::discriminant(a),
        (Ok(e), Ok(a)) => match query {
            DeleteExpired => matches!(a, GdprResponse::Deleted(_)),
            GetSystemLogs { .. } => matches!(a, GdprResponse::Logs(_)),
            GetSystemFeatures => matches!(a, GdprResponse::Features(_)),
            _ => match (e, a) {
                (GdprResponse::Data(e), GdprResponse::Data(a)) => {
                    let mut e = e.clone();
                    let mut a = a.clone();
                    e.sort();
                    a.sort();
                    e == a
                }
                (GdprResponse::Metadata(e), GdprResponse::Metadata(a)) => {
                    let mut e: Vec<_> = e
                        .iter()
                        .map(|(k, m)| (k.clone(), format!("{m:?}")))
                        .collect();
                    let mut a: Vec<_> = a
                        .iter()
                        .map(|(k, m)| (k.clone(), format!("{m:?}")))
                        .collect();
                    e.sort();
                    a.sort();
                    e == a
                }
                (GdprResponse::Records(e), GdprResponse::Records(a)) => {
                    let mut e = e.clone();
                    let mut a = a.clone();
                    e.sort_by(|x, y| x.key.cmp(&y.key));
                    a.sort_by(|x, y| x.key.cmp(&y.key));
                    e == a
                }
                (e, a) => e == a,
            },
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{record_of, CorpusConfig};

    fn oracle_with(n: usize) -> (Oracle, CorpusConfig) {
        let config = CorpusConfig {
            records: n,
            users: 10,
            ..Default::default()
        };
        let mut o = Oracle::new();
        o.load((0..n).map(|i| record_of(i, &config)));
        (o, config)
    }

    #[test]
    fn model_tracks_creates_and_deletes() {
        let (mut o, config) = oracle_with(50);
        assert_eq!(o.record_count(), 50);
        let controller = Session::controller();
        let fresh = record_of(1000, &config);
        o.apply(&controller, &GdprQuery::CreateRecord(fresh.clone()))
            .unwrap();
        assert_eq!(o.record_count(), 51);
        assert!(matches!(
            o.apply(&controller, &GdprQuery::CreateRecord(fresh)),
            Err(GdprError::AlreadyExists(_))
        ));
        let user = record_of(0, &config).metadata.user;
        let resp = o
            .apply(&controller, &GdprQuery::DeleteByUser(user.clone()))
            .unwrap();
        let GdprResponse::Deleted(n) = resp else {
            panic!()
        };
        assert!(n > 0);
    }

    #[test]
    fn oracle_agrees_with_both_connectors() {
        use gdpr_core::GdprConnector;
        let (mut o, config) = oracle_with(100);
        let redis = connectors::RedisConnector::new(
            kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
        );
        let pg = connectors::PostgresConnector::new(
            relstore::Database::open(relstore::RelConfig::default()).unwrap(),
        )
        .unwrap();
        crate::gdpr::load_corpus(&redis, &config).unwrap();
        crate::gdpr::load_corpus(&pg, &config).unwrap();

        let user = record_of(3, &config).metadata.user.clone();
        let key = record_of(7, &config).key.clone();
        let purpose = record_of(7, &config).metadata.purposes[0].clone();
        let queries: Vec<(Session, GdprQuery)> = vec![
            (
                Session::customer(user.clone()),
                GdprQuery::ReadDataByUser(user.clone()),
            ),
            (
                Session::regulator(),
                GdprQuery::ReadMetadataByUser(user.clone()),
            ),
            (
                Session::processor(purpose.clone()),
                GdprQuery::ReadDataByPurpose(purpose.clone()),
            ),
            (
                Session::processor("ads"),
                GdprQuery::ReadDataNotObjecting("ads".into()),
            ),
            (
                Session::processor("ads"),
                GdprQuery::ReadDataDecisionEligible,
            ),
            (Session::controller(), GdprQuery::DeleteByPurpose(purpose)),
            (Session::regulator(), GdprQuery::VerifyDeletion(key)),
            (Session::controller(), GdprQuery::DeleteByUser(user)),
        ];
        for (session, query) in queries {
            let expected = o.apply(&session, &query);
            let got_redis = redis.execute(&session, &query);
            let got_pg = pg.execute(&session, &query);
            assert!(
                responses_match(&query, &expected, &got_redis),
                "redis diverges on {}: {expected:?} vs {got_redis:?}",
                query.name()
            );
            assert!(
                responses_match(&query, &expected, &got_pg),
                "postgres diverges on {}: {expected:?} vs {got_pg:?}",
                query.name()
            );
        }
    }

    #[test]
    fn mismatches_are_detected() {
        let q = GdprQuery::ReadDataByUser("u".into());
        let a: GdprResult<GdprResponse> = Ok(GdprResponse::Data(vec![("k1".into(), "d1".into())]));
        let b: GdprResult<GdprResponse> = Ok(GdprResponse::Data(vec![]));
        assert!(!responses_match(&q, &a, &b));
        // Order-insensitive equality.
        let c: GdprResult<GdprResponse> = Ok(GdprResponse::Data(vec![
            ("k1".into(), "d1".into()),
            ("k2".into(), "d2".into()),
        ]));
        let d: GdprResult<GdprResponse> = Ok(GdprResponse::Data(vec![
            ("k2".into(), "d2".into()),
            ("k1".into(), "d1".into()),
        ]));
        assert!(responses_match(&q, &c, &d));
        // Same error kind matches.
        let e: GdprResult<GdprResponse> = Err(GdprError::NotFound("x".into()));
        let f: GdprResult<GdprResponse> = Err(GdprError::NotFound("x".into()));
        assert!(responses_match(&q, &e, &f));
        let g: GdprResult<GdprResponse> = Err(GdprError::Store("boom".into()));
        assert!(!responses_match(&q, &e, &g));
    }

    #[test]
    fn shape_only_queries_tolerate_store_state() {
        let q = GdprQuery::DeleteExpired;
        let expected: GdprResult<GdprResponse> = Ok(GdprResponse::Deleted(0));
        let actual: GdprResult<GdprResponse> = Ok(GdprResponse::Deleted(17));
        assert!(responses_match(&q, &expected, &actual));
    }
}
