//! YCSB core workloads A–F, re-implemented (the paper benchmarks its
//! retrofits against YCSB 0.15 before unleashing GDPRbench).
//!
//! | workload | mix | distribution | application (paper Table 2) |
//! |---|---|---|---|
//! | A | 50/50 read/update | zipfian | session store |
//! | B | 95/5 read/update | zipfian | photo tagging |
//! | C | 100 read | zipfian | user profile cache |
//! | D | 95/5 read/insert | latest | user status update |
//! | E | 95/5 scan/insert | zipfian | threaded conversation |
//! | F | 100 read-modify-write | zipfian | user activity record |

use crate::datagen::ycsb_value;
use crate::generator::{Discrete, IndexGenerator, ScrambledZipfian, Uniform, Zipfian};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The interface a store must offer to run YCSB — the moral equivalent of
/// YCSB's `DB` abstract class.
pub trait KvInterface: Send + Sync {
    fn insert(&self, key: &str, value: &[u8]) -> Result<(), String>;
    fn read(&self, key: &str) -> Result<Option<Vec<u8>>, String>;
    fn update(&self, key: &str, value: &[u8]) -> Result<(), String>;
    /// Scan `count` records in key order from `start_key`. Returns records
    /// actually returned.
    fn scan(&self, start_key: &str, count: usize) -> Result<usize, String>;
    /// Read the key, then write back a new value (workload F).
    fn read_modify_write(&self, key: &str, value: &[u8]) -> Result<(), String> {
        self.read(key)?;
        self.update(key, value)
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    Read(String),
    Update(String, Vec<u8>),
    Insert(String, Vec<u8>),
    Scan(String, usize),
    ReadModifyWrite(String, Vec<u8>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Update,
    Insert,
    Scan,
    Rmw,
}

/// Request distribution choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestDistribution {
    Zipfian,
    Uniform,
    Latest,
}

/// A YCSB workload definition.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    pub name: &'static str,
    pub read_proportion: f64,
    pub update_proportion: f64,
    pub insert_proportion: f64,
    pub scan_proportion: f64,
    pub rmw_proportion: f64,
    pub request_distribution: RequestDistribution,
    /// Value payload size (YCSB default: 10 fields × 100 B; we use one
    /// 1000 B value).
    pub value_len: usize,
    pub max_scan_len: usize,
}

impl YcsbConfig {
    pub fn workload(name: char) -> YcsbConfig {
        let base = YcsbConfig {
            name: "A",
            read_proportion: 0.0,
            update_proportion: 0.0,
            insert_proportion: 0.0,
            scan_proportion: 0.0,
            rmw_proportion: 0.0,
            request_distribution: RequestDistribution::Zipfian,
            value_len: 1000,
            max_scan_len: 100,
        };
        match name.to_ascii_uppercase() {
            'A' => YcsbConfig {
                name: "A",
                read_proportion: 0.5,
                update_proportion: 0.5,
                ..base
            },
            'B' => YcsbConfig {
                name: "B",
                read_proportion: 0.95,
                update_proportion: 0.05,
                ..base
            },
            'C' => YcsbConfig {
                name: "C",
                read_proportion: 1.0,
                ..base
            },
            'D' => YcsbConfig {
                name: "D",
                read_proportion: 0.95,
                insert_proportion: 0.05,
                request_distribution: RequestDistribution::Latest,
                ..base
            },
            'E' => YcsbConfig {
                name: "E",
                scan_proportion: 0.95,
                insert_proportion: 0.05,
                ..base
            },
            'F' => YcsbConfig {
                name: "F",
                rmw_proportion: 1.0,
                ..base
            },
            other => panic!("unknown YCSB workload {other}"),
        }
    }

    pub fn all() -> Vec<YcsbConfig> {
        "ABCDEF".chars().map(YcsbConfig::workload).collect()
    }
}

/// The YCSB key for record index `i`.
pub fn ycsb_key(i: u64) -> String {
    format!("user{i:012}")
}

enum KeyChooser {
    Zipfian(ScrambledZipfian),
    Uniform(Uniform),
    /// Latest: zipf rank back from the newest inserted index.
    Latest(Zipfian),
}

/// A workload instance generating operations. One per client thread; the
/// insert counter is shared so threads allocate disjoint new keys.
pub struct YcsbWorkload {
    config: YcsbConfig,
    op_chooser: Discrete<OpKind>,
    key_chooser: KeyChooser,
    scan_len: Uniform,
    insert_counter: Arc<AtomicU64>,
}

impl YcsbWorkload {
    /// Build a workload over `record_count` preloaded records. Clone
    /// `insert_counter` across threads (it must start at `record_count`).
    pub fn new(config: YcsbConfig, record_count: u64, insert_counter: Arc<AtomicU64>) -> Self {
        let op_chooser = Discrete::new(vec![
            (config.read_proportion, OpKind::Read),
            (config.update_proportion, OpKind::Update),
            (config.insert_proportion, OpKind::Insert),
            (config.scan_proportion, OpKind::Scan),
            (config.rmw_proportion, OpKind::Rmw),
        ]);
        let key_chooser = match config.request_distribution {
            RequestDistribution::Zipfian => {
                KeyChooser::Zipfian(ScrambledZipfian::new(record_count))
            }
            RequestDistribution::Uniform => KeyChooser::Uniform(Uniform::new(record_count)),
            RequestDistribution::Latest => KeyChooser::Latest(Zipfian::new(record_count)),
        };
        let scan_len = Uniform::new(config.max_scan_len as u64);
        YcsbWorkload {
            config,
            op_chooser,
            key_chooser,
            scan_len,
            insert_counter,
        }
    }

    /// Generate the next operation.
    pub fn next_op(&mut self, rng: &mut dyn rand::RngCore) -> YcsbOp {
        let kind = *self.op_chooser.next(rng);
        match kind {
            OpKind::Insert => {
                let idx = self.insert_counter.fetch_add(1, Ordering::Relaxed);
                if let KeyChooser::Latest(z) = &mut self.key_chooser {
                    z.grow_to(idx + 1);
                }
                YcsbOp::Insert(ycsb_key(idx), ycsb_value(idx, self.config.value_len))
            }
            other => {
                let idx = self.choose_key(rng);
                let key = ycsb_key(idx);
                match other {
                    OpKind::Read => YcsbOp::Read(key),
                    OpKind::Update => {
                        YcsbOp::Update(key, ycsb_value(idx + 1, self.config.value_len))
                    }
                    OpKind::Scan => {
                        let len = 1 + self.scan_len.next(rng) as usize;
                        YcsbOp::Scan(key, len)
                    }
                    OpKind::Rmw => {
                        YcsbOp::ReadModifyWrite(key, ycsb_value(idx + 2, self.config.value_len))
                    }
                    OpKind::Insert => unreachable!(),
                }
            }
        }
    }

    fn choose_key(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let inserted = self.insert_counter.load(Ordering::Relaxed);
        match &mut self.key_chooser {
            KeyChooser::Zipfian(g) => g.next(rng),
            KeyChooser::Uniform(g) => g.next(rng),
            KeyChooser::Latest(z) => {
                z.grow_to(inserted);
                let rank = z.next(rng);
                inserted - 1 - rank.min(inserted - 1)
            }
        }
    }
}

/// Apply one op to a store.
pub fn apply_op(store: &dyn KvInterface, op: &YcsbOp) -> Result<(), String> {
    match op {
        YcsbOp::Read(key) => store.read(key).map(|_| ()),
        YcsbOp::Update(key, value) => store.update(key, value),
        YcsbOp::Insert(key, value) => store.insert(key, value),
        YcsbOp::Scan(key, len) => store.scan(key, *len).map(|_| ()),
        YcsbOp::ReadModifyWrite(key, value) => store.read_modify_write(key, value),
    }
}

// ---------------------------------------------------------------------
// Store adapters
// ---------------------------------------------------------------------

/// YCSB adapter over [`kvstore::KvStore`]. Values live as plain strings;
/// an index sorted-set (`_ycsb_idx`) maps record order to keys so SCAN has
/// an ordered access path — exactly the trick YCSB's real Redis binding
/// uses (Redis has no ordered keyspace).
pub struct KvStoreYcsb {
    store: Arc<kvstore::KvStore>,
}

impl KvStoreYcsb {
    pub fn new(store: Arc<kvstore::KvStore>) -> Self {
        KvStoreYcsb { store }
    }

    fn index_score(key: &str) -> f64 {
        // Keys are "user{i:012}": recover the record index as the score.
        key.strip_prefix("user")
            .and_then(|d| d.parse::<u64>().ok())
            .unwrap_or(0) as f64
    }
}

impl KvInterface for KvStoreYcsb {
    fn insert(&self, key: &str, value: &[u8]) -> Result<(), String> {
        self.store
            .set(key.as_bytes(), value)
            .map_err(|e| e.to_string())?;
        self.store
            .execute(kvstore::Command::ZAdd {
                key: bytes::Bytes::from_static(b"_ycsb_idx"),
                entries: vec![(
                    Self::index_score(key),
                    bytes::Bytes::copy_from_slice(key.as_bytes()),
                )],
            })
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    fn read(&self, key: &str) -> Result<Option<Vec<u8>>, String> {
        self.store
            .get(key.as_bytes())
            .map(|opt| opt.map(|b| b.to_vec()))
            .map_err(|e| e.to_string())
    }

    fn update(&self, key: &str, value: &[u8]) -> Result<(), String> {
        self.store
            .set(key.as_bytes(), value)
            .map_err(|e| e.to_string())
    }

    fn scan(&self, start_key: &str, count: usize) -> Result<usize, String> {
        let start = Self::index_score(start_key);
        let reply = self
            .store
            .execute(kvstore::Command::ZRangeByScore {
                key: bytes::Bytes::from_static(b"_ycsb_idx"),
                min: start,
                max: f64::INFINITY,
                limit: Some(count),
            })
            .map_err(|e| e.to_string())?;
        let keys: Vec<_> = reply
            .as_array()
            .map(|a| a.iter().take(count).cloned().collect())
            .unwrap_or_default();
        let mut returned = 0;
        for k in keys {
            if let Some(key_bytes) = k.as_bulk() {
                if self
                    .store
                    .get(key_bytes.as_ref())
                    .map_err(|e| e.to_string())?
                    .is_some()
                {
                    returned += 1;
                }
            }
        }
        Ok(returned)
    }
}

/// YCSB adapter over [`relstore::Database`]: the classic `usertable`.
pub struct RelStoreYcsb {
    db: Arc<relstore::Database>,
    /// Expiry timestamp stamped on every row, when the table carries the
    /// paper's TTL retrofit column (§5.2).
    row_expiry: Option<u64>,
}

impl RelStoreYcsb {
    /// Create the adapter and its `usertable`.
    pub fn new(db: Arc<relstore::Database>) -> Result<Self, String> {
        Self::create(db, None)
    }

    /// As [`Self::new`] but with the paper's TTL retrofit: an `expiry`
    /// timestamp column on every row (stamped `row_expiry_ms`), swept by a
    /// [`relstore::ttl::TtlDaemon`] the caller starts.
    pub fn with_expiry_column(
        db: Arc<relstore::Database>,
        row_expiry_ms: u64,
    ) -> Result<Self, String> {
        Self::create(db, Some(row_expiry_ms))
    }

    fn create(db: Arc<relstore::Database>, row_expiry: Option<u64>) -> Result<Self, String> {
        let mut columns = vec![
            ("key".to_string(), relstore::ColumnType::Text),
            ("field0".to_string(), relstore::ColumnType::Text),
        ];
        if row_expiry.is_some() {
            columns.push(("expiry".to_string(), relstore::ColumnType::Timestamp));
        }
        db.execute(&relstore::Statement::CreateTable {
            table: "usertable".into(),
            columns,
            pk: "key".into(),
        })
        .map_err(|e| e.to_string())?;
        Ok(RelStoreYcsb { db, row_expiry })
    }

    fn value_to_text(value: &[u8]) -> String {
        // YCSB values generated by this crate are ASCII; enforce it here so
        // the Text column is legitimate.
        value.iter().map(|&b| (b % 26 + b'a') as char).collect()
    }
}

impl KvInterface for RelStoreYcsb {
    fn insert(&self, key: &str, value: &[u8]) -> Result<(), String> {
        let mut row = vec![
            relstore::Datum::Text(key.to_string()),
            relstore::Datum::Text(Self::value_to_text(value)),
        ];
        if let Some(expiry) = self.row_expiry {
            row.push(relstore::Datum::Timestamp(expiry));
        }
        self.db
            .execute(&relstore::Statement::Insert {
                table: "usertable".into(),
                row,
            })
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn read(&self, key: &str) -> Result<Option<Vec<u8>>, String> {
        let result = self
            .db
            .execute(&relstore::Statement::Select {
                table: "usertable".into(),
                pred: relstore::Predicate::eq_text("key", key),
            })
            .map_err(|e| e.to_string())?;
        Ok(result.rows().first().and_then(|row| {
            row.get(1)
                .and_then(relstore::Datum::as_text)
                .map(|s| s.as_bytes().to_vec())
        }))
    }

    fn update(&self, key: &str, value: &[u8]) -> Result<(), String> {
        self.db
            .execute(&relstore::Statement::Update {
                table: "usertable".into(),
                pred: relstore::Predicate::eq_text("key", key),
                assignments: vec![(
                    "field0".into(),
                    relstore::Datum::Text(Self::value_to_text(value)),
                )],
            })
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn scan(&self, start_key: &str, count: usize) -> Result<usize, String> {
        let result = self
            .db
            .execute(&relstore::Statement::SelectRange {
                table: "usertable".into(),
                column: "key".into(),
                start: relstore::Datum::Text(start_key.to_string()),
                limit: count,
            })
            .map_err(|e| e.to_string())?;
        Ok(result.rows().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen_ops(config: YcsbConfig, n: usize, records: u64) -> Vec<YcsbOp> {
        let counter = Arc::new(AtomicU64::new(records));
        let mut w = YcsbWorkload::new(config, records, counter);
        let mut rng = SmallRng::seed_from_u64(11);
        (0..n).map(|_| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn workload_a_mix() {
        let ops = gen_ops(YcsbConfig::workload('A'), 10_000, 1000);
        let reads = ops.iter().filter(|o| matches!(o, YcsbOp::Read(_))).count();
        let updates = ops
            .iter()
            .filter(|o| matches!(o, YcsbOp::Update(..)))
            .count();
        assert_eq!(reads + updates, 10_000);
        assert!((4500..5500).contains(&reads), "reads={reads}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let ops = gen_ops(YcsbConfig::workload('C'), 1000, 1000);
        assert!(ops.iter().all(|o| matches!(o, YcsbOp::Read(_))));
    }

    #[test]
    fn workload_d_inserts_fresh_keys() {
        let ops = gen_ops(YcsbConfig::workload('D'), 10_000, 1000);
        let inserts: Vec<_> = ops
            .iter()
            .filter_map(|o| match o {
                YcsbOp::Insert(k, _) => Some(k.clone()),
                _ => None,
            })
            .collect();
        assert!(!inserts.is_empty());
        // Fresh keys start at the preload boundary.
        assert!(inserts.contains(&ycsb_key(1000)));
        let unique: std::collections::HashSet<_> = inserts.iter().collect();
        assert_eq!(unique.len(), inserts.len(), "insert keys must be unique");
    }

    #[test]
    fn workload_e_scans_with_bounded_length() {
        let ops = gen_ops(YcsbConfig::workload('E'), 5000, 1000);
        let scans = ops.iter().filter(|o| matches!(o, YcsbOp::Scan(..))).count();
        assert!(scans > 4000);
        assert!(ops.iter().all(|o| match o {
            YcsbOp::Scan(_, len) => (1..=100).contains(len),
            _ => true,
        }));
    }

    #[test]
    fn workload_f_is_rmw() {
        let ops = gen_ops(YcsbConfig::workload('F'), 100, 50);
        assert!(ops.iter().all(|o| matches!(o, YcsbOp::ReadModifyWrite(..))));
    }

    fn load_store(store: &dyn KvInterface, n: u64) {
        for i in 0..n {
            store.insert(&ycsb_key(i), &ycsb_value(i, 64)).unwrap();
        }
    }

    #[test]
    fn kvstore_adapter_roundtrip() {
        let store = kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap();
        let adapter = KvStoreYcsb::new(store);
        load_store(&adapter, 50);
        assert_eq!(
            adapter.read(&ycsb_key(7)).unwrap().unwrap(),
            ycsb_value(7, 64)
        );
        adapter.update(&ycsb_key(7), b"new-value").unwrap();
        assert_eq!(adapter.read(&ycsb_key(7)).unwrap().unwrap(), b"new-value");
        assert_eq!(adapter.read("user999999999999").unwrap(), None);
        // Ordered scan from key 10, 5 records.
        assert_eq!(adapter.scan(&ycsb_key(10), 5).unwrap(), 5);
        // Scan off the end returns fewer.
        assert_eq!(adapter.scan(&ycsb_key(48), 10).unwrap(), 2);
    }

    #[test]
    fn relstore_adapter_roundtrip() {
        let db = relstore::Database::open(relstore::RelConfig::default()).unwrap();
        let adapter = RelStoreYcsb::new(db).unwrap();
        load_store(&adapter, 50);
        assert!(adapter.read(&ycsb_key(7)).unwrap().is_some());
        adapter.update(&ycsb_key(7), &ycsb_value(99, 64)).unwrap();
        assert_eq!(
            adapter.read(&ycsb_key(7)).unwrap().unwrap(),
            RelStoreYcsb::value_to_text(&ycsb_value(99, 64)).into_bytes()
        );
        assert_eq!(adapter.scan(&ycsb_key(10), 5).unwrap(), 5);
        assert_eq!(adapter.scan(&ycsb_key(48), 10).unwrap(), 2);
        adapter.read_modify_write(&ycsb_key(3), b"rmw").unwrap();
    }

    #[test]
    fn ops_execute_against_both_adapters() {
        let kv = KvStoreYcsb::new(kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap());
        let rel =
            RelStoreYcsb::new(relstore::Database::open(relstore::RelConfig::default()).unwrap())
                .unwrap();
        for adapter in [&kv as &dyn KvInterface, &rel as &dyn KvInterface] {
            load_store(adapter, 100);
            let counter = Arc::new(AtomicU64::new(100));
            let mut w = YcsbWorkload::new(YcsbConfig::workload('A'), 100, counter);
            let mut rng = SmallRng::seed_from_u64(5);
            for _ in 0..200 {
                let op = w.next_op(&mut rng);
                apply_op(adapter, &op).unwrap();
            }
        }
    }
}
