//! The benchmark engine: YCSB core re-implemented, plus the four GDPRbench
//! workloads layered on it — the architecture of the paper's Figure 2b.
//!
//! * [`generator`] — the YCSB request-distribution family (uniform,
//!   zipfian, scrambled-zipfian, latest, hotspot, exponential, sequential,
//!   discrete weighted choice).
//! * [`ycsb`] — the six core workloads A–F plus Load (Table 2 of the
//!   paper's YCSB summary) against a minimal [`ycsb::KvInterface`], with
//!   adapters for both stores.
//! * [`gdpr`] — the Controller / Customer / Processor / Regulator workloads
//!   with the paper's default operation weights and distributions
//!   (Table 2a), generating [`gdpr_core::GdprQuery`] streams.
//! * [`datagen`] — deterministic personal-record corpus generation.
//! * [`oracle`] — a shadow model that computes expected responses, backing
//!   the benchmark's *correctness* metric (§4.2.3).
//! * [`stats`] — log-bucketed latency histograms, throughput, completion
//!   time.
//! * [`runner`] — multi-threaded execution harness reporting the three
//!   GDPRbench metrics: correctness, completion time, space overhead.

pub mod datagen;
pub mod gdpr;
pub mod generator;
pub mod oracle;
pub mod runner;
pub mod stats;
pub mod ycsb;

pub use gdpr::{GdprWorkload, GdprWorkloadKind};
pub use runner::{
    run_gdpr_workload, run_gdpr_workload_open_loop, run_gdpr_workload_open_loop_with,
    run_gdpr_workload_with, run_ycsb_workload, GdprRunOptions, GdprRunReport, OpenLoopReport,
    YcsbRunReport,
};
pub use stats::{Histogram, OpStats};
