//! Request-distribution generators, following YCSB's `generator` package.
//!
//! The zipfian generator is the Gray et al. "Quickly generating
//! billion-record synthetic databases" algorithm exactly as YCSB implements
//! it (constant `ZIPFIAN_CONSTANT = 0.99`), and the scrambled variant
//! spreads the popular head across the key space with a keyed hash
//! (SipHash here, FNV in YCSB).

use crypto::SipHash24;
use rand::Rng;

/// A generator of item indices in `[0, n)` under some distribution.
pub trait IndexGenerator: Send {
    /// Draw the next index using `rng`.
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64;
}

/// Uniform over `[0, n)`.
pub struct Uniform {
    n: u64,
}

impl Uniform {
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "uniform over empty range");
        Uniform { n }
    }
}

impl IndexGenerator for Uniform {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        rng.gen_range(0..self.n)
    }
}

/// YCSB's default skew constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipf-distributed ranks: item 0 most popular.
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    pub fn new(items: u64) -> Self {
        Self::with_theta(items, ZIPFIAN_CONSTANT)
    }

    pub fn with_theta(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian over empty range");
        let zetan = zeta(items, theta);
        let zeta2theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// Expand the item universe (used by the latest-distribution wrapper as
    /// inserts land). Recomputes zeta incrementally.
    pub fn grow_to(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        // Incremental zeta: add terms items_old+1 ..= items.
        for i in self.items + 1..=items {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.items = items;
        self.eta = (1.0 - (2.0 / items as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zetan);
    }

    pub fn items(&self) -> u64 {
        self.items
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl IndexGenerator for Zipfian {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        ((self.items as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
    }
}

/// Zipf popularity spread over the key space by hashing the rank — YCSB's
/// `ScrambledZipfianGenerator`.
pub struct ScrambledZipfian {
    inner: Zipfian,
    n: u64,
    hasher: SipHash24,
}

impl ScrambledZipfian {
    pub fn new(n: u64) -> Self {
        ScrambledZipfian {
            // YCSB uses a fixed large item count for the inner zipfian so
            // that the scrambled distribution is stable as n grows; the
            // rank stream is then folded onto [0, n).
            inner: Zipfian::new(n.max(2)),
            n,
            hasher: SipHash24::new(0x5953_4342, 0x5a49_5046), // "YSCB","ZIPF"
        }
    }
}

impl IndexGenerator for ScrambledZipfian {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let rank = self.inner.next(rng);
        self.hasher.hash_u64(rank) % self.n
    }
}

/// Skew toward recently inserted items — YCSB's `SkewedLatestGenerator`.
/// `basis` is the current insert count; rank 0 maps to the newest item.
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    pub fn new(initial_items: u64) -> Self {
        Latest {
            zipf: Zipfian::new(initial_items.max(1)),
        }
    }

    /// Note that items have been appended (e.g. after an insert).
    pub fn grow_to(&mut self, items: u64) {
        self.zipf.grow_to(items.max(1));
    }
}

impl IndexGenerator for Latest {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let items = self.zipf.items();
        let rank = self.zipf.next(rng);
        items - 1 - rank.min(items - 1)
    }
}

/// Hotspot: a fraction of operations go to a hot set at the front.
pub struct HotSpot {
    n: u64,
    hot_items: u64,
    hot_opn_fraction: f64,
}

impl HotSpot {
    pub fn new(n: u64, hot_set_fraction: f64, hot_opn_fraction: f64) -> Self {
        HotSpot {
            n,
            hot_items: ((n as f64 * hot_set_fraction) as u64).max(1),
            hot_opn_fraction,
        }
    }
}

impl IndexGenerator for HotSpot {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        if rng.gen::<f64>() < self.hot_opn_fraction {
            rng.gen_range(0..self.hot_items)
        } else if self.hot_items < self.n {
            self.hot_items + rng.gen_range(0..self.n - self.hot_items)
        } else {
            rng.gen_range(0..self.n)
        }
    }
}

/// Exponentially distributed indices (YCSB's `ExponentialGenerator`),
/// truncated to `[0, n)`.
pub struct Exponential {
    n: u64,
    gamma: f64,
}

impl Exponential {
    /// `percentile` of mass within the first `range_fraction` of items
    /// (YCSB defaults: 95% in the first 10%).
    pub fn new(n: u64, percentile: f64, range_fraction: f64) -> Self {
        let gamma = -(1.0 - percentile / 100.0).ln() / (n as f64 * range_fraction);
        Exponential { n, gamma }
    }
}

impl IndexGenerator for Exponential {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        loop {
            let u: f64 = rng.gen();
            let x = (-u.ln() / self.gamma) as u64;
            if x < self.n {
                return x;
            }
        }
    }
}

/// Round-robin over `[0, n)` — the Load phase key order.
pub struct Sequential {
    next: u64,
    n: u64,
}

impl Sequential {
    pub fn new(n: u64) -> Self {
        Sequential { next: 0, n }
    }
}

impl IndexGenerator for Sequential {
    fn next(&mut self, _rng: &mut dyn rand::RngCore) -> u64 {
        let v = self.next;
        self.next = (self.next + 1) % self.n;
        v
    }
}

/// Weighted choice over a small set of variants.
pub struct Discrete<T: Clone + Send> {
    items: Vec<(f64, T)>,
    total: f64,
}

impl<T: Clone + Send> Discrete<T> {
    pub fn new(items: Vec<(f64, T)>) -> Self {
        assert!(!items.is_empty());
        let total = items.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0);
        Discrete { items, total }
    }

    pub fn next(&self, rng: &mut dyn rand::RngCore) -> &T {
        let mut x: f64 = rng.gen::<f64>() * self.total;
        for (w, item) in &self.items {
            if x < *w {
                return item;
            }
            x -= w;
        }
        &self.items.last().expect("non-empty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xBEEF)
    }

    fn draw(gen: &mut dyn IndexGenerator, n: usize) -> Vec<u64> {
        let mut r = rng();
        (0..n).map(|_| gen.next(&mut r)).collect()
    }

    #[test]
    fn uniform_bounds_and_coverage() {
        let mut g = Uniform::new(10);
        let samples = draw(&mut g, 10_000);
        assert!(samples.iter().all(|&x| x < 10));
        let mut counts = [0u32; 10];
        for s in &samples {
            counts[*s as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| (700..1300).contains(&c)),
            "{counts:?}"
        );
    }

    #[test]
    fn zipfian_is_head_heavy() {
        let mut g = Zipfian::new(1000);
        let samples = draw(&mut g, 50_000);
        assert!(samples.iter().all(|&x| x < 1000));
        let head = samples.iter().filter(|&&x| x < 10).count() as f64 / samples.len() as f64;
        // With theta=0.99 over 1000 items the top-10 get roughly a third.
        assert!(head > 0.25, "head mass too small: {head}");
        let zero = samples.iter().filter(|&&x| x == 0).count() as f64 / samples.len() as f64;
        let tail = samples.iter().filter(|&&x| x == 999).count() as f64 / samples.len() as f64;
        assert!(
            zero > tail * 5.0,
            "rank 0 ({zero}) must dominate rank 999 ({tail})"
        );
    }

    #[test]
    fn zipfian_grow_matches_fresh_construction() {
        let mut grown = Zipfian::new(100);
        grown.grow_to(500);
        let fresh = Zipfian::new(500);
        assert!((grown.zetan - fresh.zetan).abs() < 1e-9);
        assert!((grown.eta - fresh.eta).abs() < 1e-9);
    }

    #[test]
    fn scrambled_zipfian_spreads_but_stays_skewed() {
        let mut g = ScrambledZipfian::new(1000);
        let samples = draw(&mut g, 50_000);
        assert!(samples.iter().all(|&x| x < 1000));
        // The hottest item should no longer be index 0, but some index
        // should still collect far more than the uniform share.
        let mut counts = std::collections::HashMap::new();
        for s in &samples {
            *counts.entry(*s).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max as f64 > 50_000.0 / 1000.0 * 20.0,
            "no hot key: max={max}"
        );
    }

    #[test]
    fn latest_prefers_new_items() {
        let mut g = Latest::new(100);
        g.grow_to(1000);
        let samples = draw(&mut g, 20_000);
        assert!(samples.iter().all(|&x| x < 1000));
        let newest_tenth =
            samples.iter().filter(|&&x| x >= 900).count() as f64 / samples.len() as f64;
        assert!(newest_tenth > 0.3, "latest skew too weak: {newest_tenth}");
    }

    #[test]
    fn hotspot_fractions() {
        let mut g = HotSpot::new(1000, 0.1, 0.9);
        let samples = draw(&mut g, 20_000);
        let hot = samples.iter().filter(|&&x| x < 100).count() as f64 / samples.len() as f64;
        assert!((0.85..0.95).contains(&hot), "hot fraction {hot}");
    }

    #[test]
    fn exponential_concentrates_mass() {
        let mut g = Exponential::new(1000, 95.0, 0.1);
        let samples = draw(&mut g, 20_000);
        assert!(samples.iter().all(|&x| x < 1000));
        let front = samples.iter().filter(|&&x| x < 100).count() as f64 / samples.len() as f64;
        assert!((0.90..0.99).contains(&front), "front mass {front}");
    }

    #[test]
    fn sequential_cycles() {
        let mut g = Sequential::new(3);
        assert_eq!(draw(&mut g, 7), vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(vec![(0.25, "a"), (0.5, "b"), (0.25, "c")]);
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(*d.next(&mut r)).or_insert(0u32) += 1;
        }
        assert!((2000..3000).contains(&counts["a"]), "{counts:?}");
        assert!((4500..5500).contains(&counts["b"]), "{counts:?}");
    }

    #[test]
    #[should_panic]
    fn uniform_zero_panics() {
        Uniform::new(0);
    }
}
