//! Security substrate for gdprbench-rs.
//!
//! GDPR Article 32 obliges controllers to encrypt personal data both at rest
//! and in transit (§3.2 of the paper). The paper bolts LUKS onto the block
//! device and stunnel/TLS onto the wire; what its benchmarks actually measure
//! is the per-byte cipher cost added to every persisted write and every
//! client/server message. This crate provides that cost with real primitives
//! implemented from scratch:
//!
//! * [`chacha20`] — the RFC 8439 ChaCha20 stream cipher, validated against
//!   the RFC test vectors.
//! * [`siphash`] — SipHash-2-4, used as a keyed MAC for sealed blocks and as
//!   the key scrambler for the benchmark's scrambled-zipfian generator.
//! * [`volume`] — sector-oriented encryption-at-rest (the LUKS stand-in) used
//!   by the stores' AOF/WAL persistence layers.
//! * [`channel`] — per-message sealing for data in transit (the stunnel
//!   stand-in) used at the connector boundary.

pub mod chacha20;
pub mod channel;
pub mod siphash;
pub mod volume;

pub use chacha20::ChaCha20;
pub use channel::SecureChannel;
pub use siphash::SipHash24;
pub use volume::Volume;

/// Errors produced when opening sealed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// The authentication tag did not match: data corrupted or wrong key.
    TagMismatch,
    /// The sealed blob is too short to contain a header.
    Truncated,
    /// The sequence number is not the next expected one: a replayed or
    /// reordered message. Distinct from [`CryptoError::TagMismatch`] so
    /// transports can audit replay attempts separately from corruption.
    Replay,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::Truncated => write!(f, "sealed blob truncated"),
            CryptoError::Replay => write!(f, "replayed or reordered sequence number"),
        }
    }
}

impl std::error::Error for CryptoError {}
