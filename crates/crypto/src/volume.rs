//! Encryption at rest: the LUKS stand-in.
//!
//! The paper layers LUKS under Redis' AOF and PostgreSQL's data directory.
//! LUKS encrypts fixed-size sectors with a per-sector tweak so that random
//! access stays possible. [`Volume`] reproduces that interface: callers seal
//! logical blocks identified by a monotonically increasing block number (the
//! stores use their append offsets), and each sealed block carries a SipHash
//! tag so corruption is detected on open.

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::siphash::SipHash24;
use crate::CryptoError;

/// Length of the per-block header in the sealed representation: an 8-byte
/// block number plus an 8-byte authentication tag.
pub const HEADER_LEN: usize = 16;

/// A sector/block-oriented encryption-at-rest layer.
pub struct Volume {
    cipher: ChaCha20,
    mac: SipHash24,
}

impl Volume {
    /// Create a volume bound to key material (any length; see
    /// [`ChaCha20::from_seed`]).
    pub fn new(seed: &[u8]) -> Self {
        Volume {
            cipher: ChaCha20::from_seed(seed),
            mac: SipHash24::new(
                SipHash24::new(0x766f_6c5f, 0x6d61_6331).hash(seed),
                SipHash24::new(0x766f_6c5f, 0x6d61_6332).hash(seed),
            ),
        }
    }

    /// Encrypt `plaintext` as logical block `block_no`.
    ///
    /// Returns `header || ciphertext` where the header carries the block
    /// number and a tag over the ciphertext. Block numbers must not repeat
    /// for a given volume key (they derive the nonce), which store append
    /// offsets guarantee.
    pub fn seal(&self, block_no: u64, plaintext: &[u8]) -> Vec<u8> {
        let nonce = block_nonce(block_no);
        let mut out = Vec::with_capacity(HEADER_LEN + plaintext.len());
        out.extend_from_slice(&block_no.to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // tag placeholder
        out.extend_from_slice(plaintext);
        self.cipher.apply(&nonce, 0, &mut out[HEADER_LEN..]);
        let tag = self.tag(block_no, &out[HEADER_LEN..]);
        out[8..16].copy_from_slice(&tag.to_le_bytes());
        out
    }

    /// Decrypt a blob produced by [`Volume::seal`], verifying its tag.
    pub fn open(&self, sealed: &[u8]) -> Result<(u64, Vec<u8>), CryptoError> {
        if sealed.len() < HEADER_LEN {
            return Err(CryptoError::Truncated);
        }
        let block_no = u64::from_le_bytes(sealed[..8].try_into().unwrap());
        let tag = u64::from_le_bytes(sealed[8..16].try_into().unwrap());
        let ct = &sealed[HEADER_LEN..];
        if self.tag(block_no, ct) != tag {
            return Err(CryptoError::TagMismatch);
        }
        let mut pt = ct.to_vec();
        self.cipher.apply(&block_nonce(block_no), 0, &mut pt);
        Ok((block_no, pt))
    }

    fn tag(&self, block_no: u64, ciphertext: &[u8]) -> u64 {
        // Bind the tag to the block number so blocks cannot be transplanted.
        let mut material = Vec::with_capacity(8 + ciphertext.len());
        material.extend_from_slice(&block_no.to_le_bytes());
        material.extend_from_slice(ciphertext);
        self.mac.hash(&material)
    }
}

fn block_nonce(block_no: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&block_no.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let v = Volume::new(b"disk-key");
        let sealed = v.seal(42, b"ph-1x4b;123-456-7890;PUR=ads");
        let (block_no, pt) = v.open(&sealed).unwrap();
        assert_eq!(block_no, 42);
        assert_eq!(pt, b"ph-1x4b;123-456-7890;PUR=ads");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let v = Volume::new(b"disk-key");
        let sealed = v.seal(0, b"SENSITIVE-PERSONAL-DATA");
        assert!(!sealed.windows(9).any(|w| w == b"SENSITIVE"));
    }

    #[test]
    fn corruption_is_detected() {
        let v = Volume::new(b"disk-key");
        let mut sealed = v.seal(7, b"hello world");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x01;
        assert_eq!(v.open(&sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn transplanted_block_number_is_detected() {
        let v = Volume::new(b"disk-key");
        let mut sealed = v.seal(7, b"hello world");
        sealed[..8].copy_from_slice(&9u64.to_le_bytes());
        assert_eq!(v.open(&sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let v = Volume::new(b"disk-key");
        assert_eq!(v.open(&[1, 2, 3]), Err(CryptoError::Truncated));
    }

    #[test]
    fn wrong_key_fails_to_open() {
        let a = Volume::new(b"key-a");
        let b = Volume::new(b"key-b");
        let sealed = a.seal(1, b"data");
        assert_eq!(b.open(&sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn distinct_blocks_have_distinct_ciphertexts() {
        let v = Volume::new(b"disk-key");
        let a = v.seal(1, b"same plaintext");
        let b = v.seal(2, b"same plaintext");
        assert_ne!(a[HEADER_LEN..], b[HEADER_LEN..]);
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let v = Volume::new(b"disk-key");
        let sealed = v.seal(3, b"");
        assert_eq!(v.open(&sealed).unwrap(), (3, vec![]));
    }
}
