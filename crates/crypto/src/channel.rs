//! Encryption in transit: the stunnel/TLS stand-in.
//!
//! The paper tunnels Redis traffic through stunnel and enables SSL in
//! PostgreSQL. The benchmark-relevant effect is that every request and
//! response crosses a cipher boundary. [`SecureChannel`] models one direction
//! of an established session (post-handshake): messages are sealed with a
//! strictly increasing sequence number, giving confidentiality, integrity and
//! replay protection. The connectors create a client→server and a
//! server→client channel per session and pay this cost on every operation.

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::siphash::SipHash24;
use crate::CryptoError;

/// Length of the per-message header: 8-byte sequence number + 8-byte tag.
pub const HEADER_LEN: usize = 16;

/// One direction of an encrypted session.
pub struct SecureChannel {
    cipher: ChaCha20,
    mac: SipHash24,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Create one endpoint of a channel from shared key material and a
    /// direction label (the two directions must use distinct labels so their
    /// keystreams never overlap).
    pub fn new(seed: &[u8], direction: &str) -> Self {
        let mut material = Vec::with_capacity(seed.len() + direction.len() + 1);
        material.extend_from_slice(seed);
        material.push(b'|');
        material.extend_from_slice(direction.as_bytes());
        SecureChannel {
            cipher: ChaCha20::from_seed(&material),
            mac: SipHash24::new(
                SipHash24::new(0x6368_616e, 0x6d61_6331).hash(&material),
                SipHash24::new(0x6368_616e, 0x6d61_6332).hash(&material),
            ),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Create the matched (client→server, server→client) pair for a session.
    /// Returns `(client_endpoint, server_endpoint)` where each endpoint sends
    /// on its own direction and receives on the peer's.
    pub fn pair(seed: &[u8]) -> (DuplexChannel, DuplexChannel) {
        let client = DuplexChannel {
            tx: SecureChannel::new(seed, "c2s"),
            rx: SecureChannel::new(seed, "s2c"),
        };
        let server = DuplexChannel {
            tx: SecureChannel::new(seed, "s2c"),
            rx: SecureChannel::new(seed, "c2s"),
        };
        (client, server)
    }

    /// Seal the next outbound message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = seq_nonce(seq);
        let mut out = Vec::with_capacity(HEADER_LEN + plaintext.len());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&[0u8; 8]);
        out.extend_from_slice(plaintext);
        self.cipher.apply(&nonce, 0, &mut out[HEADER_LEN..]);
        let tag = self.tag(seq, &out[HEADER_LEN..]);
        out[8..16].copy_from_slice(&tag.to_le_bytes());
        out
    }

    /// Open the next inbound message. Rejects tampering, truncation, and
    /// out-of-order/replayed sequence numbers.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < HEADER_LEN {
            return Err(CryptoError::Truncated);
        }
        let seq = u64::from_le_bytes(sealed[..8].try_into().unwrap());
        let tag = u64::from_le_bytes(sealed[8..16].try_into().unwrap());
        let ct = &sealed[HEADER_LEN..];
        if seq != self.recv_seq || self.tag(seq, ct) != tag {
            return Err(CryptoError::TagMismatch);
        }
        self.recv_seq += 1;
        let mut pt = ct.to_vec();
        self.cipher.apply(&seq_nonce(seq), 0, &mut pt);
        Ok(pt)
    }

    fn tag(&self, seq: u64, ciphertext: &[u8]) -> u64 {
        let mut material = Vec::with_capacity(8 + ciphertext.len());
        material.extend_from_slice(&seq.to_le_bytes());
        material.extend_from_slice(ciphertext);
        self.mac.hash(&material)
    }
}

/// A send+receive endpoint pair for one party of a session.
pub struct DuplexChannel {
    /// Outbound direction.
    pub tx: SecureChannel,
    /// Inbound direction.
    pub rx: SecureChannel,
}

impl DuplexChannel {
    /// Seal an outbound message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.tx.seal(plaintext)
    }

    /// Open an inbound message.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.rx.open(sealed)
    }
}

fn seq_nonce(seq: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&seq.to_le_bytes());
    nonce[8] = 0x43; // domain-separate from Volume nonces
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_roundtrip() {
        let (mut client, mut server) = SecureChannel::pair(b"session-key");
        let wire = client.seal(b"READ-DATA-BY-KEY ph-1x4b");
        assert_eq!(server.open(&wire).unwrap(), b"READ-DATA-BY-KEY ph-1x4b");
        let wire = server.seal(b"123-456-7890");
        assert_eq!(client.open(&wire).unwrap(), b"123-456-7890");
    }

    #[test]
    fn many_messages_in_order() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        for i in 0..100u32 {
            let msg = format!("op-{i}");
            let wire = client.seal(msg.as_bytes());
            assert_eq!(server.open(&wire).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn replay_is_rejected() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let wire = client.seal(b"delete my data");
        server.open(&wire).unwrap();
        assert_eq!(server.open(&wire), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let first = client.seal(b"one");
        let second = client.seal(b"two");
        assert_eq!(server.open(&second), Err(CryptoError::TagMismatch));
        // The in-order message still works afterwards.
        assert_eq!(server.open(&first).unwrap(), b"one");
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let mut wire = client.seal(b"benign");
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        assert_eq!(server.open(&wire), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn directions_are_independent() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        // A client cannot open its own sealed message (directions differ).
        let wire = client.seal(b"hello");
        assert!(client.open(&wire).is_err());
        assert_eq!(server.open(&wire).unwrap(), b"hello");
    }
}
