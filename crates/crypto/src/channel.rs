//! Encryption in transit: the stunnel/TLS stand-in.
//!
//! The paper tunnels Redis traffic through stunnel and enables SSL in
//! PostgreSQL. The benchmark-relevant effect is that every request and
//! response crosses a cipher boundary. [`SecureChannel`] models one direction
//! of an established session (post-handshake): messages are sealed with a
//! strictly increasing sequence number, giving confidentiality, integrity and
//! replay protection. The connectors create a client→server and a
//! server→client channel per session and pay this cost on every operation.

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::siphash::SipHash24;
use crate::CryptoError;

/// Length of the per-message header: 8-byte sequence number + 8-byte tag.
pub const HEADER_LEN: usize = 16;

/// One direction of an encrypted session.
pub struct SecureChannel {
    cipher: ChaCha20,
    mac: SipHash24,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Create one endpoint of a channel from shared key material and a
    /// direction label (the two directions must use distinct labels so their
    /// keystreams never overlap).
    pub fn new(seed: &[u8], direction: &str) -> Self {
        let mut material = Vec::with_capacity(seed.len() + direction.len() + 1);
        material.extend_from_slice(seed);
        material.push(b'|');
        material.extend_from_slice(direction.as_bytes());
        SecureChannel {
            cipher: ChaCha20::from_seed(&material),
            mac: SipHash24::new(
                SipHash24::new(0x6368_616e, 0x6d61_6331).hash(&material),
                SipHash24::new(0x6368_616e, 0x6d61_6332).hash(&material),
            ),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Create the matched (client→server, server→client) pair for a session.
    /// Returns `(client_endpoint, server_endpoint)` where each endpoint sends
    /// on its own direction and receives on the peer's.
    pub fn pair(seed: &[u8]) -> (DuplexChannel, DuplexChannel) {
        let client = DuplexChannel {
            tx: SecureChannel::new(seed, "c2s"),
            rx: SecureChannel::new(seed, "s2c"),
        };
        let server = DuplexChannel {
            tx: SecureChannel::new(seed, "s2c"),
            rx: SecureChannel::new(seed, "c2s"),
        };
        (client, server)
    }

    /// Seal the next outbound message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = seq_nonce(seq);
        let mut out = Vec::with_capacity(HEADER_LEN + plaintext.len());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&[0u8; 8]);
        out.extend_from_slice(plaintext);
        self.cipher.apply(&nonce, 0, &mut out[HEADER_LEN..]);
        let tag = self.tag(seq, &out[HEADER_LEN..]);
        out[8..16].copy_from_slice(&tag.to_le_bytes());
        out
    }

    /// Open the next inbound message. Rejects tampering, truncation, and
    /// out-of-order/replayed sequence numbers.
    ///
    /// The sequence check runs first and reports [`CryptoError::Replay`],
    /// so a replayed capture is distinguishable from corruption; a frame
    /// with the expected sequence but a wrong tag is [`CryptoError::TagMismatch`].
    /// The tag comparison is constant-time ([`ct_eq`]) — a short-circuiting
    /// `!=` would leak how many tag bytes an attacker got right.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < HEADER_LEN {
            return Err(CryptoError::Truncated);
        }
        let seq = u64::from_le_bytes(sealed[..8].try_into().unwrap());
        if seq != self.recv_seq {
            return Err(CryptoError::Replay);
        }
        let ct = &sealed[HEADER_LEN..];
        if !ct_eq(&self.tag(seq, ct).to_le_bytes(), &sealed[8..16]) {
            return Err(CryptoError::TagMismatch);
        }
        self.recv_seq += 1;
        let mut pt = ct.to_vec();
        self.cipher.apply(&seq_nonce(seq), 0, &mut pt);
        Ok(pt)
    }

    fn tag(&self, seq: u64, ciphertext: &[u8]) -> u64 {
        let mut material = Vec::with_capacity(8 + ciphertext.len());
        material.extend_from_slice(&seq.to_le_bytes());
        material.extend_from_slice(ciphertext);
        self.mac.hash(&material)
    }
}

/// A send+receive endpoint pair for one party of a session.
pub struct DuplexChannel {
    /// Outbound direction.
    pub tx: SecureChannel,
    /// Inbound direction.
    pub rx: SecureChannel,
}

impl DuplexChannel {
    /// Seal an outbound message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.tx.seal(plaintext)
    }

    /// Open an inbound message.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.rx.open(sealed)
    }
}

/// Constant-time equality for same-length byte strings.
///
/// Every byte is examined regardless of where the first difference sits:
/// differences are OR-accumulated and only the final accumulator decides,
/// with a `black_box` keeping the optimizer from reintroducing an early
/// exit. A length mismatch returns `false` immediately — lengths are
/// public (the wire framing announces them), only contents are secret.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc = std::hint::black_box(acc | (x ^ y));
    }
    acc == 0
}

fn seq_nonce(seq: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&seq.to_le_bytes());
    nonce[8] = 0x43; // domain-separate from Volume nonces
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_roundtrip() {
        let (mut client, mut server) = SecureChannel::pair(b"session-key");
        let wire = client.seal(b"READ-DATA-BY-KEY ph-1x4b");
        assert_eq!(server.open(&wire).unwrap(), b"READ-DATA-BY-KEY ph-1x4b");
        let wire = server.seal(b"123-456-7890");
        assert_eq!(client.open(&wire).unwrap(), b"123-456-7890");
    }

    #[test]
    fn many_messages_in_order() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        for i in 0..100u32 {
            let msg = format!("op-{i}");
            let wire = client.seal(msg.as_bytes());
            assert_eq!(server.open(&wire).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn replay_is_rejected() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let wire = client.seal(b"delete my data");
        server.open(&wire).unwrap();
        // A replayed capture is a sequencing violation, not corruption —
        // the transport can audit it separately.
        assert_eq!(server.open(&wire), Err(CryptoError::Replay));
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let first = client.seal(b"one");
        let second = client.seal(b"two");
        assert_eq!(server.open(&second), Err(CryptoError::Replay));
        // The in-order message still works afterwards.
        assert_eq!(server.open(&first).unwrap(), b"one");
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let mut wire = client.seal(b"benign");
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        assert_eq!(server.open(&wire), Err(CryptoError::TagMismatch));
    }

    /// A wrong tag on the *expected* sequence number is corruption
    /// (`TagMismatch`), never `Replay` — the seq check must not swallow
    /// tag failures, and vice versa.
    #[test]
    fn wrong_tag_at_expected_seq_is_tag_mismatch_not_replay() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        let mut wire = client.seal(b"benign");
        // Flip a tag byte only; seq (bytes 0..8) stays the expected 0.
        wire[12] ^= 0x01;
        assert_eq!(server.open(&wire), Err(CryptoError::TagMismatch));
        // A tampered seq on the same capture reports Replay instead.
        let mut wire2 = client.seal(b"next");
        wire2[7] ^= 0x01;
        assert_eq!(server.open(&wire2), Err(CryptoError::Replay));
    }

    #[test]
    fn ct_eq_agrees_with_equality_everywhere() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"same-bytes", b"same-bytes"));
        assert!(!ct_eq(b"length", b"length-differs"));
        // Equal-length inputs differing at the first, a middle, and the
        // last byte all take the full accumulate-and-compare path and
        // still report inequality.
        let base = *b"\x00\x11\x22\x33\x44\x55\x66\x77";
        for flip_at in [0usize, 3, 7] {
            let mut other = base;
            other[flip_at] ^= 0x80;
            assert!(!ct_eq(&base, &other), "difference at byte {flip_at}");
            assert!(!ct_eq(&other, &base), "difference at byte {flip_at}");
        }
        // Multi-byte differences that XOR-cancel pairwise must not read
        // as equal (the accumulator ORs, it does not XOR-sum).
        let mut cancel = base;
        cancel[1] ^= 0x0f;
        cancel[2] ^= 0x0f;
        assert!(!ct_eq(&base, &cancel));
    }

    #[test]
    fn directions_are_independent() {
        let (mut client, mut server) = SecureChannel::pair(b"k");
        // A client cannot open its own sealed message (directions differ).
        let wire = client.seal(b"hello");
        assert!(client.open(&wire).is_err());
        assert_eq!(server.open(&wire).unwrap(), b"hello");
    }
}
