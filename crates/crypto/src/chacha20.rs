//! The ChaCha20 stream cipher, as specified in RFC 8439.
//!
//! Implemented from scratch (no external crates) and validated against the
//! RFC's block-function and encryption test vectors in this module's tests.

/// Key size in bytes (256-bit keys only, per RFC 8439).
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes (96-bit nonces, per RFC 8439).
pub const NONCE_LEN: usize = 12;
/// Size of one keystream block.
pub const BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 cipher instance bound to a key.
///
/// ChaCha20 is a stream cipher: encryption and decryption are the same XOR
/// operation, so there is a single [`ChaCha20::apply`] entry point.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
}

impl ChaCha20 {
    /// Create a cipher from a 256-bit key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha20 { key: k }
    }

    /// Derive a cipher from arbitrary-length key material by hashing it into
    /// a 256-bit key with SipHash in a counter construction. This is a
    /// convenience for tests and configuration, not a KDF of record.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut key = [0u8; KEY_LEN];
        for (i, chunk) in key.chunks_exact_mut(8).enumerate() {
            let h = crate::siphash::SipHash24::new(0x6b64665f_u64, i as u64).hash(seed);
            chunk.copy_from_slice(&h.to_le_bytes());
        }
        ChaCha20::new(&key)
    }

    /// Compute one 64-byte keystream block for (`nonce`, `counter`).
    pub fn block(&self, nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            state[13 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR `data` in place with the keystream for (`nonce`, starting at
    /// block `counter`). Apply twice with the same parameters to decrypt.
    pub fn apply(&self, nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        let mut ctr = counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block(nonce, ctr);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    /// Convenience: encrypt a copy of `data`.
    pub fn apply_copy(&self, nonce: &[u8; NONCE_LEN], counter: u32, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(nonce, counter, &mut out);
        out
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_function_vector() {
        let cipher = ChaCha20::new(&rfc_key());
        let nonce: [u8; NONCE_LEN] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = cipher.block(&nonce, 1);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 8439 §2.4.2: ChaCha20 encryption test vector ("sunscreen" text).
    #[test]
    fn rfc8439_encryption_vector() {
        let cipher = ChaCha20::new(&rfc_key());
        let nonce: [u8; NONCE_LEN] = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = cipher.apply_copy(&nonce, 1, plaintext);
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        let expected_suffix: [u8; 8] = [0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d];
        assert_eq!(&ct[..16], &expected_prefix);
        assert_eq!(&ct[ct.len() - 8..], &expected_suffix);
        assert_eq!(ct.len(), plaintext.len());
    }

    #[test]
    fn apply_twice_roundtrips() {
        let cipher = ChaCha20::new(&rfc_key());
        let nonce = [7u8; NONCE_LEN];
        let mut data = b"some personal data: 123-456-7890".to_vec();
        let original = data.clone();
        cipher.apply(&nonce, 0, &mut data);
        assert_ne!(data, original, "ciphertext must differ from plaintext");
        cipher.apply(&nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_produce_different_keystreams() {
        let cipher = ChaCha20::new(&rfc_key());
        let a = cipher.block(&[0u8; NONCE_LEN], 0);
        let b = cipher.block(&[1u8; NONCE_LEN], 0);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let cipher = ChaCha20::new(&rfc_key());
        let nonce = [3u8; NONCE_LEN];
        // Encrypting 100 bytes at counter 0 must equal block0 || block1 prefix.
        let data = vec![0u8; 100];
        let ct = cipher.apply_copy(&nonce, 0, &data);
        let b0 = cipher.block(&nonce, 0);
        let b1 = cipher.block(&nonce, 1);
        assert_eq!(&ct[..64], &b0[..]);
        assert_eq!(&ct[64..], &b1[..36]);
    }

    #[test]
    fn from_seed_is_deterministic_and_key_sensitive() {
        let a = ChaCha20::from_seed(b"alpha");
        let b = ChaCha20::from_seed(b"alpha");
        let c = ChaCha20::from_seed(b"beta");
        let n = [0u8; NONCE_LEN];
        assert_eq!(a.block(&n, 0), b.block(&n, 0));
        assert_ne!(a.block(&n, 0), c.block(&n, 0));
    }
}
