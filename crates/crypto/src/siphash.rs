//! SipHash-2-4, the keyed 64-bit PRF of Aumasson & Bernstein.
//!
//! Used in two places: as the authentication tag over sealed blocks
//! ([`crate::volume`], [`crate::channel`]) and as the stationary key
//! scrambler behind the benchmark's scrambled-zipfian generator (the same
//! role FNV plays in YCSB — SipHash additionally resists engineered
//! collisions). Validated against the reference test vectors.

/// A SipHash-2-4 instance bound to a 128-bit key (as two u64 halves).
#[derive(Clone, Copy, Debug)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Create a hasher from the two 64-bit key halves.
    pub fn new(k0: u64, k1: u64) -> Self {
        SipHash24 { k0, k1 }
    }

    /// Create a hasher from a 16-byte key (little-endian halves).
    pub fn from_key_bytes(key: &[u8; 16]) -> Self {
        SipHash24 {
            k0: u64::from_le_bytes(key[..8].try_into().unwrap()),
            k1: u64::from_le_bytes(key[8..].try_into().unwrap()),
        }
    }

    /// Hash a byte slice to a 64-bit value.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f_6d65_7073_6575_u64 ^ self.k0;
        let mut v1 = 0x646f_7261_6e64_6f6d_u64 ^ self.k1;
        let mut v2 = 0x6c79_6765_6e65_7261_u64 ^ self.k0;
        let mut v3 = 0x7465_6462_7974_6573_u64 ^ self.k1;

        let len = data.len();
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().unwrap());
            v3 ^= m;
            for _ in 0..2 {
                sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = (len as u64 & 0xff) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..2 {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..4 {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hash a u64 (little-endian encoding). Used by the scrambled-zipfian
    /// generator to spread popular ranks across the key space.
    pub fn hash_u64(&self, x: u64) -> u64 {
        self.hash(&x.to_le_bytes())
    }
}

#[inline(always)]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key 000102...0f and the first rows of the reference vector
    /// table from the SipHash paper (vectors for messages of length 0..8).
    #[test]
    fn reference_vectors() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let hasher = SipHash24::from_key_bytes(&key);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let msg: Vec<u8> = (0u8..8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                hasher.hash(&msg[..len]),
                *want,
                "vector mismatch at message length {len}"
            );
        }
    }

    #[test]
    fn key_sensitivity() {
        let a = SipHash24::new(1, 2);
        let b = SipHash24::new(1, 3);
        assert_ne!(a.hash(b"x"), b.hash(b"x"));
    }

    #[test]
    fn hash_u64_matches_bytes() {
        let h = SipHash24::new(11, 22);
        assert_eq!(
            h.hash_u64(0xdead_beef),
            h.hash(&0xdead_beef_u64.to_le_bytes())
        );
    }

    #[test]
    fn distribution_sanity_low_bits() {
        // Low 3 bits of hashes of 0..8000 should hit all 8 buckets roughly evenly.
        let h = SipHash24::new(42, 43);
        let mut buckets = [0u32; 8];
        for i in 0..8000u64 {
            buckets[(h.hash_u64(i) & 7) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "bucket {i} badly skewed: {count}/8000"
            );
        }
    }
}
