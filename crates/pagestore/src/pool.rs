//! Fixed-capacity buffer pool with clock (second-chance) eviction.
//!
//! The pool only ever holds *clean* pages: mutations accumulate in an
//! op-local transaction map and are installed here after their WAL frames
//! are durable, so eviction is a plain drop — no write-back path exists to
//! get wrong. Pages are pinned only while being parsed; every public store
//! op returns with the pin count back at zero (asserted by the
//! eviction-pressure suite).

use std::collections::HashMap;
use std::sync::Arc;

pub type PageImage = Arc<Vec<u8>>;

struct Slot {
    data: PageImage,
    referenced: bool,
    pins: u32,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub capacity: usize,
    pub resident: usize,
    pub pinned: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

pub struct Pool {
    cap: usize,
    slots: HashMap<u32, Slot>,
    /// Clock ring of resident page ids; order is approximate (eviction
    /// swap-removes), which is fine for second-chance.
    ring: Vec<u32>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    pinned: usize,
}

impl Pool {
    pub fn new(cap: usize) -> Pool {
        // Room for at least a parse pin plus one probe.
        let cap = cap.max(2);
        Pool {
            cap,
            slots: HashMap::with_capacity(cap),
            ring: Vec::with_capacity(cap),
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            pinned: 0,
        }
    }

    pub fn get(&mut self, pid: u32) -> Option<PageImage> {
        match self.slots.get_mut(&pid) {
            Some(slot) => {
                slot.referenced = true;
                self.hits += 1;
                Some(Arc::clone(&slot.data))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a clean page, evicting unpinned pages as needed
    /// to stay within capacity. If every resident page is pinned the pool
    /// temporarily overflows rather than fail — pins are parse-scoped so
    /// the overshoot is bounded by one op's footprint.
    pub fn insert(&mut self, pid: u32, data: PageImage) {
        if let Some(slot) = self.slots.get_mut(&pid) {
            slot.data = data;
            slot.referenced = true;
            return;
        }
        while self.slots.len() >= self.cap {
            if !self.evict_one() {
                break;
            }
        }
        self.slots.insert(
            pid,
            Slot {
                data,
                referenced: true,
                pins: 0,
            },
        );
        self.ring.push(pid);
    }

    fn evict_one(&mut self) -> bool {
        let mut scanned = 0;
        let limit = 2 * self.ring.len() + 1;
        while scanned < limit && !self.ring.is_empty() {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let pid = self.ring[self.hand];
            let slot = self.slots.get_mut(&pid).expect("ring entry has a slot");
            if slot.pins > 0 {
                self.hand += 1;
            } else if slot.referenced {
                slot.referenced = false;
                self.hand += 1;
            } else {
                self.ring.swap_remove(self.hand);
                self.slots.remove(&pid);
                self.evictions += 1;
                return true;
            }
            scanned += 1;
        }
        false
    }

    /// Drop a page image (it was freed or superseded outside the pool).
    pub fn discard(&mut self, pid: u32) {
        if self.slots.remove(&pid).is_some() {
            if let Some(i) = self.ring.iter().position(|&p| p == pid) {
                self.ring.swap_remove(i);
            }
        }
    }

    pub fn pin(&mut self, pid: u32) {
        if let Some(slot) = self.slots.get_mut(&pid) {
            slot.pins += 1;
            self.pinned += 1;
        }
    }

    pub fn unpin(&mut self, pid: u32) {
        if let Some(slot) = self.slots.get_mut(&pid) {
            debug_assert!(slot.pins > 0, "unpin of unpinned page {pid}");
            if slot.pins > 0 {
                slot.pins -= 1;
                self.pinned -= 1;
            }
        }
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity: self.cap,
            resident: self.slots.len(),
            pinned: self.pinned,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(b: u8) -> PageImage {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn capacity_is_enforced_by_eviction() {
        let mut pool = Pool::new(4);
        for pid in 1..=10u32 {
            pool.insert(pid, img(pid as u8));
        }
        let stats = pool.stats();
        assert_eq!(stats.resident, 4);
        assert_eq!(stats.evictions, 6);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut pool = Pool::new(2);
        pool.insert(1, img(1));
        pool.pin(1);
        for pid in 2..=8u32 {
            pool.insert(pid, img(pid as u8));
        }
        assert!(pool.get(1).is_some(), "pinned page must not be evicted");
        pool.unpin(1);
        assert_eq!(pool.stats().pinned, 0);
    }

    #[test]
    fn second_chance_prefers_cold_pages() {
        let mut pool = Pool::new(3);
        pool.insert(1, img(1));
        pool.insert(2, img(2));
        pool.insert(3, img(3));
        // Touch 1 and 3 so page 2 is the coldest.
        pool.get(1);
        pool.get(3);
        // One full clock sweep clears reference bits; the next insert must
        // evict an unreferenced page, and 2 goes cold first.
        pool.insert(4, img(4));
        pool.insert(5, img(5));
        assert_eq!(pool.stats().resident, 3);
    }
}
