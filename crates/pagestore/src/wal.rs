//! Write-ahead log: physical page-image frames with torn-write protection.
//!
//! Layout:
//!
//! ```text
//! header (16 B): magic "GPgWAL01" | page_size u32 | reserved u32
//! frame (24 B + PAGE_SIZE):
//!     page_id u32 | flags u32 (bit0 = COMMIT) | generation u64
//!     | checksum u64 (SipHash-2-4 over page_id, flags, generation, image)
//!     | page image (PAGE_SIZE bytes)
//! ```
//!
//! A transaction appends one frame per dirty page; the last frame carries
//! the COMMIT flag and the store's logical generation. Recovery scans from
//! the header, stops at the first frame whose checksum fails (or that is
//! physically short — a torn tail), then discards any frames after the
//! last COMMIT, so a half-appended transaction vanishes atomically.

use crate::page::PAGE_SIZE;
use crypto::SipHash24;
use std::collections::HashMap;

pub const WAL_HEADER: usize = 16;
pub const FRAME_HEADER: usize = 24;
pub const FRAME_SIZE: usize = FRAME_HEADER + PAGE_SIZE;
pub const FLAG_COMMIT: u32 = 1;

const WAL_MAGIC: &[u8; 8] = b"GPgWAL01";

fn frame_hasher() -> SipHash24 {
    SipHash24::new(0x7761_6c5f_6672_616d, 0x655f_6368_6563_6b21)
}

pub fn header_bytes() -> [u8; WAL_HEADER] {
    let mut h = [0u8; WAL_HEADER];
    h[0..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    h
}

fn frame_checksum(pid: u32, flags: u32, generation: u64, image: &[u8]) -> u64 {
    let mut data = Vec::with_capacity(16 + image.len());
    data.extend_from_slice(&pid.to_le_bytes());
    data.extend_from_slice(&flags.to_le_bytes());
    data.extend_from_slice(&generation.to_le_bytes());
    data.extend_from_slice(image);
    frame_hasher().hash(&data)
}

/// Append one encoded frame to `out`.
pub fn encode_frame(out: &mut Vec<u8>, pid: u32, commit: bool, generation: u64, image: &[u8]) {
    debug_assert_eq!(image.len(), PAGE_SIZE);
    let flags = if commit { FLAG_COMMIT } else { 0 };
    out.extend_from_slice(&pid.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&frame_checksum(pid, flags, generation, image).to_le_bytes());
    out.extend_from_slice(image);
}

/// What a recovery scan of the WAL bytes found.
pub struct WalScan {
    /// Latest committed image offset per page id (offset of the *image*
    /// within the WAL file, header included in the reckoning).
    pub index: HashMap<u32, u64>,
    /// Byte length of the valid committed prefix — the file should be
    /// truncated here; everything beyond is a torn or uncommitted tail.
    pub valid_len: u64,
    /// Generation carried by the last commit frame, if any.
    pub generation: Option<u64>,
    /// Committed frames in the valid prefix.
    pub frames: usize,
}

/// Scan raw WAL bytes: stop at the first invalid frame, then keep only
/// frames up to and including the last COMMIT.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut empty = WalScan {
        index: HashMap::new(),
        valid_len: WAL_HEADER as u64,
        generation: None,
        frames: 0,
    };
    if bytes.len() < WAL_HEADER || &bytes[0..8] != WAL_MAGIC {
        empty.valid_len = 0; // header itself is missing/bad: rewrite it
        return empty;
    }
    let page_size = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    if page_size != PAGE_SIZE {
        empty.valid_len = 0;
        return empty;
    }

    // First pass: find every checksum-valid frame in file order.
    let mut valid: Vec<(u32, u32, u64, u64)> = Vec::new(); // pid, flags, gen, image_off
    let mut off = WAL_HEADER;
    while off + FRAME_SIZE <= bytes.len() {
        let pid = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let flags = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let generation = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
        let stored = u64::from_le_bytes(bytes[off + 16..off + 24].try_into().unwrap());
        let image = &bytes[off + FRAME_HEADER..off + FRAME_SIZE];
        if stored != frame_checksum(pid, flags, generation, image) {
            break;
        }
        valid.push((pid, flags, generation, (off + FRAME_HEADER) as u64));
        off += FRAME_SIZE;
    }

    // Second pass: drop everything after the last commit frame.
    let last_commit = valid.iter().rposition(|f| f.1 & FLAG_COMMIT != 0);
    match last_commit {
        None => empty,
        Some(last) => {
            let mut index = HashMap::new();
            let mut generation = None;
            for &(pid, flags, gen, image_off) in &valid[..=last] {
                index.insert(pid, image_off);
                if flags & FLAG_COMMIT != 0 {
                    generation = Some(gen);
                }
            }
            WalScan {
                index,
                valid_len: (WAL_HEADER + (last + 1) * FRAME_SIZE) as u64,
                generation,
                frames: last + 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(b: u8) -> Vec<u8> {
        vec![b; PAGE_SIZE]
    }

    fn wal_with(frames: &[(u32, bool, u64)]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        for &(pid, commit, gen) in frames {
            encode_frame(&mut bytes, pid, commit, gen, &image(pid as u8));
        }
        bytes
    }

    #[test]
    fn scan_keeps_only_the_committed_prefix() {
        let bytes = wal_with(&[(1, false, 0), (0, true, 7), (2, false, 0)]);
        let scan = scan(&bytes);
        assert_eq!(scan.frames, 2);
        assert_eq!(scan.generation, Some(7));
        assert_eq!(scan.valid_len as usize, WAL_HEADER + 2 * FRAME_SIZE);
        assert!(scan.index.contains_key(&1) && scan.index.contains_key(&0));
        assert!(!scan.index.contains_key(&2), "uncommitted frame dropped");
    }

    #[test]
    fn torn_tail_and_bit_flips_truncate_cleanly() {
        let full = wal_with(&[(1, false, 0), (0, true, 1), (2, false, 1), (0, true, 2)]);
        // Every physical prefix scans without panicking and never yields a
        // generation beyond what was committed within the prefix.
        for cut in 0..full.len() {
            let s = scan(&full[..cut]);
            assert!(s.generation.unwrap_or(0) <= 2);
            assert!(s.valid_len as usize <= cut.max(WAL_HEADER));
        }
        let mut flipped = full.clone();
        flipped[WAL_HEADER + FRAME_SIZE + 40] ^= 1; // corrupt second frame
        let s = scan(&flipped);
        assert_eq!(s.frames, 0, "commit after corruption must not count");
    }

    #[test]
    fn later_images_shadow_earlier_ones() {
        let mut bytes = header_bytes().to_vec();
        encode_frame(&mut bytes, 3, false, 0, &image(0xAA));
        encode_frame(&mut bytes, 0, true, 1, &image(0x01));
        encode_frame(&mut bytes, 3, false, 0, &image(0xBB));
        encode_frame(&mut bytes, 0, true, 2, &image(0x02));
        let s = scan(&bytes);
        let off = s.index[&3] as usize;
        assert_eq!(bytes[off], 0xBB);
        assert_eq!(s.generation, Some(2));
    }
}
