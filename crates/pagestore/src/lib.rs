//! Disk-native paged record store: the third storage backend.
//!
//! The key-value and relational backends keep the dataset in RAM and use
//! their logs only for replay. This crate stores records *on disk* in
//! slotted 4 KiB pages behind a fixed-capacity buffer pool, indexed by a
//! B+tree keyed by record key, with a physical write-ahead log providing
//! atomic multi-page commits and torn-write protection.
//!
//! # On-disk layout
//!
//! A store is a directory with two files:
//!
//! * `pages.db` — an array of [`page::PAGE_SIZE`] pages. Page 0 is the meta
//!   page (tree root, freelist head, allocation high-water mark, logical
//!   generation, record count); other pages are B+tree internal nodes,
//!   leaves, overflow-chain pages for large values, or freelist links. The
//!   last 8 bytes of every page are a SipHash-2-4 checksum over the page
//!   id and payload, so bit rot and misdirected writes are detected at
//!   read time. See [`page`] for the exact byte spec.
//! * `wal.log` — checksummed page-image frames (see [`wal`]). A commit
//!   appends every page the operation dirtied — the meta page always
//!   among them — with the COMMIT flag on the final frame. The data file
//!   is only touched at checkpoint: flush the newest image of every
//!   WAL-resident page, `fsync` the data file, then truncate the WAL.
//!
//! Recovery scans the WAL, truncates the first torn or corrupt frame and
//! everything after it, discards any trailing frames past the last COMMIT,
//! and serves subsequent reads from the surviving frames (newest image
//! wins) falling back to the data file. A crash at *any* byte boundary
//! therefore lands the store on some committed prefix of its history —
//! never a half-applied operation.
//!
//! # Semantics
//!
//! Expiry mirrors the key-value store exactly — lazy reap-on-access with
//! an inclusive deadline boundary (`deadline <= now` is expired), reads
//! destroying expired records and notifying the expiry listener, and
//! `record_count` counting past-due-but-unreaped entries — so the
//! store-equivalence proptest can demand byte-identical behaviour from
//! both backends. Record values are sealed at rest with the workspace
//! [`crypto::Volume`] (ChaCha20 + SipHash tag) by default.

pub mod page;
pub mod pool;
pub mod wal;

use page::{
    internal_size, leaf_size, page_type, parse_free, parse_internal, parse_leaf, parse_overflow,
    serialize_free, serialize_internal, serialize_leaf, serialize_overflow, verify_page, Internal,
    Leaf, LeafEntry, Meta, ValueRef, INLINE_VALUE_MAX, OVERFLOW_DATA, T_INTERNAL, T_LEAF,
};
pub use page::{KEY_MAX, PAGE_SIZE};
pub use pool::PoolStats;

use clock::SharedClock;
use crypto::Volume;
use parking_lot::Mutex;
use pool::{PageImage, Pool};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Store-level errors. `Corrupt` is the load-bearing variant: every
/// checksum mismatch, truncated field, or structural impossibility in an
/// on-disk byte surfaces here — never as a panic and never as wrong data.
#[derive(Debug)]
pub enum Error {
    Io(std::io::Error),
    Corrupt(String),
    /// Key longer than [`KEY_MAX`] bytes (tenant prefix included).
    KeyTooLong(usize),
}

impl Error {
    fn corrupt(msg: impl Into<String>) -> Error {
        Error::Corrupt(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "pagestore io: {e}"),
            Error::Corrupt(msg) => write!(f, "pagestore corrupt: {msg}"),
            Error::KeyTooLong(n) => write!(f, "pagestore key too long: {n} > {KEY_MAX}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Callback fired (with the logical key) whenever the store itself reaps
/// an expired record — lazily on access, during a scan, or in a purge.
pub type ExpiryListener = Arc<dyn Fn(&str) + Send + Sync>;

/// Tuning knobs. The defaults suit the conformance/benchmark scale; the
/// eviction-pressure suite runs with `pool_pages` at ~1% of the dataset.
#[derive(Debug, Clone)]
pub struct PageStoreConfig {
    /// Buffer-pool capacity in pages (min 2). 256 pages = 1 MiB resident.
    pub pool_pages: usize,
    /// Checkpoint (flush WAL images into the data file, truncate the WAL)
    /// once this many frames accumulate.
    pub checkpoint_frames: usize,
    /// `fsync` the WAL on every commit. Off by default (the benchmark
    /// posture, like the kvstore's everysec AOF); checkpoints always sync.
    pub fsync_wal: bool,
    /// Seal record values at rest with the workspace ChaCha20 volume.
    pub encrypt_at_rest: bool,
}

impl Default for PageStoreConfig {
    fn default() -> PageStoreConfig {
        PageStoreConfig {
            pool_pages: 256,
            checkpoint_frames: 512,
            fsync_wal: false,
            encrypt_at_rest: true,
        }
    }
}

/// How `open` came up: what recovery found in the WAL.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryInfo {
    /// Committed frames replayed from the WAL.
    pub wal_frames: usize,
    /// Torn / uncommitted tail bytes truncated away.
    pub truncated_bytes: u64,
    /// Logical generation the store came up at.
    pub generation: u64,
}

impl fmt::Display for RecoveryInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered {} WAL frames (generation {}, {} torn bytes truncated)",
            self.wal_frames, self.generation, self.truncated_bytes
        )
    }
}

/// Well-known at-rest sealing seed (benchmark posture, like the default
/// transport PSK; production would inject one).
const SEAL_SEED: &[u8] = b"pagestore-at-rest-volume-seed-v1";

const MAX_TREE_DEPTH: usize = 64;

struct TxState {
    dirty: HashMap<u32, Vec<u8>>,
    meta: Meta,
}

struct Inner {
    data: File,
    wal: File,
    wal_len: u64,
    /// page id -> offset of its newest committed image inside `wal.log`.
    wal_index: HashMap<u32, u64>,
    pool: Pool,
    meta: Meta,
    config: PageStoreConfig,
    volume: Option<Volume>,
    recovery: RecoveryInfo,
}

/// The disk-native paged store. All operations are internally synchronized
/// (one mutex; parallelism comes from sharding, as everywhere else in the
/// workspace) and safe to share via `Arc`.
pub struct PageStore {
    inner: Mutex<Inner>,
    clock: SharedClock,
    listener: Mutex<Option<ExpiryListener>>,
    dir: PathBuf,
}

impl PageStore {
    /// Open (or create) a store in `dir`, running WAL recovery.
    pub fn open(
        dir: impl AsRef<Path>,
        config: PageStoreConfig,
        clock: SharedClock,
    ) -> Result<Arc<PageStore>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("pages.db"))?;
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("wal.log"))?;

        let mut wal_bytes = Vec::new();
        wal.read_to_end(&mut wal_bytes)?;
        let scan = wal::scan(&wal_bytes);
        let truncated = (wal_bytes.len() as u64).saturating_sub(scan.valid_len);
        let wal_len = if scan.valid_len < wal::WAL_HEADER as u64 {
            // Missing or unusable header: start the log over.
            wal.set_len(0)?;
            wal.seek(SeekFrom::Start(0))?;
            wal.write_all(&wal::header_bytes())?;
            wal::WAL_HEADER as u64
        } else {
            // Physically drop the torn / uncommitted tail so appends never
            // interleave with garbage.
            wal.set_len(scan.valid_len)?;
            scan.valid_len
        };
        wal.sync_all()?;

        let meta = if let Some(&off) = scan.index.get(&0) {
            let image = &wal_bytes[off as usize..off as usize + PAGE_SIZE];
            Meta::parse(image)?
        } else {
            let data_len = data.metadata()?.len();
            if data_len >= PAGE_SIZE as u64 {
                let mut image = vec![0u8; PAGE_SIZE];
                data.seek(SeekFrom::Start(0))?;
                data.read_exact(&mut image)?;
                Meta::parse(&image)?
            } else {
                // Fresh store: write the initial meta page directly (the
                // only non-WAL data-file write; nothing precedes it).
                let meta = Meta::fresh();
                data.seek(SeekFrom::Start(0))?;
                data.write_all(&meta.serialize())?;
                data.sync_all()?;
                meta
            }
        };

        let recovery = RecoveryInfo {
            wal_frames: scan.frames,
            truncated_bytes: truncated,
            generation: meta.generation,
        };
        let volume = config.encrypt_at_rest.then(|| Volume::new(SEAL_SEED));
        Ok(Arc::new(PageStore {
            inner: Mutex::new(Inner {
                data,
                wal,
                wal_len,
                wal_index: scan.index,
                pool: Pool::new(config.pool_pages),
                meta,
                config,
                volume,
                recovery,
            }),
            clock,
            listener: Mutex::new(None),
            dir,
        }))
    }

    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the last `open` replayed from the WAL.
    pub fn recovery(&self) -> RecoveryInfo {
        self.inner.lock().recovery
    }

    pub fn set_expiry_listener(&self, listener: ExpiryListener) {
        *self.listener.lock() = Some(listener);
    }

    fn notify_expired(&self, keys: &[String]) {
        if keys.is_empty() {
            return;
        }
        let listener = self.listener.lock().clone();
        if let Some(listener) = listener {
            for key in keys {
                listener(key);
            }
        }
    }

    fn now_ms(&self) -> u64 {
        self.clock.now().as_millis()
    }

    /// Point lookup with kvstore-style lazy reaping: an expired record is
    /// destroyed (a real committed transaction), the expiry listener
    /// fires, and the read reports absence.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let entry = match inner.lookup(None, key.as_bytes())? {
            Some(entry) => entry,
            None => return Ok(None),
        };
        if is_expired(entry.deadline_ms, now) {
            inner.reap(std::slice::from_ref(&entry.key))?;
            drop(inner);
            self.notify_expired(&[key.to_string()]);
            return Ok(None);
        }
        let value = inner.load_value(None, &entry.value)?;
        inner.unseal(&value)
    }

    /// Insert a fresh record. Returns `false` when a *live* record already
    /// holds the key (the caller's AlreadyExists); an expired occupant is
    /// lazily reaped first — exactly the kvstore's EXISTS-probe semantics.
    pub fn insert(&self, key: &str, value: &[u8], deadline_ms: Option<u64>) -> Result<bool> {
        if key.len() > KEY_MAX {
            return Err(Error::KeyTooLong(key.len()));
        }
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let occupant = inner.lookup(None, key.as_bytes())?;
        let reaped = match &occupant {
            Some(e) if !is_expired(e.deadline_ms, now) => return Ok(false),
            Some(_) => true,
            None => false,
        };
        let mut tx = inner.begin();
        let entry = inner.make_entry(&mut tx, key, value, deadline_ms)?;
        if let Some(old) = inner.tree_insert(&mut tx, entry)? {
            inner.free_value(&mut tx, &old.value)?;
        } else {
            tx.meta.record_count += 1;
        }
        inner.commit(tx, true)?;
        drop(inner);
        if reaped {
            self.notify_expired(&[key.to_string()]);
        }
        Ok(true)
    }

    /// Insert-or-replace under an explicit absolute deadline — the rewrite
    /// and rebalance paths, where the caller owns deadline policy.
    pub fn upsert(&self, key: &str, value: &[u8], deadline_ms: Option<u64>) -> Result<()> {
        if key.len() > KEY_MAX {
            return Err(Error::KeyTooLong(key.len()));
        }
        let mut inner = self.inner.lock();
        let mut tx = inner.begin();
        let entry = inner.make_entry(&mut tx, key, value, deadline_ms)?;
        if let Some(old) = inner.tree_insert(&mut tx, entry)? {
            inner.free_value(&mut tx, &old.value)?;
        } else {
            tx.meta.record_count += 1;
        }
        inner.commit(tx, true)
    }

    /// Erase a record. Any physically present entry counts — expired but
    /// unreaped included — and the expiry listener stays silent, mirroring
    /// the kvstore's DEL exactly (it removes the dict entry whatever its
    /// deadline says; the engine's purge path relies on that count).
    pub fn remove(&self, key: &str) -> Result<bool> {
        let mut inner = self.inner.lock();
        let entry = match inner.lookup(None, key.as_bytes())? {
            Some(entry) => entry,
            None => return Ok(false),
        };
        inner.reap(&[entry.key])?;
        Ok(true)
    }

    /// The record's native absolute deadline, side-effect-free: an expired
    /// but unreaped record still reports its (lapsed) deadline, exactly
    /// like the kvstore's pure `expiry_at` probe.
    pub fn deadline_ms(&self, key: &str) -> Result<Option<u64>> {
        let mut inner = self.inner.lock();
        Ok(inner
            .lookup(None, key.as_bytes())?
            .and_then(|e| e.deadline_ms))
    }

    /// Every live record in key order. Expired records encountered are
    /// reaped (one committed transaction) and the listener fires for each
    /// — the ordered-walk equivalent of the kvstore's cursor-walk-then-GET
    /// scan, which also destroys what it finds expired.
    pub fn scan(&self) -> Result<Vec<(String, Vec<u8>)>> {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let entries = inner.walk_leaves()?;
        let mut expired = Vec::new();
        let mut live = Vec::new();
        for entry in entries {
            if is_expired(entry.deadline_ms, now) {
                expired.push(entry.key);
            } else {
                let key = utf8_key(&entry.key)?;
                let value = inner.load_value(None, &entry.value)?;
                let value = inner.unseal(&value)?.expect("sealed value present");
                live.push((key, value));
            }
        }
        let expired_keys: Vec<String> =
            expired.iter().map(|k| utf8_key(k)).collect::<Result<_>>()?;
        if !expired.is_empty() {
            inner.reap(&expired)?;
        }
        drop(inner);
        self.notify_expired(&expired_keys);
        Ok(live)
    }

    /// Keys past their deadline, **without** reaping — the side-effect-free
    /// enumeration the multi-tenant purge path requires.
    pub fn expired_keys(&self) -> Result<Vec<String>> {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let entries = inner.walk_leaves()?;
        entries
            .into_iter()
            .filter(|e| is_expired(e.deadline_ms, now))
            .map(|e| utf8_key(&e.key))
            .collect()
    }

    /// Synchronously erase everything past its deadline.
    pub fn purge_expired(&self) -> Result<usize> {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let expired: Vec<Vec<u8>> = inner
            .walk_leaves()?
            .into_iter()
            .filter(|e| is_expired(e.deadline_ms, now))
            .map(|e| e.key)
            .collect();
        let keys: Vec<String> = expired.iter().map(|k| utf8_key(k)).collect::<Result<_>>()?;
        if !expired.is_empty() {
            inner.reap(&expired)?;
        }
        drop(inner);
        self.notify_expired(&keys);
        Ok(keys.len())
    }

    /// Entries in the tree, expired-but-unreaped included (DBSIZE
    /// semantics, matching the kvstore).
    pub fn record_count(&self) -> usize {
        self.inner.lock().meta.record_count as usize
    }

    /// Logical mutation generation: advanced by every committed
    /// transaction (including lazy reaps — they are real committed
    /// mutations here), carried in every WAL commit frame, and reproduced
    /// exactly by recovery. This is what `persistence_generation` exposes
    /// so index snapshots can be trusted across restarts.
    pub fn generation(&self) -> u64 {
        self.inner.lock().meta.generation
    }

    /// Flush every WAL-resident page image into the data file, `fsync` it,
    /// and truncate the WAL. Idempotent; crash-safe at any point (the WAL
    /// is only truncated after the data file is durable).
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.lock().checkpoint()
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().pool.stats()
    }

    /// Pages currently pinned in the buffer pool — the pin-leak probe: it
    /// must read 0 between operations.
    pub fn pinned_pages(&self) -> usize {
        self.inner.lock().pool.stats().pinned
    }

    /// Bytes on disk (data file + WAL).
    pub fn disk_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        let data = inner.data.metadata().map(|m| m.len()).unwrap_or(0);
        data + inner.wal_len
    }

    /// Whether values are sealed at rest.
    pub fn encrypt_at_rest(&self) -> bool {
        self.inner.lock().volume.is_some()
    }
}

fn is_expired(deadline_ms: Option<u64>, now_ms: u64) -> bool {
    deadline_ms.is_some_and(|at| at <= now_ms)
}

fn utf8_key(key: &[u8]) -> Result<String> {
    String::from_utf8(key.to_vec()).map_err(|_| Error::corrupt("non-utf8 key bytes"))
}

impl Inner {
    fn begin(&self) -> TxState {
        TxState {
            dirty: HashMap::new(),
            meta: self.meta.clone(),
        }
    }

    /// Read a page image through pool -> WAL index -> data file.
    fn read_page(&mut self, pid: u32) -> Result<PageImage> {
        if let Some(image) = self.pool.get(pid) {
            return Ok(image);
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        if let Some(&off) = self.wal_index.get(&pid) {
            self.wal.seek(SeekFrom::Start(off))?;
            self.wal.read_exact(&mut buf)?;
        } else {
            if pid >= self.meta.page_count {
                return Err(Error::corrupt(format!("page {pid} beyond allocation")));
            }
            self.data
                .seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))?;
            self.data.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    Error::corrupt(format!("page {pid} beyond data file"))
                } else {
                    Error::Io(e)
                }
            })?;
        }
        verify_page(pid, &buf)?;
        let image: PageImage = Arc::new(buf);
        self.pool.insert(pid, Arc::clone(&image));
        Ok(image)
    }

    /// Run `f` over the page image with the pool slot pinned for the
    /// duration — the only way tree code touches page bytes, so pins
    /// structurally return to zero at the end of every operation.
    fn with_image<T>(
        &mut self,
        tx: Option<&TxState>,
        pid: u32,
        f: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Result<T> {
        if let Some(tx) = tx {
            if let Some(image) = tx.dirty.get(&pid) {
                return f(image);
            }
        }
        let image = self.read_page(pid)?;
        self.pool.pin(pid);
        let out = f(&image);
        self.pool.unpin(pid);
        out
    }

    fn tx_alloc(&mut self, tx: &mut TxState) -> Result<u32> {
        if tx.meta.free_head != 0 {
            let pid = tx.meta.free_head;
            let next = self.with_image(Some(tx), pid, |img| parse_free(pid, img))?;
            tx.meta.free_head = next;
            Ok(pid)
        } else {
            let pid = tx.meta.page_count;
            tx.meta.page_count = tx
                .meta
                .page_count
                .checked_add(1)
                .ok_or_else(|| Error::corrupt("page id space exhausted"))?;
            Ok(pid)
        }
    }

    fn tx_free(&mut self, tx: &mut TxState, pid: u32) {
        tx.dirty.insert(pid, serialize_free(pid, tx.meta.free_head));
        tx.meta.free_head = pid;
    }

    /// Append all dirty pages (plus the meta page) as one WAL transaction,
    /// install the clean images in the pool, and adopt the new meta.
    /// `bump` advances the logical generation.
    fn commit(&mut self, mut tx: TxState, bump: bool) -> Result<()> {
        if bump {
            tx.meta.generation += 1;
        }
        tx.dirty.insert(0, tx.meta.serialize());
        let mut pids: Vec<u32> = tx.dirty.keys().copied().collect();
        pids.sort_unstable();
        let mut buf = Vec::with_capacity(pids.len() * wal::FRAME_SIZE);
        let mut offsets = Vec::with_capacity(pids.len());
        for (i, &pid) in pids.iter().enumerate() {
            let image = &tx.dirty[&pid];
            offsets.push((
                pid,
                self.wal_len + buf.len() as u64 + wal::FRAME_HEADER as u64,
            ));
            wal::encode_frame(
                &mut buf,
                pid,
                i == pids.len() - 1,
                tx.meta.generation,
                image,
            );
        }
        self.wal.seek(SeekFrom::Start(self.wal_len))?;
        self.wal.write_all(&buf)?;
        if self.config.fsync_wal {
            self.wal.sync_data()?;
        }
        self.wal_len += buf.len() as u64;
        for (pid, off) in offsets {
            self.wal_index.insert(pid, off);
        }
        for (pid, image) in tx.dirty {
            self.pool.insert(pid, Arc::new(image));
        }
        self.meta = tx.meta;
        let frames = (self.wal_len - wal::WAL_HEADER as u64) / wal::FRAME_SIZE as u64;
        if frames >= self.config.checkpoint_frames as u64 {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        if self.wal_index.is_empty() {
            return Ok(());
        }
        let mut image = vec![0u8; PAGE_SIZE];
        let entries: Vec<(u32, u64)> = self.wal_index.iter().map(|(&p, &o)| (p, o)).collect();
        for (pid, off) in entries {
            self.wal.seek(SeekFrom::Start(off))?;
            self.wal.read_exact(&mut image)?;
            self.data
                .seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))?;
            self.data.write_all(&image)?;
        }
        // Order matters: the WAL may only shrink after the data file is
        // durable, so a crash between the two replays the same images.
        self.data.sync_all()?;
        self.wal.set_len(wal::WAL_HEADER as u64)?;
        self.wal.sync_all()?;
        self.wal_len = wal::WAL_HEADER as u64;
        self.wal_index.clear();
        Ok(())
    }

    // ---- value storage -------------------------------------------------

    fn unseal(&self, stored: &[u8]) -> Result<Option<Vec<u8>>> {
        match &self.volume {
            Some(volume) => match volume.open(stored) {
                Ok((_, plaintext)) => Ok(Some(plaintext)),
                Err(e) => Err(Error::corrupt(format!("sealed value: {e:?}"))),
            },
            None => Ok(Some(stored.to_vec())),
        }
    }

    fn make_entry(
        &mut self,
        tx: &mut TxState,
        key: &str,
        value: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<LeafEntry> {
        let stored = match &self.volume {
            Some(volume) => {
                let sealed = volume.seal(tx.meta.seal_counter, value);
                tx.meta.seal_counter += 1;
                sealed
            }
            None => value.to_vec(),
        };
        let value_ref = if stored.len() <= INLINE_VALUE_MAX {
            ValueRef::Inline(stored)
        } else {
            // Spill to an overflow chain, head first in key order of
            // allocation (chunks are linked head -> tail).
            let chunks: Vec<&[u8]> = stored.chunks(OVERFLOW_DATA).collect();
            let pids: Vec<u32> = (0..chunks.len())
                .map(|_| self.tx_alloc(tx))
                .collect::<Result<_>>()?;
            for (i, chunk) in chunks.iter().enumerate() {
                let next = pids.get(i + 1).copied().unwrap_or(0);
                tx.dirty
                    .insert(pids[i], serialize_overflow(pids[i], next, chunk));
            }
            ValueRef::Overflow {
                total_len: stored.len() as u32,
                head: pids[0],
            }
        };
        Ok(LeafEntry {
            key: key.as_bytes().to_vec(),
            deadline_ms,
            value: value_ref,
        })
    }

    fn load_value(&mut self, tx: Option<&TxState>, value: &ValueRef) -> Result<Vec<u8>> {
        match value {
            ValueRef::Inline(v) => Ok(v.clone()),
            ValueRef::Overflow { total_len, head } => {
                let mut out = Vec::with_capacity(*total_len as usize);
                let mut pid = *head;
                let mut hops = 0u32;
                while pid != 0 {
                    hops += 1;
                    if hops
                        > self
                            .meta
                            .page_count
                            .max(tx.map_or(0, |t| t.meta.page_count))
                    {
                        return Err(Error::corrupt("overflow chain cycle"));
                    }
                    let (next, chunk) = self.with_image(tx, pid, |img| parse_overflow(pid, img))?;
                    out.extend_from_slice(&chunk);
                    pid = next;
                }
                if out.len() != *total_len as usize {
                    return Err(Error::corrupt(format!(
                        "overflow length {} != {total_len}",
                        out.len()
                    )));
                }
                Ok(out)
            }
        }
    }

    fn free_value(&mut self, tx: &mut TxState, value: &ValueRef) -> Result<()> {
        if let ValueRef::Overflow { head, .. } = value {
            let mut pid = *head;
            let mut chain = Vec::new();
            let mut hops = 0u32;
            while pid != 0 {
                hops += 1;
                if hops > tx.meta.page_count {
                    return Err(Error::corrupt("overflow chain cycle"));
                }
                let (next, _) = self.with_image(Some(tx), pid, |img| parse_overflow(pid, img))?;
                chain.push(pid);
                pid = next;
            }
            for pid in chain {
                self.tx_free(tx, pid);
            }
        }
        Ok(())
    }

    // ---- B+tree --------------------------------------------------------

    /// Descend to the entry for `key`, side-effect-free.
    fn lookup(&mut self, tx: Option<&TxState>, key: &[u8]) -> Result<Option<LeafEntry>> {
        let root = tx.map_or(self.meta.root, |t| t.meta.root);
        if root == 0 {
            return Ok(None);
        }
        let mut pid = root;
        for _ in 0..MAX_TREE_DEPTH {
            enum Step {
                Down(u32),
                Found(Option<LeafEntry>),
            }
            let step = self.with_image(tx, pid, |img| match page_type(pid, img)? {
                T_INTERNAL => {
                    let node = parse_internal(pid, img)?;
                    Ok(Step::Down(descend_child(&node, key, pid)?))
                }
                T_LEAF => {
                    let leaf = parse_leaf(pid, img)?;
                    let found = leaf
                        .entries
                        .binary_search_by(|e| e.key.as_slice().cmp(key))
                        .ok()
                        .map(|i| leaf.entries[i].clone());
                    Ok(Step::Found(found))
                }
                t => Err(Error::corrupt(format!("page {pid}: type {t} in tree path"))),
            })?;
            match step {
                Step::Down(child) => pid = child,
                Step::Found(found) => return Ok(found),
            }
        }
        Err(Error::corrupt("tree deeper than MAX_TREE_DEPTH (cycle?)"))
    }

    /// Insert or replace `entry`, splitting as needed. Returns the
    /// replaced entry when the key already existed.
    fn tree_insert(&mut self, tx: &mut TxState, entry: LeafEntry) -> Result<Option<LeafEntry>> {
        if tx.meta.root == 0 {
            let pid = self.tx_alloc(tx)?;
            let leaf = Leaf {
                next: 0,
                entries: vec![entry],
            };
            tx.dirty.insert(pid, serialize_leaf(pid, &leaf));
            tx.meta.root = pid;
            return Ok(None);
        }
        // Descend, remembering the internal path for split propagation.
        let mut path = Vec::new();
        let mut pid = tx.meta.root;
        let mut leaf = loop {
            if path.len() > MAX_TREE_DEPTH {
                return Err(Error::corrupt("tree deeper than MAX_TREE_DEPTH (cycle?)"));
            }
            enum Step {
                Down(u32),
                Leaf(Leaf),
            }
            let key = entry.key.as_slice();
            let step = self.with_image(Some(tx), pid, |img| match page_type(pid, img)? {
                T_INTERNAL => {
                    let node = parse_internal(pid, img)?;
                    Ok(Step::Down(descend_child(&node, key, pid)?))
                }
                T_LEAF => Ok(Step::Leaf(parse_leaf(pid, img)?)),
                t => Err(Error::corrupt(format!("page {pid}: type {t} in tree path"))),
            })?;
            match step {
                Step::Down(child) => {
                    path.push(pid);
                    pid = child;
                }
                Step::Leaf(leaf) => break leaf,
            }
        };

        let old = match leaf
            .entries
            .binary_search_by(|e| e.key.as_slice().cmp(&entry.key))
        {
            Ok(i) => Some(std::mem::replace(&mut leaf.entries[i], entry)),
            Err(i) => {
                leaf.entries.insert(i, entry);
                None
            }
        };
        if leaf_size(&leaf) <= page::PAYLOAD {
            tx.dirty.insert(pid, serialize_leaf(pid, &leaf));
            return Ok(old);
        }

        // Split the leaf, then walk the path upward inserting separators.
        let (mut sep, mut new_child) = self.split_leaf(tx, pid, leaf)?;
        let mut left = pid;
        while let Some(parent_pid) = path.pop() {
            let mut node =
                self.with_image(Some(tx), parent_pid, |img| parse_internal(parent_pid, img))?;
            let idx = node
                .keys
                .partition_point(|k| k.as_slice() <= sep.as_slice());
            node.keys.insert(idx, sep.clone());
            node.children.insert(idx + 1, new_child);
            if internal_size(&node) <= page::PAYLOAD {
                tx.dirty
                    .insert(parent_pid, serialize_internal(parent_pid, &node));
                return Ok(old);
            }
            let (next_sep, next_child) = self.split_internal(tx, parent_pid, node)?;
            sep = next_sep;
            new_child = next_child;
            left = parent_pid;
        }
        // The split reached the root: grow the tree by one level.
        let new_root = self.tx_alloc(tx)?;
        let root_node = Internal {
            keys: vec![sep],
            children: vec![left, new_child],
        };
        tx.dirty
            .insert(new_root, serialize_internal(new_root, &root_node));
        tx.meta.root = new_root;
        Ok(old)
    }

    fn split_leaf(&mut self, tx: &mut TxState, pid: u32, leaf: Leaf) -> Result<(Vec<u8>, u32)> {
        let total: usize = leaf.entries.iter().map(LeafEntry::size).sum();
        let mut left_entries = Vec::new();
        let mut right_entries = Vec::new();
        let mut left_bytes = 0usize;
        for entry in leaf.entries {
            let size = entry.size();
            let fits = left_bytes + size + 7 <= page::PAYLOAD;
            if right_entries.is_empty() && left_bytes < total / 2 && fits {
                left_bytes += size;
                left_entries.push(entry);
            } else {
                right_entries.push(entry);
            }
        }
        debug_assert!(!left_entries.is_empty() && !right_entries.is_empty());
        let right_pid = self.tx_alloc(tx)?;
        let sep = right_entries[0].key.clone();
        let right = Leaf {
            next: leaf.next,
            entries: right_entries,
        };
        let left = Leaf {
            next: right_pid,
            entries: left_entries,
        };
        tx.dirty.insert(pid, serialize_leaf(pid, &left));
        tx.dirty
            .insert(right_pid, serialize_leaf(right_pid, &right));
        Ok((sep, right_pid))
    }

    fn split_internal(
        &mut self,
        tx: &mut TxState,
        pid: u32,
        node: Internal,
    ) -> Result<(Vec<u8>, u32)> {
        let mid = node.keys.len() / 2;
        let sep = node.keys[mid].clone();
        let right = Internal {
            keys: node.keys[mid + 1..].to_vec(),
            children: node.children[mid + 1..].to_vec(),
        };
        let left = Internal {
            keys: node.keys[..mid].to_vec(),
            children: node.children[..=mid].to_vec(),
        };
        let right_pid = self.tx_alloc(tx)?;
        tx.dirty.insert(pid, serialize_internal(pid, &left));
        tx.dirty
            .insert(right_pid, serialize_internal(right_pid, &right));
        Ok((sep, right_pid))
    }

    /// Remove `key` from its leaf (no rebalancing — freed space is reused
    /// by the freelist; empty leaves stay linked and are skipped by
    /// scans). Returns the removed entry.
    fn tree_remove(&mut self, tx: &mut TxState, key: &[u8]) -> Result<Option<LeafEntry>> {
        if tx.meta.root == 0 {
            return Ok(None);
        }
        let mut pid = tx.meta.root;
        for _ in 0..MAX_TREE_DEPTH {
            enum Step {
                Down(u32),
                Leaf(Leaf),
            }
            let step = self.with_image(Some(tx), pid, |img| match page_type(pid, img)? {
                T_INTERNAL => {
                    let node = parse_internal(pid, img)?;
                    Ok(Step::Down(descend_child(&node, key, pid)?))
                }
                T_LEAF => Ok(Step::Leaf(parse_leaf(pid, img)?)),
                t => Err(Error::corrupt(format!("page {pid}: type {t} in tree path"))),
            })?;
            match step {
                Step::Down(child) => pid = child,
                Step::Leaf(mut leaf) => {
                    match leaf.entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
                        Ok(i) => {
                            let removed = leaf.entries.remove(i);
                            tx.dirty.insert(pid, serialize_leaf(pid, &leaf));
                            return Ok(Some(removed));
                        }
                        Err(_) => return Ok(None),
                    }
                }
            }
        }
        Err(Error::corrupt("tree deeper than MAX_TREE_DEPTH (cycle?)"))
    }

    /// Reap a batch of keys as one committed transaction. The caller fires
    /// the expiry listener (outside the lock) for keys that were expired.
    fn reap(&mut self, keys: &[Vec<u8>]) -> Result<()> {
        let mut tx = self.begin();
        for key in keys {
            if let Some(entry) = self.tree_remove(&mut tx, key)? {
                self.free_value(&mut tx, &entry.value)?;
                tx.meta.record_count = tx.meta.record_count.saturating_sub(1);
            }
        }
        self.commit(tx, true)
    }

    /// All entries in key order via the leftmost-leaf chain walk.
    fn walk_leaves(&mut self) -> Result<Vec<LeafEntry>> {
        if self.meta.root == 0 {
            return Ok(Vec::new());
        }
        // Descend to the leftmost leaf.
        let mut pid = self.meta.root;
        for _ in 0..MAX_TREE_DEPTH {
            enum Step {
                Down(u32),
                AtLeaf,
            }
            let step = self.with_image(None, pid, |img| match page_type(pid, img)? {
                T_INTERNAL => {
                    let node = parse_internal(pid, img)?;
                    let child = *node
                        .children
                        .first()
                        .ok_or_else(|| Error::corrupt(format!("page {pid}: no children")))?;
                    Ok(Step::Down(child))
                }
                T_LEAF => Ok(Step::AtLeaf),
                t => Err(Error::corrupt(format!("page {pid}: type {t} in tree path"))),
            })?;
            match step {
                Step::Down(child) => pid = child,
                Step::AtLeaf => break,
            }
        }
        // Follow the leaf chain, guarding against cycles in corrupt files.
        let mut out = Vec::new();
        let mut hops = 0u32;
        while pid != 0 {
            hops += 1;
            if hops > self.meta.page_count {
                return Err(Error::corrupt("leaf chain cycle"));
            }
            let leaf = self.with_image(None, pid, |img| parse_leaf(pid, img))?;
            out.extend(leaf.entries);
            pid = leaf.next;
        }
        Ok(out)
    }
}

fn descend_child(node: &Internal, key: &[u8], pid: u32) -> Result<u32> {
    if node.children.len() != node.keys.len() + 1 || node.children.is_empty() {
        return Err(Error::corrupt(format!("page {pid}: malformed internal")));
    }
    let idx = node.keys.partition_point(|k| k.as_slice() <= key);
    Ok(node.children[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use clock::Clock;

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "pagestore-test-{}-{}-{}",
            tag,
            std::process::id(),
            seq
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, pool: usize) -> Arc<PageStore> {
        let config = PageStoreConfig {
            pool_pages: pool,
            ..Default::default()
        };
        PageStore::open(dir, config, clock::wall()).unwrap()
    }

    #[test]
    fn crud_roundtrip_with_ordered_scan() {
        let dir = scratch("crud");
        let store = open(&dir, 8);
        for i in (0..100).rev() {
            assert!(store
                .insert(&format!("k{i:03}"), format!("v{i}").as_bytes(), None)
                .unwrap());
        }
        assert!(!store.insert("k050", b"dup", None).unwrap(), "collision");
        assert_eq!(store.get("k007").unwrap().unwrap(), b"v7");
        assert_eq!(store.record_count(), 100);
        let scan = store.scan().unwrap();
        assert_eq!(scan.len(), 100);
        let keys: Vec<&str> = scan.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "scan must come back in key order");
        assert!(store.remove("k007").unwrap());
        assert!(!store.remove("k007").unwrap());
        assert_eq!(store.record_count(), 99);
    }

    #[test]
    fn big_values_spill_to_overflow_and_come_back() {
        let dir = scratch("overflow");
        let store = open(&dir, 4);
        let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        store.insert("big", &big, None).unwrap();
        assert_eq!(store.get("big").unwrap().unwrap(), big);
        let big2: Vec<u8> = vec![7u8; 9_000];
        store.upsert("big", &big2, None).unwrap();
        assert_eq!(store.get("big").unwrap().unwrap(), big2);
        store.remove("big").unwrap();
        assert_eq!(store.get("big").unwrap(), None);
        // Freed overflow pages are reused, not leaked: page_count should
        // not grow when the same value is written again.
        let before = store.inner.lock().meta.page_count;
        store.insert("big", &big, None).unwrap();
        let after = store.inner.lock().meta.page_count;
        assert!(after <= before + 1, "freelist reuse: {before} -> {after}");
    }

    #[test]
    fn restart_recovers_from_wal_without_checkpoint() {
        let dir = scratch("restart");
        {
            let store = open(&dir, 8);
            for i in 0..50 {
                store.insert(&format!("k{i}"), b"v", None).unwrap();
            }
            store.remove("k10").unwrap();
            // No checkpoint, no close: recovery must come from the WAL.
        }
        let store = open(&dir, 8);
        assert!(store.recovery().wal_frames > 0, "must take the WAL path");
        assert_eq!(store.record_count(), 49);
        assert_eq!(store.get("k10").unwrap(), None);
        assert_eq!(store.get("k11").unwrap().unwrap(), b"v");
        let generation = store.generation();
        drop(store);
        let store = open(&dir, 8);
        assert_eq!(
            store.generation(),
            generation,
            "replay reproduces generation"
        );
    }

    #[test]
    fn checkpoint_then_restart_reads_from_data_file() {
        let dir = scratch("checkpoint");
        {
            let store = open(&dir, 8);
            for i in 0..50 {
                store
                    .insert(&format!("k{i}"), format!("v{i}").as_bytes(), None)
                    .unwrap();
            }
            store.checkpoint().unwrap();
        }
        let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(wal_len, wal::WAL_HEADER as u64, "checkpoint truncates WAL");
        let store = open(&dir, 8);
        assert_eq!(store.recovery().wal_frames, 0);
        assert_eq!(store.record_count(), 50);
        assert_eq!(store.get("k42").unwrap().unwrap(), b"v42");
    }

    #[test]
    fn lazy_expiry_mirrors_kvstore_semantics() {
        let dir = scratch("expiry");
        let sim = clock::sim();
        let store =
            PageStore::open(&dir, PageStoreConfig::default(), sim.clone() as SharedClock).unwrap();
        let reaped = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&reaped);
        store.set_expiry_listener(Arc::new(move |k| sink.lock().push(k.to_string())));

        let t0 = sim.now().as_millis();
        store.insert("a", b"1", Some(t0 + 1000)).unwrap();
        store.insert("b", b"2", None).unwrap();
        sim.sleep(std::time::Duration::from_millis(1000));
        // Inclusive boundary: deadline == now is already expired.
        assert_eq!(store.deadline_ms("a").unwrap(), Some(t0 + 1000));
        assert_eq!(store.record_count(), 2, "unreaped expired key still counts");
        assert_eq!(store.expired_keys().unwrap(), vec!["a".to_string()]);
        assert_eq!(store.record_count(), 2, "expired_keys is side-effect-free");
        assert_eq!(store.get("a").unwrap(), None, "lazy reap on read");
        assert_eq!(store.record_count(), 1);
        assert_eq!(reaped.lock().as_slice(), &["a".to_string()]);
        // Re-insert over the reaped key works; expired occupant reap via
        // insert also fires the listener.
        store.insert("a", b"3", Some(t0 + 1500)).unwrap();
        sim.sleep(std::time::Duration::from_millis(1000));
        assert!(
            store.insert("a", b"4", None).unwrap(),
            "expired occupant replaced"
        );
        assert_eq!(reaped.lock().len(), 2);
        assert_eq!(store.purge_expired().unwrap(), 0);
        assert_eq!(store.scan().unwrap().len(), 2);
    }

    #[test]
    fn tiny_pool_still_serves_large_dataset_and_pins_return_to_zero() {
        let dir = scratch("evict");
        let store = open(&dir, 2);
        for i in 0..2000 {
            store
                .insert(
                    &format!("user-{i:05}"),
                    format!("payload-{i}").as_bytes(),
                    None,
                )
                .unwrap();
            assert_eq!(store.pinned_pages(), 0);
        }
        let stats = store.pool_stats();
        assert!(stats.evictions > 0, "pressure must evict: {stats:?}");
        assert!(stats.resident <= stats.capacity);
        for i in (0..2000).step_by(97) {
            assert_eq!(
                store.get(&format!("user-{i:05}")).unwrap().unwrap(),
                format!("payload-{i}").as_bytes()
            );
            assert_eq!(store.pinned_pages(), 0);
        }
        assert_eq!(store.scan().unwrap().len(), 2000);
        assert_eq!(store.pinned_pages(), 0);
    }

    #[test]
    fn key_length_is_capped() {
        let dir = scratch("keycap");
        let store = open(&dir, 4);
        let long = "k".repeat(KEY_MAX + 1);
        assert!(matches!(
            store.insert(&long, b"v", None),
            Err(Error::KeyTooLong(_))
        ));
    }
}
