//! On-disk page layout: parsing and serialization for every page kind.
//!
//! All multi-byte integers are little-endian. Every page is exactly
//! [`PAGE_SIZE`] bytes; the final 8 bytes are a SipHash-2-4 checksum over
//! the page id and the first `PAGE_SIZE - 8` bytes, so a bit flip (or a
//! page written to the wrong slot) is detected at read time instead of
//! being served as a wrong record.
//!
//! Page 0 is the meta page; all other pages carry a type tag in byte 0:
//!
//! ```text
//! meta (page 0): magic "GPgS" | version u32 | page_count u32 | root u32
//!                | free_head u32 | generation u64 | record_count u64
//!                | seal_counter u64
//! internal (2):  type u8 | nkeys u16 | child u32 × (nkeys+1)
//!                | (klen u16 | key bytes) × nkeys
//! leaf (3):      type u8 | next_leaf u32 | nentries u16 | entry × nentries
//!   entry:       klen u16 | key | flags u8 (bit0 deadline, bit1 overflow)
//!                | [deadline_ms u64] | inline: vlen u32 | value
//!                                    | overflow: total_len u32 | head u32
//! overflow (4):  type u8 | next u32 | len u32 | data
//! free (5):      type u8 | next_free u32
//! ```

use crate::Error;
use crypto::SipHash24;

/// Fixed page size — everything on disk is an array of these.
pub const PAGE_SIZE: usize = 4096;
/// Usable bytes per page; the tail 8 bytes hold the page checksum.
pub const PAYLOAD: usize = PAGE_SIZE - 8;
/// Longest storable record key (tenant prefix included).
pub const KEY_MAX: usize = 512;
/// Values longer than this spill to an overflow chain. The bound keeps the
/// largest possible leaf entry under half a leaf, so a split of any legal
/// leaf always produces two halves that fit.
pub const INLINE_VALUE_MAX: usize = 1024;
/// Data bytes per overflow page (after type/next/len header).
pub const OVERFLOW_DATA: usize = PAYLOAD - 9;

pub const T_INTERNAL: u8 = 2;
pub const T_LEAF: u8 = 3;
pub const T_OVERFLOW: u8 = 4;
pub const T_FREE: u8 = 5;

const META_MAGIC: &[u8; 4] = b"GPgS";
const META_VERSION: u32 = 1;

fn page_hasher() -> SipHash24 {
    SipHash24::new(0x7061_6765_7374_6f72, 0x6520_7061_6765_2121)
}

/// Checksum over (page id, payload) — binding the id catches images laid
/// down at the wrong offset as well as flipped bits.
pub fn page_checksum(pid: u32, payload: &[u8]) -> u64 {
    let mut data = Vec::with_capacity(4 + payload.len());
    data.extend_from_slice(&pid.to_le_bytes());
    data.extend_from_slice(payload);
    page_hasher().hash(&data)
}

/// Stamp the trailing checksum into a full page image.
pub fn seal_page(pid: u32, image: &mut [u8]) {
    debug_assert_eq!(image.len(), PAGE_SIZE);
    let sum = page_checksum(pid, &image[..PAYLOAD]);
    image[PAYLOAD..].copy_from_slice(&sum.to_le_bytes());
}

/// Verify a page image read from the data file.
pub fn verify_page(pid: u32, image: &[u8]) -> Result<(), Error> {
    if image.len() != PAGE_SIZE {
        return Err(Error::corrupt(format!("page {pid}: short image")));
    }
    let stored = u64::from_le_bytes(image[PAYLOAD..].try_into().unwrap());
    if stored != page_checksum(pid, &image[..PAYLOAD]) {
        return Err(Error::corrupt(format!("page {pid}: checksum mismatch")));
    }
    Ok(())
}

/// The meta page's parsed fields — the whole store state that is not in
/// tree pages. It is written through the WAL on every commit like any
/// other page, so a torn meta write is recoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    /// Pages allocated so far, including this meta page.
    pub page_count: u32,
    /// Root of the B+tree; 0 (the meta page itself) means "empty tree".
    pub root: u32,
    /// Head of the free-page list; 0 means none.
    pub free_head: u32,
    /// Logical mutation generation — see `PageStore::generation`.
    pub generation: u64,
    /// Live entries in the tree, *including* expired-but-unreaped ones
    /// (mirrors the key-value store's `DBSIZE`).
    pub record_count: u64,
    /// Monotone nonce counter for at-rest value sealing.
    pub seal_counter: u64,
}

impl Meta {
    pub fn fresh() -> Meta {
        Meta {
            page_count: 1,
            root: 0,
            free_head: 0,
            generation: 0,
            record_count: 0,
            seal_counter: 0,
        }
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut image = vec![0u8; PAGE_SIZE];
        image[0..4].copy_from_slice(META_MAGIC);
        image[4..8].copy_from_slice(&META_VERSION.to_le_bytes());
        image[8..12].copy_from_slice(&self.page_count.to_le_bytes());
        image[12..16].copy_from_slice(&self.root.to_le_bytes());
        image[16..20].copy_from_slice(&self.free_head.to_le_bytes());
        image[20..28].copy_from_slice(&self.generation.to_le_bytes());
        image[28..36].copy_from_slice(&self.record_count.to_le_bytes());
        image[36..44].copy_from_slice(&self.seal_counter.to_le_bytes());
        seal_page(0, &mut image);
        image
    }

    pub fn parse(image: &[u8]) -> Result<Meta, Error> {
        verify_page(0, image)?;
        if &image[0..4] != META_MAGIC {
            return Err(Error::corrupt("meta page: bad magic"));
        }
        let version = u32::from_le_bytes(image[4..8].try_into().unwrap());
        if version != META_VERSION {
            return Err(Error::corrupt(format!("meta page: version {version}")));
        }
        Ok(Meta {
            page_count: u32::from_le_bytes(image[8..12].try_into().unwrap()),
            root: u32::from_le_bytes(image[12..16].try_into().unwrap()),
            free_head: u32::from_le_bytes(image[16..20].try_into().unwrap()),
            generation: u64::from_le_bytes(image[20..28].try_into().unwrap()),
            record_count: u64::from_le_bytes(image[28..36].try_into().unwrap()),
            seal_counter: u64::from_le_bytes(image[36..44].try_into().unwrap()),
        })
    }
}

/// Where a leaf entry's value bytes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueRef {
    Inline(Vec<u8>),
    Overflow { total_len: u32, head: u32 },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafEntry {
    pub key: Vec<u8>,
    pub deadline_ms: Option<u64>,
    pub value: ValueRef,
}

impl LeafEntry {
    pub fn size(&self) -> usize {
        2 + self.key.len()
            + 1
            + if self.deadline_ms.is_some() { 8 } else { 0 }
            + match &self.value {
                ValueRef::Inline(v) => 4 + v.len(),
                ValueRef::Overflow { .. } => 8,
            }
    }
}

#[derive(Debug, Clone, Default)]
pub struct Leaf {
    pub next: u32,
    pub entries: Vec<LeafEntry>,
}

#[derive(Debug, Clone, Default)]
pub struct Internal {
    /// `keys.len() + 1 == children.len()`; `children[i]` holds keys `k`
    /// with `keys[i-1] <= k < keys[i]` (separator = smallest key of the
    /// right subtree).
    pub keys: Vec<Vec<u8>>,
    pub children: Vec<u32>,
}

const FLAG_DEADLINE: u8 = 1;
const FLAG_OVERFLOW: u8 = 2;

/// Bounds-checked little-endian readers — corrupt pages must produce
/// [`Error::Corrupt`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    pid: u32,
}

impl<'a> Reader<'a> {
    fn new(pid: u32, buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, pid }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(Error::corrupt(format!(
                "page {}: truncated field",
                self.pid
            ))),
        }
    }
    fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, Error> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

pub fn page_type(pid: u32, image: &[u8]) -> Result<u8, Error> {
    image
        .first()
        .copied()
        .ok_or_else(|| Error::corrupt(format!("page {pid}: empty image")))
}

pub fn serialize_leaf(pid: u32, leaf: &Leaf) -> Vec<u8> {
    let mut image = vec![0u8; PAGE_SIZE];
    image[0] = T_LEAF;
    image[1..5].copy_from_slice(&leaf.next.to_le_bytes());
    image[5..7].copy_from_slice(&(leaf.entries.len() as u16).to_le_bytes());
    let mut pos = 7;
    for e in &leaf.entries {
        image[pos..pos + 2].copy_from_slice(&(e.key.len() as u16).to_le_bytes());
        pos += 2;
        image[pos..pos + e.key.len()].copy_from_slice(&e.key);
        pos += e.key.len();
        let mut flags = 0u8;
        if e.deadline_ms.is_some() {
            flags |= FLAG_DEADLINE;
        }
        if matches!(e.value, ValueRef::Overflow { .. }) {
            flags |= FLAG_OVERFLOW;
        }
        image[pos] = flags;
        pos += 1;
        if let Some(dl) = e.deadline_ms {
            image[pos..pos + 8].copy_from_slice(&dl.to_le_bytes());
            pos += 8;
        }
        match &e.value {
            ValueRef::Inline(v) => {
                image[pos..pos + 4].copy_from_slice(&(v.len() as u32).to_le_bytes());
                pos += 4;
                image[pos..pos + v.len()].copy_from_slice(v);
                pos += v.len();
            }
            ValueRef::Overflow { total_len, head } => {
                image[pos..pos + 4].copy_from_slice(&total_len.to_le_bytes());
                image[pos + 4..pos + 8].copy_from_slice(&head.to_le_bytes());
                pos += 8;
            }
        }
    }
    debug_assert!(pos <= PAYLOAD, "leaf {pid} overflows payload: {pos}");
    seal_page(pid, &mut image);
    image
}

pub fn parse_leaf(pid: u32, image: &[u8]) -> Result<Leaf, Error> {
    let mut r = Reader::new(pid, &image[..image.len().min(PAYLOAD)]);
    if r.u8()? != T_LEAF {
        return Err(Error::corrupt(format!("page {pid}: expected leaf")));
    }
    let next = r.u32()?;
    let count = r.u16()? as usize;
    if count > PAYLOAD {
        return Err(Error::corrupt(format!("page {pid}: leaf count {count}")));
    }
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let klen = r.u16()? as usize;
        if klen > KEY_MAX {
            return Err(Error::corrupt(format!("page {pid}: key length {klen}")));
        }
        let key = r.take(klen)?.to_vec();
        let flags = r.u8()?;
        let deadline_ms = if flags & FLAG_DEADLINE != 0 {
            Some(r.u64()?)
        } else {
            None
        };
        let value = if flags & FLAG_OVERFLOW != 0 {
            ValueRef::Overflow {
                total_len: r.u32()?,
                head: r.u32()?,
            }
        } else {
            let vlen = r.u32()? as usize;
            if vlen > PAYLOAD {
                return Err(Error::corrupt(format!("page {pid}: inline value {vlen}")));
            }
            ValueRef::Inline(r.take(vlen)?.to_vec())
        };
        entries.push(LeafEntry {
            key,
            deadline_ms,
            value,
        });
    }
    Ok(Leaf { next, entries })
}

pub fn leaf_size(leaf: &Leaf) -> usize {
    7 + leaf.entries.iter().map(LeafEntry::size).sum::<usize>()
}

pub fn serialize_internal(pid: u32, node: &Internal) -> Vec<u8> {
    debug_assert_eq!(node.children.len(), node.keys.len() + 1);
    let mut image = vec![0u8; PAGE_SIZE];
    image[0] = T_INTERNAL;
    image[1..3].copy_from_slice(&(node.keys.len() as u16).to_le_bytes());
    let mut pos = 3;
    for child in &node.children {
        image[pos..pos + 4].copy_from_slice(&child.to_le_bytes());
        pos += 4;
    }
    for key in &node.keys {
        image[pos..pos + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        pos += 2;
        image[pos..pos + key.len()].copy_from_slice(key);
        pos += key.len();
    }
    debug_assert!(pos <= PAYLOAD, "internal {pid} overflows payload: {pos}");
    seal_page(pid, &mut image);
    image
}

pub fn parse_internal(pid: u32, image: &[u8]) -> Result<Internal, Error> {
    let mut r = Reader::new(pid, &image[..image.len().min(PAYLOAD)]);
    if r.u8()? != T_INTERNAL {
        return Err(Error::corrupt(format!("page {pid}: expected internal")));
    }
    let nkeys = r.u16()? as usize;
    if nkeys > PAYLOAD / 6 {
        return Err(Error::corrupt(format!("page {pid}: nkeys {nkeys}")));
    }
    let mut children = Vec::with_capacity(nkeys + 1);
    for _ in 0..=nkeys {
        children.push(r.u32()?);
    }
    let mut keys = Vec::with_capacity(nkeys);
    for _ in 0..nkeys {
        let klen = r.u16()? as usize;
        if klen > KEY_MAX {
            return Err(Error::corrupt(format!("page {pid}: key length {klen}")));
        }
        keys.push(r.take(klen)?.to_vec());
    }
    Ok(Internal { keys, children })
}

pub fn internal_size(node: &Internal) -> usize {
    3 + 4 * node.children.len() + node.keys.iter().map(|k| 2 + k.len()).sum::<usize>()
}

pub fn serialize_overflow(pid: u32, next: u32, data: &[u8]) -> Vec<u8> {
    debug_assert!(data.len() <= OVERFLOW_DATA);
    let mut image = vec![0u8; PAGE_SIZE];
    image[0] = T_OVERFLOW;
    image[1..5].copy_from_slice(&next.to_le_bytes());
    image[5..9].copy_from_slice(&(data.len() as u32).to_le_bytes());
    image[9..9 + data.len()].copy_from_slice(data);
    seal_page(pid, &mut image);
    image
}

pub fn parse_overflow(pid: u32, image: &[u8]) -> Result<(u32, Vec<u8>), Error> {
    let mut r = Reader::new(pid, &image[..image.len().min(PAYLOAD)]);
    if r.u8()? != T_OVERFLOW {
        return Err(Error::corrupt(format!("page {pid}: expected overflow")));
    }
    let next = r.u32()?;
    let len = r.u32()? as usize;
    if len > OVERFLOW_DATA {
        return Err(Error::corrupt(format!("page {pid}: overflow len {len}")));
    }
    Ok((next, r.take(len)?.to_vec()))
}

pub fn serialize_free(pid: u32, next_free: u32) -> Vec<u8> {
    let mut image = vec![0u8; PAGE_SIZE];
    image[0] = T_FREE;
    image[1..5].copy_from_slice(&next_free.to_le_bytes());
    seal_page(pid, &mut image);
    image
}

pub fn parse_free(pid: u32, image: &[u8]) -> Result<u32, Error> {
    let mut r = Reader::new(pid, &image[..image.len().min(PAYLOAD)]);
    if r.u8()? != T_FREE {
        return Err(Error::corrupt(format!("page {pid}: expected free page")));
    }
    r.u32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip_and_size_agree() {
        let leaf = Leaf {
            next: 7,
            entries: vec![
                LeafEntry {
                    key: b"k1".to_vec(),
                    deadline_ms: Some(42),
                    value: ValueRef::Inline(b"hello".to_vec()),
                },
                LeafEntry {
                    key: b"k2".to_vec(),
                    deadline_ms: None,
                    value: ValueRef::Overflow {
                        total_len: 9000,
                        head: 3,
                    },
                },
            ],
        };
        let image = serialize_leaf(5, &leaf);
        verify_page(5, &image).unwrap();
        let back = parse_leaf(5, &image).unwrap();
        assert_eq!(back.next, 7);
        assert_eq!(back.entries, leaf.entries);
        assert!(leaf_size(&leaf) < PAYLOAD);
    }

    #[test]
    fn internal_and_meta_roundtrip() {
        let node = Internal {
            keys: vec![b"m".to_vec()],
            children: vec![1, 2],
        };
        let image = serialize_internal(9, &node);
        let back = parse_internal(9, &image).unwrap();
        assert_eq!(back.keys, node.keys);
        assert_eq!(back.children, node.children);

        let meta = Meta {
            page_count: 10,
            root: 3,
            free_head: 4,
            generation: 99,
            record_count: 6,
            seal_counter: 12,
        };
        assert_eq!(Meta::parse(&meta.serialize()).unwrap(), meta);
    }

    #[test]
    fn flipped_bit_is_detected() {
        let mut image = serialize_free(11, 0);
        image[100] ^= 0x40;
        assert!(verify_page(11, &image).is_err());
        // and a correct image written under the wrong id is also rejected
        let image = serialize_free(11, 0);
        assert!(verify_page(12, &image).is_err());
    }

    #[test]
    fn parsers_never_panic_on_garbage() {
        let mut garbage = vec![0xA5u8; PAGE_SIZE];
        for t in [T_LEAF, T_INTERNAL, T_OVERFLOW, T_FREE] {
            garbage[0] = t;
            let _ = parse_leaf(1, &garbage);
            let _ = parse_internal(1, &garbage);
            let _ = parse_overflow(1, &garbage);
            let _ = parse_free(1, &garbage);
        }
        let _ = Meta::parse(&garbage);
        let _ = Meta::parse(&[]);
        let _ = parse_leaf(1, &[]);
    }
}
