//! Per-connection state for the event loop: an incremental frame decoder
//! that tolerates arbitrarily fragmented input (nonblocking reads deliver
//! whatever the kernel has, never whole frames), the decoded-request
//! queue feeding server-side batches, and the outbound buffer that
//! level-triggered write draining empties.
//!
//! [`FrameDecoder`] is the nonblocking twin of [`crate::wire::read_frame`]
//! and is kept free-standing so the frame-boundary property tests can
//! drive it byte-by-byte without a socket.

use crate::wire::RequestBody;
use crypto::channel::DuplexChannel;
use gdpr_core::tenant::TenantId;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Incremental decoder for the wire framing (`u32` BE length + payload).
///
/// Push raw bytes in as they arrive; pull complete frames out. A length
/// prefix exceeding `max_frame` is a fatal framing error — the stream
/// position can no longer be trusted, exactly as the blocking
/// [`crate::wire::read_frame`] treats it.
pub struct FrameDecoder {
    max_frame: usize,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted away once large enough.
    pos: usize,
}

impl FrameDecoder {
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            max_frame,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Append raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drop everything buffered (a poisoned connection stops decoding).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// The next complete frame payload, `Ok(None)` while one is still
    /// partial, or `Err(claimed_len)` on a hostile length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, usize> {
        let available = self.buf.len() - self.pos;
        if available < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().unwrap();
        let len = u32::from_be_bytes(header) as usize;
        if len > self.max_frame {
            return Err(len);
        }
        if available < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 64 * 1024 && self.pos * 2 >= self.buf.len() {
            // Bound the dead prefix without shifting the live tail on
            // every frame.
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

/// An outbound byte buffer drained by nonblocking writes.
#[derive(Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn extend(&mut self, bytes: Vec<u8>) {
        if self.is_empty() {
            self.buf = bytes;
            self.pos = 0;
        } else {
            self.buf.extend_from_slice(&bytes);
        }
    }

    pub fn remaining(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    pub fn advance(&mut self, n: usize) {
        self.pos += n;
        debug_assert!(self.pos <= self.buf.len());
        if self.is_empty() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

/// One decoded inbound item, in stream order.
// `Request` dwarfs `Canned`, but ops live only from decode to batch
// submission on the hot path — boxing the body would buy the rare
// protocol-error case nothing and cost every request an allocation.
#[allow(clippy::large_enum_variant)]
pub(crate) enum DecodedOp {
    /// A well-formed request awaiting execution.
    Request {
        seq: u64,
        /// The request-header tenant — scopes control ops (`GetMetrics`);
        /// for `Execute` the decoder already injected it into the session.
        tenant: TenantId,
        body: RequestBody,
        /// When the frame came off the decoder — the start of the
        /// `decode_wait` telemetry stage (decode → executor pickup).
        decoded_at: Instant,
    },
    /// A pre-encoded response payload (protocol error) that must be
    /// emitted at exactly this position in the response order.
    Canned(Vec<u8>),
}

/// The connection's position in the encrypted-transport lifecycle (see
/// [`crate::secure`]). Plaintext servers stay `Plain` forever; encrypted
/// servers start every connection at `Handshaking` and refuse to carry a
/// single op frame until the hello exchange upgrades it to `Secure`.
pub(crate) enum Transport {
    /// Unencrypted: frame payloads are op payloads.
    Plain,
    /// Encryption required but the client hello has not arrived yet.
    Handshaking,
    /// Established: every frame payload is a sealed record. Boxed so an
    /// idle connection costs one pointer, not the full cipher state.
    Secure(Box<DuplexChannel>),
}

/// Per-connection counters, served over the wire for `ConnStats`.
#[derive(Debug, Default)]
pub(crate) struct ConnCounters {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
}

/// Everything the event loop tracks for one accepted connection.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub decoder: FrameDecoder,
    /// Decoded requests not yet handed to the executor.
    pub pending: VecDeque<DecodedOp>,
    pub outbuf: OutBuf,
    /// One batch at a time per connection keeps response order trivial:
    /// new frames accumulate in `pending` while it runs.
    pub in_flight: bool,
    /// Framing/decoding no longer trusted; stop reading, flush, close.
    pub poisoned: bool,
    /// Emit everything owed, then close.
    pub close_after_flush: bool,
    /// Peer half-closed its write side (clean EOF).
    pub peer_eof: bool,
    /// Currently registered (readable, writable) interest.
    pub interest: (bool, bool),
    pub counters: Arc<ConnCounters>,
    /// Last instant the outbound buffer made progress (or became owed);
    /// a stalled non-draining peer is killed past the write timeout.
    pub last_write_progress: Instant,
    /// When the current batch's responses were enqueued on a previously
    /// empty outbuf — the start of the `write_drain` telemetry stage,
    /// recorded (and cleared) when the outbuf next drains to the socket.
    pub write_batch_started: Option<Instant>,
    /// Record-layer state: plaintext, awaiting handshake, or established.
    pub(crate) transport: Transport,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_frame: usize, encrypted: bool) -> Conn {
        // Sealed records carry a 16-byte header on top of the plaintext
        // frame payload, so the decoder must admit slightly larger frames
        // than the plaintext limit.
        let decode_max = if encrypted {
            max_frame + crate::secure::SEAL_OVERHEAD
        } else {
            max_frame
        };
        Conn {
            stream,
            decoder: FrameDecoder::new(decode_max),
            pending: VecDeque::new(),
            outbuf: OutBuf::default(),
            in_flight: false,
            poisoned: false,
            close_after_flush: false,
            peer_eof: false,
            interest: (true, false),
            counters: Arc::new(ConnCounters::default()),
            last_write_progress: Instant::now(),
            write_batch_started: None,
            transport: if encrypted {
                Transport::Handshaking
            } else {
                Transport::Plain
            },
        }
    }

    /// Append outbound response frames, sealing each frame's payload when
    /// the transport is established. `bytes` must be a whole number of
    /// wire frames (`u32` BE length + payload) — exactly what `run_batch`
    /// produces — because sealing happens per frame: the record layer
    /// re-frames `frame(payload)` as `frame(seal(payload))`.
    ///
    /// Sealing on enqueue (loop thread) rather than in the executor keeps
    /// cipher state single-threaded and sequence numbers in send order —
    /// completions land here in submission order, one batch in flight per
    /// connection.
    pub fn enqueue(&mut self, bytes: Vec<u8>) {
        let Transport::Secure(channel) = &mut self.transport else {
            self.outbuf.extend(bytes);
            return;
        };
        let mut sealed_out =
            Vec::with_capacity(bytes.len() + crate::secure::SEAL_OVERHEAD.saturating_mul(4));
        let mut pos = 0;
        while pos + 4 <= bytes.len() {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            debug_assert!(pos + 4 + len <= bytes.len(), "enqueue of a partial frame");
            let payload = &bytes[pos + 4..pos + 4 + len];
            let sealed = channel.seal(payload);
            sealed_out.extend_from_slice(&(sealed.len() as u32).to_be_bytes());
            sealed_out.extend_from_slice(&sealed);
            pos += 4 + len;
        }
        debug_assert_eq!(pos, bytes.len(), "enqueue of a partial frame");
        self.outbuf.extend(sealed_out);
    }

    /// Nothing owed to the peer and nothing executing.
    pub fn drained(&self) -> bool {
        self.outbuf.is_empty() && self.pending.is_empty() && !self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    fn drain(decoder: &mut FrameDecoder) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(Some(frame)) = decoder.next_frame() {
            out.push(frame);
        }
        out
    }

    #[test]
    fn whole_frames_decode_in_order() {
        let mut decoder = FrameDecoder::new(1 << 20);
        let mut stream = frame(b"alpha");
        stream.extend(frame(b""));
        stream.extend(frame(b"gamma"));
        decoder.push(&stream);
        assert_eq!(
            drain(&mut decoder),
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn split_at_every_boundary_reassembles() {
        let payloads: [&[u8]; 3] = [b"one", b"", b"three-33"];
        let mut stream = Vec::new();
        for p in payloads {
            stream.extend(frame(p));
        }
        for cut in 0..=stream.len() {
            let mut decoder = FrameDecoder::new(1 << 20);
            decoder.push(&stream[..cut]);
            let mut got = drain(&mut decoder);
            decoder.push(&stream[cut..]);
            got.extend(drain(&mut decoder));
            assert_eq!(got.len(), 3, "cut at {cut}");
            for (g, p) in got.iter().zip(payloads) {
                assert_eq!(g, p, "cut at {cut}");
            }
        }
    }

    #[test]
    fn byte_by_byte_delivery_reassembles() {
        let mut stream = frame(b"slow");
        stream.extend(frame(b"drip"));
        let mut decoder = FrameDecoder::new(1 << 20);
        let mut got = Vec::new();
        for byte in stream {
            decoder.push(&[byte]);
            got.extend(drain(&mut decoder));
        }
        assert_eq!(got, vec![b"slow".to_vec(), b"drip".to_vec()]);
    }

    #[test]
    fn hostile_length_is_fatal() {
        let mut decoder = FrameDecoder::new(1024);
        decoder.push(&2048u32.to_be_bytes());
        assert_eq!(decoder.next_frame(), Err(2048));
        // Still fatal on retry: the stream position is not advanced.
        assert_eq!(decoder.next_frame(), Err(2048));

        let mut decoder = FrameDecoder::new(1024);
        decoder.push(&u32::MAX.to_be_bytes());
        assert_eq!(decoder.next_frame(), Err(u32::MAX as usize));
    }

    #[test]
    fn partial_frame_is_pending_not_error() {
        let mut decoder = FrameDecoder::new(1 << 20);
        let full = frame(b"payload");
        for cut in 0..full.len() {
            let mut d = FrameDecoder::new(1 << 20);
            d.push(&full[..cut]);
            assert_eq!(d.next_frame(), Ok(None), "cut at {cut}");
        }
        decoder.push(&full);
        assert_eq!(decoder.next_frame(), Ok(Some(b"payload".to_vec())));
    }

    #[test]
    fn compaction_preserves_the_live_tail() {
        let mut decoder = FrameDecoder::new(1 << 20);
        // Many frames large enough to trip the drain threshold, pushed as
        // one blob with a trailing partial frame.
        let body = vec![0xAB; 40 * 1024];
        let mut stream = Vec::new();
        for _ in 0..4 {
            stream.extend(frame(&body));
        }
        let tail = frame(b"tail");
        stream.extend(&tail[..3]);
        decoder.push(&stream);
        assert_eq!(drain(&mut decoder).len(), 4);
        decoder.push(&tail[3..]);
        assert_eq!(decoder.next_frame(), Ok(Some(b"tail".to_vec())));
    }

    #[test]
    fn outbuf_tracks_partial_writes() {
        let mut out = OutBuf::default();
        assert!(out.is_empty());
        out.extend(b"hello ".to_vec());
        out.extend(b"world".to_vec());
        assert_eq!(out.len(), 11);
        assert_eq!(out.remaining(), b"hello world");
        out.advance(6);
        assert_eq!(out.remaining(), b"world");
        out.advance(5);
        assert!(out.is_empty());
        // Reuse after drain starts fresh.
        out.extend(b"x".to_vec());
        assert_eq!(out.remaining(), b"x");
    }
}
