//! Byte-level primitives for the GDPR wire protocol: a panic-free writer
//! and bounds-checked reader over big-endian integers and length-prefixed
//! strings. Everything the protocol ships reduces to these six shapes
//! (u8/u32/u64, bytes, string, list-count), so the reader is the one place
//! truncated or hostile frames are rejected.

use std::fmt;

/// A decode failure: offset plus what was expected there. Decoding never
/// panics — every length is validated against the remaining buffer before
/// a single byte is read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub offset: usize,
    pub message: String,
}

impl WireError {
    pub fn new(offset: usize, message: impl Into<String>) -> WireError {
        WireError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for WireError {}

pub type WireResult<T> = Result<T, WireError>;

/// Append-only encoder. Strings and byte blobs are `u32` length-prefixed;
/// integers are big-endian.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// A list is its `u32` element count; the caller writes the elements.
    pub fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }

    pub fn string_list(&mut self, items: &[String]) {
        self.count(items.len());
        for item in items {
            self.string(item);
        }
    }
}

/// Bounds-checked decoder over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn offset(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decoding must consume the whole payload: trailing garbage means the
    /// two sides disagree about the format, which is worth failing loudly.
    pub fn finish(self) -> WireResult<()> {
        if self.pos != self.buf.len() {
            return Err(WireError::new(
                self.pos,
                format!("{} trailing bytes after payload", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::new(
                self.pos,
                format!(
                    "truncated: need {n} bytes for {what}, have {}",
                    self.remaining()
                ),
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self, what: &str) -> WireResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> WireResult<u32> {
        Ok(u32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> WireResult<u64> {
        Ok(u64::from_be_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn bool(&mut self, what: &str) -> WireResult<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::new(
                self.pos - 1,
                format!("bad bool {other} in {what}"),
            )),
        }
    }

    pub fn bytes(&mut self, what: &str) -> WireResult<&'a [u8]> {
        let len = self.u32(what)? as usize;
        // The length itself is attacker-controlled: bound it by what is
        // actually in the buffer before allocating or slicing.
        self.take(len, what)
    }

    pub fn string(&mut self, what: &str) -> WireResult<String> {
        let at = self.pos;
        let raw = self.bytes(what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::new(at, format!("non-UTF-8 {what}")))
    }

    /// Read a list count, bounded by the bytes that could possibly back it
    /// (each element costs at least `min_element_bytes`), so a hostile
    /// count cannot trigger a huge allocation.
    pub fn count(&mut self, min_element_bytes: usize, what: &str) -> WireResult<usize> {
        let at = self.pos;
        let n = self.u32(what)? as usize;
        if n * min_element_bytes.max(1) > self.remaining() {
            return Err(WireError::new(
                at,
                format!("count {n} for {what} exceeds remaining payload"),
            ));
        }
        Ok(n)
    }

    pub fn string_list(&mut self, what: &str) -> WireResult<Vec<String>> {
        let n = self.count(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.string(what)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.bool(true);
        w.string("hällo"); // UTF-8 with a multibyte char
        w.string_list(&["a".to_string(), "".to_string()]);
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert!(r.bool("d").unwrap());
        assert_eq!(r.string("e").unwrap(), "hällo");
        assert_eq!(r.string_list("f").unwrap(), vec!["a", ""]);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_rejected_without_panic() {
        let mut w = Writer::new();
        w.u64(42);
        w.string("payload");
        w.string_list(&["x".to_string(), "y".to_string()]);
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let result = (|| -> WireResult<()> {
                r.u64("n")?;
                r.string("s")?;
                r.string_list("l")?;
                Ok(())
            })();
            assert!(result.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A count of u32::MAX with a 5-byte remainder must be rejected up
        // front, not attempted.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u8(1);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.count(4, "list").is_err());
        let mut r = Reader::new(&buf);
        assert!(r.bytes("blob").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        r.u8("only").unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8() {
        let mut r = Reader::new(&[9]);
        assert!(r.bool("flag").is_err());
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.into_bytes();
        assert!(Reader::new(&buf).string("s").is_err());
    }
}
