//! `gdpr-server` — the wire-protocol network front-end for the GDPR
//! compliance engine.
//!
//! The paper benchmarks *networked* database servers; this crate closes the
//! gap between the reproduction's in-process engine calls and that setting
//! by exposing any [`gdpr_core::EngineHandle`] — `redis`, `redis-mi`,
//! `redis-sharded --shards N`, `postgres`, `postgres-mi` — over TCP:
//!
//! * [`codec`] — panic-free, bounds-checked byte primitives;
//! * [`wire`] — framing plus a complete codec for every [`gdpr_core::GdprQuery`],
//!   [`gdpr_core::GdprResponse`], and [`gdpr_core::GdprError`] variant
//!   (audit-log payloads included), so remote semantics are byte-equivalent
//!   to in-process execution;
//! * [`pool`] — a bounded worker pool, hand-rolled on threads (the offline
//!   build has no executor crate);
//! * [`server`] — accept loop, pipelining with strictly ordered responses,
//!   per-connection stats, graceful shutdown.
//!
//! The client side (`GdprClient`, `RemoteConnector`) lives in the
//! `connectors` crate, next to the other connector variants, so the
//! conformance suite and the bench layer drive loopback TCP through the
//! same `GdprConnector` interface they already use. The wire format is
//! documented for external implementations in `crates/server/README.md`.

pub mod codec;
pub mod pool;
pub mod server;
pub mod wire;

pub use codec::{WireError, WireResult};
pub use pool::WorkerPool;
pub use server::{GdprServer, ServerConfig, ServerStats};
pub use wire::{RequestBody, ResponseBody, StatsSnapshot, MAX_FRAME};
