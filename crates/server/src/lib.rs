//! `gdpr-server` — the wire-protocol network front-end for the GDPR
//! compliance engine.
//!
//! The paper benchmarks *networked* database servers; this crate closes the
//! gap between the reproduction's in-process engine calls and that setting
//! by exposing any [`gdpr_core::EngineHandle`] — `redis`, `redis-mi`,
//! `redis-sharded --shards N`, `postgres`, `postgres-mi` — over TCP:
//!
//! * [`codec`] — panic-free, bounds-checked byte primitives;
//! * [`wire`] — framing plus a complete codec for every [`gdpr_core::GdprQuery`],
//!   [`gdpr_core::GdprResponse`], and [`gdpr_core::GdprError`] variant
//!   (audit-log payloads included), so remote semantics are byte-equivalent
//!   to in-process execution;
//! * [`sys`] — a thin level-triggered epoll shim over raw syscalls (the
//!   offline build has no I/O crate);
//! * [`conn`] — per-connection state: an incremental [`conn::FrameDecoder`]
//!   tolerating arbitrarily fragmented input, plus outbound buffering;
//! * [`pool`] — the batch executor: a small hand-rolled thread pool running
//!   one engine-side batch per job;
//! * [`server`] — the readiness-driven event loop: one thread multiplexes
//!   every connection, pipelined bursts execute as single engine batches,
//!   responses stay strictly ordered, shutdown is graceful.
//!
//! The client side (`GdprClient`, `RemoteConnector`) lives in the
//! `connectors` crate, next to the other connector variants, so the
//! conformance suite and the bench layer drive loopback TCP through the
//! same `GdprConnector` interface they already use. The wire format is
//! documented for external implementations in `crates/server/README.md`.

pub mod codec;
pub mod conn;
mod event_loop;
pub mod metrics;
pub mod pool;
pub mod secure;
pub mod server;
pub mod sys;
pub mod wire;

pub use codec::{WireError, WireResult};
pub use conn::FrameDecoder;
pub use metrics::render_prometheus;
pub use pool::Executor;
pub use server::{GdprServer, ServerConfig, ServerStats};
pub use wire::{MetricsReport, RequestBody, ResponseBody, StageMetrics, StatsSnapshot, MAX_FRAME};
