//! A bounded worker pool, hand-rolled on threads + a condvar'd queue (the
//! offline build has no executor crate). Submitting to a full queue blocks
//! the caller — for the server that caller is a connection's frame reader,
//! so a saturated pool turns into TCP backpressure on the client instead
//! of unbounded buffering in the server.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that a job (or shutdown) is available.
    not_empty: Condvar,
    /// Signals submitters that queue slots freed up.
    not_full: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

/// Fixed worker threads over a bounded job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// `workers` threads over a queue of at most `capacity` waiting jobs.
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueue a job, blocking while the queue is at capacity. Returns
    /// `false` (dropping the job) only after shutdown.
    pub fn submit(&self, job: Job) -> bool {
        let mut queue = self.shared.queue.lock();
        while queue.len() >= self.shared.capacity {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return false;
            }
            queue = self
                .shared
                .not_full
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        queue.push_back(job);
        drop(queue);
        self.shared.not_empty.notify_one();
        true
    }

    /// Jobs currently waiting (not the ones executing).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Graceful shutdown: workers drain the queue, then exit; blocks until
    /// every worker has joined. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.not_full.notify_one();
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking job must not take the worker (and with it a slot of
        // the pool's capacity) down with it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_loss() {
        // One slow worker, capacity 2: submitters must block, not drop.
        let pool = WorkerPool::new(1, 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = WorkerPool::new(1, 4);
        pool.submit(Box::new(|| panic!("job panic")));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.submit(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        assert!(!pool.submit(Box::new(|| {})));
    }
}
