//! The engine-batch executor: a small hand-rolled thread pool (the
//! offline build has no executor crate) that runs one job per
//! server-side batch. Unlike the per-op worker pool it replaced, `submit`
//! never blocks — the event loop must never park on a full queue — so
//! admission control lives in [`Executor::has_capacity`]: the loop checks
//! it before submitting and, when full, leaves the batch queued on its
//! connection (which eventually pauses that connection's reads — TCP
//! backpressure, same end state as the old blocking submit).
//!
//! The loop is the only submitter and workers only consume, so the
//! check-then-submit pair cannot overshoot the capacity bound.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct ExecShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that a job (or shutdown) is available.
    not_empty: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

/// Fixed worker threads over a capacity-advised job queue.
pub struct Executor {
    shared: Arc<ExecShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Executor {
    /// `workers` threads; `has_capacity` reports false once `capacity`
    /// jobs are waiting.
    pub fn new(workers: usize, capacity: usize) -> Executor {
        let shared = Arc::new(ExecShared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Executor {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Is there room for another job under the advisory capacity bound?
    pub fn has_capacity(&self) -> bool {
        self.shared.queue.lock().len() < self.shared.capacity
    }

    /// Enqueue a job without blocking. Returns `false` (dropping the job)
    /// only after shutdown.
    pub fn submit(&self, job: Job) -> bool {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        self.shared.queue.lock().push_back(job);
        self.shared.not_empty.notify_one();
        true
    }

    /// Jobs currently waiting (not the ones executing).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Graceful shutdown: workers drain the queue, then exit; blocks until
    /// every worker has joined. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &ExecShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking job must not take the worker (and with it a slice of
        // the executor's throughput) down with it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let executor = Executor::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(executor.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })));
        }
        executor.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn capacity_is_advisory_and_observable() {
        // One worker parked on a gate; capacity 2.
        let executor = Executor::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        executor.submit(Box::new(move || {
            let mut open = g.0.lock();
            while !*open {
                open = g.1.wait(open).unwrap_or_else(|e| e.into_inner());
            }
        }));
        // Wait for the worker to take the gate job off the queue.
        for _ in 0..200 {
            if executor.queued() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(executor.has_capacity());
        executor.submit(Box::new(|| {}));
        executor.submit(Box::new(|| {}));
        // Two waiting jobs: the advisory bound is reached, but submit
        // itself still never blocks or drops.
        assert!(!executor.has_capacity());
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        assert!(executor.submit(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })));
        *gate.0.lock() = true;
        gate.1.notify_all();
        executor.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn survives_panicking_jobs() {
        let executor = Executor::new(1, 4);
        executor.submit(Box::new(|| panic!("job panic")));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        executor.submit(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        executor.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let executor = Executor::new(1, 1);
        executor.shutdown();
        assert!(!executor.submit(Box::new(|| {})));
    }
}
