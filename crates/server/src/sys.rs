//! A thin epoll shim over raw Linux syscalls — the readiness layer under
//! the server's event loop. Hand-rolled (inline `syscall`/`svc`
//! instructions, no libc) because the offline build has no I/O crate, in
//! the same no-external-deps style as [`crate::pool`].
//!
//! Only what the loop needs is exposed: create, register/modify/remove a
//! fd with a `u64` token, and wait. Registration is level-triggered — the
//! loop re-arms nothing and can leave data unread (e.g. a paused
//! connection) without losing the readiness edge.
//!
//! Non-Linux (or non-x86_64/aarch64) builds compile against a stub whose
//! [`Poller::new`] fails with `Unsupported`; the server surfaces that at
//! bind time instead of at first wait.

/// One readiness notification for a registered fd.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable — including error/hangup conditions, so the handler's
    /// `read()` observes and reports them.
    pub readable: bool,
    /// Writable — including error conditions, surfaced via `write()`.
    pub writable: bool,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PRLIMIT64: usize = 302;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
        pub const PRLIMIT64: usize = 261;
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;

    /// The kernel's `struct epoll_event`: packed on x86_64 only, exactly
    /// as the UAPI header declares it.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    fn interest_mask(readable: bool, writable: bool) -> u32 {
        let mut events = 0;
        if readable {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// A level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Poller { epfd: fd as RawFd })
        }

        fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            let ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut event as *mut EpollEvent
            };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    ptr as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        /// Register `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_mask(readable, writable), token)
        }

        /// Replace the interest of an already-registered fd.
        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_mask(readable, writable), token)
        }

        /// Deregister `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Block up to `timeout_ms` (-1 = forever) for readiness; fills
        /// `out` (cleared first) with up to its capacity in events.
        /// Retries interrupted waits internally.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let cap = out.capacity().max(64);
            let mut raw: Vec<EpollEvent> = vec![EpollEvent { events: 0, data: 0 }; cap];
            loop {
                let ret = unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.epfd as usize,
                        raw.as_mut_ptr() as usize,
                        cap,
                        timeout_ms as usize,
                        0, // NULL sigmask: plain epoll_wait semantics
                        0,
                    )
                };
                match check(ret) {
                    Ok(n) => {
                        for event in &raw[..n] {
                            let bits = event.events;
                            out.push(Event {
                                token: event.data,
                                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                                writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                            });
                        }
                        return Ok(());
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0) };
        }
    }

    const RLIMIT_NOFILE: usize = 7;

    /// The kernel's `struct rlimit64`.
    #[repr(C)]
    struct RLimit64 {
        cur: u64,
        max: u64,
    }

    /// This process's `RLIMIT_NOFILE` as `(soft, hard)`.
    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = RLimit64 { cur: 0, max: 0 };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0, // pid 0: the calling process
                RLIMIT_NOFILE,
                0, // no new limit
                &mut lim as *mut RLimit64 as usize,
                0,
                0,
            )
        })?;
        Ok((lim.cur, lim.max))
    }

    /// Set this process's `RLIMIT_NOFILE` to `(soft, hard)`. Lowering the
    /// soft limit needs no privilege; raising the hard one does.
    pub fn set_nofile_limit(soft: u64, hard: u64) -> io::Result<()> {
        let lim = RLimit64 {
            cur: soft,
            max: hard,
        };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &lim as *const RLimit64 as usize,
                0,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Raise the soft fd limit toward `target` (capped at the hard limit,
    /// which unprivileged processes cannot exceed). Returns the resulting
    /// soft limit — callers serving tens of thousands of sockets check it
    /// against their connection budget.
    pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
        let (soft, hard) = nofile_limit()?;
        if soft >= target {
            return Ok(soft);
        }
        let want = target.min(hard);
        set_nofile_limit(want, hard)?;
        Ok(want)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;

    /// Stub for targets without the raw-epoll shim: construction fails,
    /// so `GdprServer::bind` reports the missing readiness backend
    /// up front rather than at first wait.
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "gdpr-server event loop requires Linux epoll (x86_64/aarch64)",
            ))
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }
    }

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "fd-limit control requires Linux prlimit64 (x86_64/aarch64)",
        ))
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        unsupported()
    }

    pub fn set_nofile_limit(_soft: u64, _hard: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn raise_nofile_limit(_target: u64) -> io::Result<u64> {
        unsupported()
    }
}

pub use imp::{nofile_limit, raise_nofile_limit, set_nofile_limit, Poller};

#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readiness_tracks_data_and_interest() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = loopback_pair();
        poller.add(b.as_raw_fd(), 7, true, false).unwrap();

        // Nothing to read yet: a short wait returns no events.
        let mut events = Vec::with_capacity(8);
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        a.write_all(b"ping").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        let event = events.iter().find(|e| e.token == 7).expect("readable");
        assert!(event.readable && !event.writable);

        // Level-triggered: unread data keeps reporting.
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 16];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Write interest on an idle socket fires immediately.
        poller.modify(b.as_raw_fd(), 7, true, true).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.delete(b.as_raw_fd()).unwrap();
        a.write_all(b"more").unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7));
    }

    /// Read-only checks for the rlimit shim; mutations live in the
    /// dedicated fd-exhaustion integration test, which owns its process —
    /// lowering the soft limit here would sabotage parallel tests.
    #[test]
    fn nofile_limit_reads_sane_values() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft >= 8, "soft fd limit {soft} below any working minimum");
        assert!(hard >= soft);
        // Raising to the current soft limit is a no-op that must succeed.
        assert_eq!(raise_nofile_limit(soft).unwrap(), soft);
    }

    #[test]
    fn hangup_reports_as_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = loopback_pair();
        poller.add(b.as_raw_fd(), 3, true, false).unwrap();
        drop(a);
        let mut events = Vec::with_capacity(8);
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }
}
