//! The TCP front-end: an accept loop, per-connection frame readers, a
//! bounded worker pool executing requests, and a per-connection sequencer
//! that emits responses in request order — so clients may pipeline many
//! requests per connection and still rely on ordered, un-crossed replies.
//!
//! ```text
//! client ──frames──▶ reader thread ──jobs──▶ WorkerPool (bounded)
//!                       │ ticket per frame        │ execute on EngineHandle
//!                       ▼                         ▼
//!                  Sequencer (per connection): complete(ticket, bytes)
//!                       └── writes contiguous tickets, in order ──▶ client
//! ```
//!
//! The reader is I/O-bound and cheap (one thread per connection); all
//! engine work happens on the shared pool, whose bounded queue converts
//! overload into TCP backpressure at the reader. Responses may *finish*
//! out of order on the pool; the sequencer buffers completions and writes
//! only the contiguous prefix, which restores request order exactly.

use crate::pool::WorkerPool;
use crate::wire::{self, RequestBody, ResponseBody, StatsSnapshot};
use gdpr_core::EngineHandle;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests (default: the machine's
    /// parallelism).
    pub workers: usize,
    /// Bound on jobs waiting for a worker; a full queue blocks the
    /// connection readers (TCP backpressure).
    pub queue_depth: usize,
    /// Largest accepted frame.
    pub max_frame: usize,
    /// Cap on one blocking response write. A client that pipelines
    /// requests but never drains responses would otherwise park a pool
    /// worker forever inside the connection's sequencer lock — with every
    /// worker so parked, one misbehaving client starves the whole server.
    /// Hitting the cap kills that connection instead.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
        ServerConfig {
            workers,
            queue_depth: workers * 32,
            max_frame: wire::MAX_FRAME,
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// Server-wide counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections_accepted: AtomicU64,
    pub connections_active: AtomicU64,
    pub requests: AtomicU64,
    pub gdpr_errors: AtomicU64,
    pub protocol_errors: AtomicU64,
}

/// Per-connection counters, served over the wire for `ConnStats`.
#[derive(Debug, Default)]
struct ConnCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// Orders responses of one connection: workers complete tickets in any
/// order; only the contiguous prefix is written to the socket.
struct Sequencer {
    inner: Mutex<SequencerInner>,
    counters: Arc<ConnCounters>,
}

struct SequencerInner {
    stream: TcpStream,
    /// The next ticket the socket is owed.
    next: u64,
    /// Completed-but-not-yet-writable responses, keyed by ticket.
    pending: BTreeMap<u64, Vec<u8>>,
    /// A failed write poisons the connection; later completions are
    /// dropped instead of written out of order.
    dead: bool,
}

impl Sequencer {
    fn new(stream: TcpStream, counters: Arc<ConnCounters>) -> Sequencer {
        Sequencer {
            inner: Mutex::new(SequencerInner {
                stream,
                next: 0,
                pending: BTreeMap::new(),
                dead: false,
            }),
            counters,
        }
    }

    fn complete(&self, ticket: u64, payload: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.pending.insert(ticket, payload);
        // Drain the whole contiguous prefix into one buffer and write it
        // with a single syscall — under pipelining many tickets complete
        // close together, and per-response writes would dominate.
        let mut burst = Vec::new();
        loop {
            let next = inner.next;
            let Some(payload) = inner.pending.remove(&next) else {
                break;
            };
            inner.next += 1;
            if !inner.dead {
                // Infallible: writing into a Vec.
                let _ = wire::write_frame(&mut burst, &payload);
            }
        }
        if !burst.is_empty() && !inner.dead {
            if inner.stream.write_all(&burst).is_err() {
                // Failed or timed out (see ServerConfig::write_timeout):
                // the stream's framing can no longer be trusted. Poison
                // the connection and shut the socket down so the reader
                // side stops accepting work for it too.
                inner.dead = true;
                let _ = inner.stream.shutdown(Shutdown::Both);
            } else {
                self.counters
                    .bytes_out
                    .fetch_add(burst.len() as u64, Ordering::Relaxed);
            }
        }
    }
}

struct ServerShared {
    engine: EngineHandle,
    pool: WorkerPool,
    addr: SocketAddr,
    max_frame: usize,
    write_timeout: Duration,
    shutdown: AtomicBool,
    stats: ServerStats,
    /// Stream clones per live connection, for unblocking readers at
    /// shutdown; keyed by connection id so finished connections prune
    /// themselves.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Reader JoinHandles by connection id. Finished connections report
    /// into `finished`; the accept loop reaps those handles so the map
    /// tracks live connections, not every connection ever accepted.
    readers: Mutex<HashMap<u64, std::thread::JoinHandle<()>>>,
    finished: Mutex<Vec<u64>>,
}

/// A running GDPR wire-protocol server over any [`EngineHandle`].
pub struct GdprServer {
    shared: Arc<ServerShared>,
    accept_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl GdprServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `engine`.
    pub fn bind(engine: EngineHandle, addr: &str, config: ServerConfig) -> io::Result<GdprServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            engine,
            pool: WorkerPool::new(config.workers, config.queue_depth),
            addr: local,
            max_frame: config.max_frame,
            write_timeout: config.write_timeout,
            shutdown: AtomicBool::new(false),
            stats: ServerStats::default(),
            conns: Mutex::new(HashMap::new()),
            readers: Mutex::new(HashMap::new()),
            finished: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(GdprServer {
            shared,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (with the kernel-assigned port when bound to :0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Graceful shutdown: stop accepting, unblock and join every
    /// connection reader, drain in-flight requests, join the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(handle) = self.accept_handle.lock().take() {
            let _ = handle.join();
        }
        // Unblock every reader parked in read_frame.
        for stream in self.shared.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let readers: Vec<_> = self.shared.readers.lock().drain().map(|(_, h)| h).collect();
        for handle in readers {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for GdprServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut next_conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Persistent accept failures (e.g. fd exhaustion) must not
                // busy-spin a core away from the worker pool.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Reap readers whose connections have ended — joining a finished
        // thread is immediate, and without this the handle map would grow
        // with every connection ever accepted on a long-lived server.
        for conn_id in shared.finished.lock().drain(..) {
            if let Some(handle) = shared.readers.lock().remove(&conn_id) {
                let _ = handle.join();
            }
        }
        // Response frames are small; waiting for ACKs to coalesce them
        // (Nagle) would serialize the whole request/response pattern.
        stream.set_nodelay(true).ok();
        // See ServerConfig::write_timeout.
        stream.set_write_timeout(Some(shared.write_timeout)).ok();
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            serve_connection(&conn_shared, conn_id, stream);
            conn_shared.conns.lock().remove(&conn_id);
            conn_shared
                .stats
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
            conn_shared.finished.lock().push(conn_id);
        });
        shared.readers.lock().insert(conn_id, handle);
    }
}

/// Read frames until EOF/shutdown, handing each request to the pool under
/// a read-order ticket; the sequencer restores that order on the way out.
fn serve_connection(shared: &Arc<ServerShared>, _conn_id: u64, stream: TcpStream) {
    let counters = Arc::new(ConnCounters::default());
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let sequencer = Arc::new(Sequencer::new(write_half, Arc::clone(&counters)));
    let mut reader = BufReader::new(stream);
    let mut next_ticket = 0u64;
    // Clean EOF or a dead/oversized stream ends the loop; in-flight jobs
    // still complete through the sequencer.
    while let Ok(Some(payload)) = wire::read_frame(&mut reader, shared.max_frame) {
        counters
            .bytes_in
            .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
        let ticket = next_ticket;
        next_ticket += 1;
        match wire::decode_request(&payload) {
            Ok((seq, body)) => {
                let job_shared = Arc::clone(shared);
                let job_counters = Arc::clone(&counters);
                let job_sequencer = Arc::clone(&sequencer);
                let submitted = shared.pool.submit(Box::new(move || {
                    // A panic below must still complete the ticket, or the
                    // connection's response stream would stall forever.
                    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_request(&job_shared, &job_counters, body)
                    }))
                    .unwrap_or_else(|_| {
                        job_shared
                            .stats
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        ResponseBody::Protocol("internal error executing request".to_string())
                    });
                    job_sequencer.complete(ticket, wire::encode_response(seq, &response));
                }));
                if !submitted {
                    // Pool refused: the server is shutting down.
                    break;
                }
            }
            Err(err) => {
                // The frame was intact but the payload is malformed: answer
                // in order (the client may have pipelined good requests
                // ahead of it), then stop trusting the stream.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let seq = payload
                    .get(..8)
                    .map_or(0, |b| u64::from_be_bytes(b.try_into().unwrap()));
                sequencer.complete(
                    ticket,
                    wire::encode_response(seq, &ResponseBody::Protocol(err.to_string())),
                );
                break;
            }
        }
    }
}

fn handle_request(
    shared: &ServerShared,
    counters: &ConnCounters,
    body: RequestBody,
) -> ResponseBody {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    counters.requests.fetch_add(1, Ordering::Relaxed);
    match body {
        RequestBody::Execute(session, query) => match shared.engine.execute(&session, &query) {
            Ok(response) => ResponseBody::Response(response),
            Err(error) => {
                shared.stats.gdpr_errors.fetch_add(1, Ordering::Relaxed);
                counters.errors.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Error(error)
            }
        },
        RequestBody::Features => ResponseBody::Features(shared.engine.features()),
        RequestBody::SpaceReport => ResponseBody::Space(shared.engine.space_report()),
        RequestBody::RecordCount => ResponseBody::Count(shared.engine.record_count() as u64),
        RequestBody::Name => ResponseBody::Name(shared.engine.name().to_string()),
        RequestBody::Ping(blob) => ResponseBody::Pong(blob),
        RequestBody::ConnStats => ResponseBody::Stats(StatsSnapshot {
            requests: counters.requests.load(Ordering::Relaxed),
            errors: counters.errors.load(Ordering::Relaxed),
            bytes_in: counters.bytes_in.load(Ordering::Relaxed),
            bytes_out: counters.bytes_out.load(Ordering::Relaxed),
            server_connections: shared.stats.connections_accepted.load(Ordering::Relaxed),
            server_requests: shared.stats.requests.load(Ordering::Relaxed),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::compliance::FeatureReport;
    use gdpr_core::connector::SpaceReport;
    use gdpr_core::error::{GdprError, GdprResult};
    use gdpr_core::record::{Metadata, PersonalRecord};
    use gdpr_core::store::RecordStore;
    use gdpr_core::{ComplianceEngine, GdprQuery, GdprResponse, Session};
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// The same trivial in-memory store the engine's own tests use — the
    /// server must work over any RecordStore-backed engine.
    struct MemStore {
        rows: Mutex<BTreeMap<String, PersonalRecord>>,
        clock: clock::SharedClock,
    }

    impl MemStore {
        fn new() -> MemStore {
            MemStore {
                rows: Mutex::new(BTreeMap::new()),
                clock: clock::sim(),
            }
        }
    }

    impl RecordStore for MemStore {
        fn clock(&self) -> clock::SharedClock {
            self.clock.clone()
        }
        fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
            Ok(self.rows.lock().get(key).cloned())
        }
        fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn rewrite(&self, record: &PersonalRecord, _ttl_changed: bool) -> GdprResult<()> {
            self.rows.lock().insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn delete(&self, key: &str) -> GdprResult<bool> {
            Ok(self.rows.lock().remove(key).is_some())
        }
        fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
            Ok(self.rows.lock().values().cloned().collect())
        }
        fn purge_expired(&self) -> GdprResult<usize> {
            Ok(0)
        }
        fn space_report(&self) -> SpaceReport {
            SpaceReport {
                personal_data_bytes: 1,
                total_bytes: 2,
            }
        }
        fn record_count(&self) -> usize {
            self.rows.lock().len()
        }
        fn features(&self) -> FeatureReport {
            FeatureReport::default()
        }
        fn name(&self) -> &str {
            "mem"
        }
    }

    fn spawn_server() -> GdprServer {
        let engine: EngineHandle = Arc::new(ComplianceEngine::new(MemStore::new()));
        GdprServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_depth: 8,
                max_frame: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn record(key: &str) -> PersonalRecord {
        PersonalRecord::new(
            key,
            format!("data-{key}"),
            Metadata::new("neo", vec!["ads".to_string()], Duration::from_secs(60)),
        )
    }

    fn call(stream: &mut TcpStream, seq: u64, body: &RequestBody) -> (u64, ResponseBody) {
        wire::write_frame(stream, &wire::encode_request(seq, body)).unwrap();
        let payload = wire::read_frame(stream, wire::MAX_FRAME).unwrap().unwrap();
        wire::decode_response(&payload).unwrap()
    }

    #[test]
    fn serves_execute_and_introspection() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let controller = Session::controller();

        let (seq, body) = call(
            &mut stream,
            7,
            &RequestBody::Execute(controller.clone(), GdprQuery::CreateRecord(record("k1"))),
        );
        assert_eq!(seq, 7);
        assert_eq!(body, ResponseBody::Response(GdprResponse::Created));

        // GDPR errors roundtrip as errors, not protocol failures.
        let (_, body) = call(
            &mut stream,
            8,
            &RequestBody::Execute(controller, GdprQuery::CreateRecord(record("k1"))),
        );
        assert_eq!(
            body,
            ResponseBody::Error(GdprError::AlreadyExists("k1".to_string()))
        );

        let (_, body) = call(&mut stream, 9, &RequestBody::RecordCount);
        assert_eq!(body, ResponseBody::Count(1));
        let (_, body) = call(&mut stream, 10, &RequestBody::Name);
        assert_eq!(body, ResponseBody::Name("mem".to_string()));
        let (_, body) = call(&mut stream, 11, &RequestBody::Ping(vec![1, 2, 3]));
        assert_eq!(body, ResponseBody::Pong(vec![1, 2, 3]));
        let (_, body) = call(&mut stream, 12, &RequestBody::ConnStats);
        match body {
            ResponseBody::Stats(stats) => {
                assert!(stats.requests >= 5);
                assert_eq!(stats.errors, 1);
                assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let controller = Session::controller();
        // Burst all requests before reading a single response.
        let n = 50u64;
        for i in 0..n {
            let body = RequestBody::Execute(
                controller.clone(),
                GdprQuery::CreateRecord(record(&format!("k{i}"))),
            );
            wire::write_frame(&mut stream, &wire::encode_request(i, &body)).unwrap();
        }
        for i in 0..n {
            let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
                .unwrap()
                .unwrap();
            let (seq, body) = wire::decode_response(&payload).unwrap();
            assert_eq!(seq, i, "responses must keep request order");
            assert_eq!(body, ResponseBody::Response(GdprResponse::Created));
        }
        let (_, body) = call(&mut stream, 999, &RequestBody::RecordCount);
        assert_eq!(body, ResponseBody::Count(n));
        server.shutdown();
    }

    #[test]
    fn malformed_payload_gets_protocol_error_then_close() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Valid frame, garbage payload (seq readable, opcode bogus).
        let mut payload = 42u64.to_be_bytes().to_vec();
        payload.push(0xEE);
        wire::write_frame(&mut stream, &payload).unwrap();
        stream.flush().unwrap();
        let response = wire::read_frame(&mut stream, wire::MAX_FRAME)
            .unwrap()
            .unwrap();
        let (seq, body) = wire::decode_response(&response).unwrap();
        assert_eq!(seq, 42);
        assert!(matches!(body, ResponseBody::Protocol(_)));
        // The server stops reading this stream afterwards.
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// A client that pipelines requests but never drains responses must
    /// not park the (single) pool worker forever inside its sequencer:
    /// the write timeout kills that connection and other clients keep
    /// being served.
    #[test]
    fn non_draining_client_cannot_starve_other_connections() {
        let engine: EngineHandle = Arc::new(ComplianceEngine::new(MemStore::new()));
        let server = GdprServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 4,
                max_frame: wire::MAX_FRAME,
                write_timeout: Duration::from_millis(200),
            },
        )
        .unwrap();

        // One record with a payload far beyond the loopback socket
        // buffers, so unread responses fill them fast.
        let mut setup = TcpStream::connect(server.local_addr()).unwrap();
        let mut big = record("big");
        big.data = "x".repeat(512 * 1024);
        let (_, body) = call(
            &mut setup,
            0,
            &RequestBody::Execute(Session::controller(), GdprQuery::CreateRecord(big)),
        );
        assert_eq!(body, ResponseBody::Response(GdprResponse::Created));

        // The stalling client: burst reads of the big record, never read
        // a single response.
        let staller = TcpStream::connect(server.local_addr()).unwrap();
        {
            let mut w = staller.try_clone().unwrap();
            for i in 0..64u64 {
                let body = RequestBody::Execute(
                    Session::processor("ads"),
                    GdprQuery::ReadDataByKey("big".to_string()),
                );
                wire::write_frame(&mut w, &wire::encode_request(i, &body)).unwrap();
            }
        }

        // A well-behaved client must still get answers within the write
        // timeout plus slack.
        let mut probe = TcpStream::connect(server.local_addr()).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (_, body) = call(&mut probe, 1, &RequestBody::Ping(vec![42]));
        assert_eq!(body, ResponseBody::Pong(vec![42]));
        drop(staller);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let (_, body) = call(&mut stream, 1, &RequestBody::Ping(vec![7]));
        assert_eq!(body, ResponseBody::Pong(vec![7]));
        server.shutdown();
        server.shutdown();
        // The old connection is gone.
        let _ = stream.flush();
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
    }
}
