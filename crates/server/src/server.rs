//! The TCP front-end: a readiness-driven event loop multiplexing every
//! connection on one thread, with engine work executed as per-connection
//! batches on a small executor pool.
//!
//! ```text
//! clients ══╗   ┌────────── event loop (epoll, 1 thread) ──────────┐
//!           ╠══▶│ nonblocking reads → FrameDecoder → pending ops   │
//!           ╠══▶│   burst of N ops ──▶ Executor: execute_batch(N)  │
//!           ╚══▶│ completions → per-conn outbuf → write draining   │
//!               └──────────────────────────────────────────────────┘
//! ```
//!
//! Pipelined clients get their whole in-flight window executed as one
//! engine-side batch: one executor handoff, one audit-lock acquisition,
//! and one response write per burst instead of per op. Responses stay in
//! request order because each connection has at most one batch in flight
//! and a batch's responses are encoded in op order — no sequencer needed.
//! Slow consumers are isolated by per-connection outbound buffers with a
//! progress-based write timeout; slow producers cost one idle epoll
//! registration, not a parked thread, so thousands of idle connections
//! are served by the loop thread plus `workers` executor threads.

use crate::conn::{ConnCounters, DecodedOp};
use crate::event_loop::{wake_pair, Completion, EventLoop, Waker};
use crate::metrics::ServerTelemetry;
use crate::pool::Executor;
use crate::sys;
use crate::wire::{self, RequestBody, ResponseBody, StatsSnapshot};
use gdpr_core::tenant::TenantId;
use gdpr_core::{EngineHandle, GdprQuery, Session};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads running engine batches (default: the machine's
    /// parallelism).
    pub workers: usize,
    /// Bound on batches waiting for an executor thread; past it the event
    /// loop leaves bursts pending on their connections, whose reads pause
    /// once `max_pending_ops` accumulate (TCP backpressure).
    pub queue_depth: usize,
    /// Largest accepted frame.
    pub max_frame: usize,
    /// A connection owing response bytes that makes no write progress for
    /// this long is killed. A client that pipelines requests but never
    /// drains responses would otherwise hold its outbound buffer (and the
    /// memory behind it) forever.
    pub write_timeout: Duration,
    /// Most ops one server-side batch may carry; a longer pipelined burst
    /// is split so a single connection cannot monopolize an executor
    /// thread for an unbounded stretch.
    pub max_batch: usize,
    /// Decoded-but-unexecuted ops a connection may accumulate before its
    /// read interest is dropped.
    pub max_pending_ops: usize,
    /// Outbound-buffer size past which a connection's read interest is
    /// dropped until the client drains responses.
    pub outbuf_high_water: usize,
    /// `Some(pre-shared key)` runs [`crate::secure`]'s encrypted transport:
    /// every connection must complete the handshake before its first op,
    /// and every frame payload afterwards is a sealed record. `None`
    /// serves plaintext. The default follows `GDPR_ENCRYPT` /
    /// `GDPR_ENCRYPT_KEY` so whole test suites switch transport via the
    /// environment.
    pub encrypt: Option<String>,
    /// `Some(addr)` additionally binds a plaintext TCP listener serving the
    /// current metrics snapshot in Prometheus text exposition format, one
    /// HTTP/1.0 response per connection, handled by the same event loop.
    /// `None` (the default) serves metrics only via the `GetMetrics` wire
    /// op.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
        ServerConfig {
            workers,
            queue_depth: workers * 32,
            max_frame: wire::MAX_FRAME,
            write_timeout: Duration::from_secs(30),
            max_batch: 128,
            max_pending_ops: 4096,
            outbuf_high_water: 8 << 20,
            encrypt: crate::secure::encrypt_key_from_env(),
            metrics_addr: None,
        }
    }
}

/// Server-wide counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections_accepted: AtomicU64,
    pub connections_active: AtomicU64,
    pub requests: AtomicU64,
    pub gdpr_errors: AtomicU64,
    pub protocol_errors: AtomicU64,
    /// Connections that completed the encrypted-transport handshake.
    pub handshakes_completed: AtomicU64,
    /// Connections dropped for a bad hello — including plaintext clients
    /// hitting an encrypted server (downgrade attempts land here).
    pub handshake_failures: AtomicU64,
    /// Sealed records rejected for a replayed/reordered sequence number,
    /// audited separately from corruption per `CryptoError::Replay`.
    pub replay_rejects: AtomicU64,
    /// Sealed records rejected for tag mismatch or truncation.
    pub decrypt_failures: AtomicU64,
}

/// State shared between the server handle, the event loop, and executor
/// batch jobs.
pub(crate) struct ServerShared {
    pub(crate) engine: EngineHandle,
    pub(crate) executor: Executor,
    pub(crate) addr: SocketAddr,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) stats: ServerStats,
    /// Finished batches awaiting the loop (paired with a wake).
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) waker: Waker,
    /// Per-stage latency histograms (decode wait, queue wait, execute,
    /// write drain, batch size), recorded by the loop and the executor,
    /// snapshotted by `GetMetrics` and the exposition endpoint.
    pub(crate) telemetry: ServerTelemetry,
    /// Bound address of the metrics exposition listener, when configured.
    pub(crate) metrics_addr: Option<SocketAddr>,
}

/// A running GDPR wire-protocol server over any [`EngineHandle`].
pub struct GdprServer {
    shared: Arc<ServerShared>,
    loop_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl GdprServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `engine`.
    pub fn bind(engine: EngineHandle, addr: &str, config: ServerConfig) -> io::Result<GdprServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let poller = sys::Poller::new()?;
        let (waker, wake_rx) = wake_pair()?;
        let shared = Arc::new(ServerShared {
            engine,
            executor: Executor::new(config.workers, config.queue_depth),
            addr: local,
            config,
            shutdown: AtomicBool::new(false),
            stats: ServerStats::default(),
            completions: Mutex::new(Vec::new()),
            waker,
            telemetry: ServerTelemetry::default(),
            metrics_addr,
        });
        let event_loop = EventLoop::new(
            Arc::clone(&shared),
            poller,
            listener,
            metrics_listener,
            wake_rx,
        )?;
        let loop_handle = std::thread::spawn(move || event_loop.run());
        Ok(GdprServer {
            shared,
            loop_handle: Mutex::new(Some(loop_handle)),
        })
    }

    /// The bound address (with the kernel-assigned port when bound to :0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The bound address of the Prometheus exposition listener, when
    /// `metrics_addr` was configured (with the kernel-assigned port when
    /// bound to :0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// Graceful shutdown: stop accepting, let in-flight batches complete,
    /// flush what the sockets accept, close every connection, join the
    /// loop and the executor. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.waker.wake();
        if let Some(handle) = self.loop_handle.lock().take() {
            let _ = handle.join();
        }
        self.shared.executor.shutdown();
    }
}

impl Drop for GdprServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Execute one connection's batch and encode its responses, in op order,
/// into a single buffer. Runs of consecutive `Execute` ops go through the
/// engine's batch entry point; control ops and pre-encoded protocol
/// errors are emitted at their positions.
pub(crate) fn run_batch(
    shared: &ServerShared,
    counters: &ConnCounters,
    ops: Vec<DecodedOp>,
) -> Vec<u8> {
    let mut out = Vec::new();
    let mut run_seqs: Vec<u64> = Vec::new();
    let mut run_ops: Vec<(Session, GdprQuery)> = Vec::new();
    shared.telemetry.batch_size.record_value(ops.len() as u64);
    for op in ops {
        // Decode stamp → here (executor start) is the full time a decoded
        // frame waited behind earlier batches and the queue.
        if let DecodedOp::Request { decoded_at, .. } = &op {
            shared.telemetry.decode_wait.record(decoded_at.elapsed());
        }
        match op {
            DecodedOp::Request {
                seq,
                body: RequestBody::Execute(session, query),
                ..
            } => {
                run_seqs.push(seq);
                run_ops.push((session, query));
            }
            other => {
                flush_run(shared, counters, &mut run_seqs, &mut run_ops, &mut out);
                match other {
                    DecodedOp::Canned(payload) => {
                        // Infallible: writing into a Vec.
                        let _ = wire::write_frame(&mut out, &payload);
                    }
                    DecodedOp::Request {
                        seq, tenant, body, ..
                    } => {
                        let response = handle_control(shared, counters, &tenant, body);
                        let _ = wire::write_frame(&mut out, &wire::encode_response(seq, &response));
                    }
                }
            }
        }
    }
    flush_run(shared, counters, &mut run_seqs, &mut run_ops, &mut out);
    out
}

/// Execute a run of `Execute` ops as one engine batch and encode its
/// responses. A panic anywhere in the batch answers every op of the run
/// with a protocol error instead of stalling the connection.
fn flush_run(
    shared: &ServerShared,
    counters: &ConnCounters,
    run_seqs: &mut Vec<u64>,
    run_ops: &mut Vec<(Session, GdprQuery)>,
    out: &mut Vec<u8>,
) {
    if run_ops.is_empty() {
        return;
    }
    let seqs = std::mem::take(run_seqs);
    let ops = std::mem::take(run_ops);
    let count = ops.len() as u64;
    shared.stats.requests.fetch_add(count, Ordering::Relaxed);
    counters.requests.fetch_add(count, Ordering::Relaxed);
    let started = std::time::Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.engine.execute_batch(ops)
    }));
    shared.telemetry.execute.record(started.elapsed());
    match outcome {
        Ok(results) => {
            let mut results = results.into_iter();
            for seq in seqs {
                let body = match results.next() {
                    Some(Ok(response)) => ResponseBody::Response(response),
                    Some(Err(error)) => {
                        shared.stats.gdpr_errors.fetch_add(1, Ordering::Relaxed);
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        ResponseBody::Error(error)
                    }
                    // A connector returning fewer results than ops would
                    // otherwise desynchronize every later response.
                    None => {
                        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        ResponseBody::Protocol(
                            "batch executor returned too few results".to_string(),
                        )
                    }
                };
                let _ = wire::write_frame(out, &wire::encode_response(seq, &body));
            }
        }
        Err(_) => {
            for seq in seqs {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = wire::write_frame(
                    out,
                    &wire::encode_response(
                        seq,
                        &ResponseBody::Protocol("internal error executing request".to_string()),
                    ),
                );
            }
        }
    }
}

fn handle_control(
    shared: &ServerShared,
    counters: &ConnCounters,
    tenant: &TenantId,
    body: RequestBody,
) -> ResponseBody {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    counters.requests.fetch_add(1, Ordering::Relaxed);
    match body {
        // Execute runs are batched in `run_batch`; a stray one here still
        // answers correctly.
        RequestBody::Execute(session, query) => match shared.engine.execute(&session, &query) {
            Ok(response) => ResponseBody::Response(response),
            Err(error) => {
                shared.stats.gdpr_errors.fetch_add(1, Ordering::Relaxed);
                counters.errors.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Error(error)
            }
        },
        RequestBody::Features => ResponseBody::Features(shared.engine.features()),
        RequestBody::SpaceReport => ResponseBody::Space(shared.engine.space_report()),
        RequestBody::RecordCount => ResponseBody::Count(shared.engine.record_count() as u64),
        RequestBody::Name => ResponseBody::Name(shared.engine.name().to_string()),
        RequestBody::Ping(blob) => ResponseBody::Pong(blob),
        RequestBody::ConnStats => ResponseBody::Stats(StatsSnapshot {
            requests: counters.requests.load(Ordering::Relaxed),
            errors: counters.errors.load(Ordering::Relaxed),
            bytes_in: counters.bytes_in.load(Ordering::Relaxed),
            bytes_out: counters.bytes_out.load(Ordering::Relaxed),
            server_connections: shared.stats.connections_accepted.load(Ordering::Relaxed),
            server_requests: shared.stats.requests.load(Ordering::Relaxed),
        }),
        RequestBody::GetMetrics => {
            // Tenant-scoped: a tenant's metrics probe sees its own opcode
            // counters, never another tenant's.
            ResponseBody::Metrics(crate::metrics::build_metrics_report_for(shared, tenant))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::compliance::FeatureReport;
    use gdpr_core::connector::SpaceReport;
    use gdpr_core::error::{GdprError, GdprResult};
    use gdpr_core::record::{Metadata, PersonalRecord};
    use gdpr_core::store::RecordStore;
    use gdpr_core::{ComplianceEngine, GdprQuery, GdprResponse, Session};
    use std::collections::BTreeMap;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    /// The same trivial in-memory store the engine's own tests use — the
    /// server must work over any RecordStore-backed engine.
    struct MemStore {
        rows: Mutex<BTreeMap<String, PersonalRecord>>,
        clock: clock::SharedClock,
    }

    impl MemStore {
        fn new() -> MemStore {
            MemStore {
                rows: Mutex::new(BTreeMap::new()),
                clock: clock::sim(),
            }
        }
    }

    impl RecordStore for MemStore {
        fn clock(&self) -> clock::SharedClock {
            self.clock.clone()
        }
        fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
            Ok(self.rows.lock().get(key).cloned())
        }
        fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
            let mut rows = self.rows.lock();
            if rows.contains_key(&record.key) {
                return Err(GdprError::AlreadyExists(record.key.clone()));
            }
            rows.insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn rewrite(&self, record: &PersonalRecord, _ttl_changed: bool) -> GdprResult<()> {
            self.rows.lock().insert(record.key.clone(), record.clone());
            Ok(())
        }
        fn delete(&self, key: &str) -> GdprResult<bool> {
            Ok(self.rows.lock().remove(key).is_some())
        }
        fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
            Ok(self.rows.lock().values().cloned().collect())
        }
        fn purge_expired(&self) -> GdprResult<usize> {
            Ok(0)
        }
        fn space_report(&self) -> SpaceReport {
            SpaceReport {
                personal_data_bytes: 1,
                total_bytes: 2,
            }
        }
        fn record_count(&self) -> usize {
            self.rows.lock().len()
        }
        fn features(&self) -> FeatureReport {
            FeatureReport::default()
        }
        fn name(&self) -> &str {
            "mem"
        }
    }

    fn spawn_server() -> GdprServer {
        let engine: EngineHandle = Arc::new(ComplianceEngine::new(MemStore::new()));
        GdprServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_depth: 8,
                max_frame: 1 << 20,
                // These tests exercise the raw plaintext wire; they must
                // not flip encrypted under a suite-wide GDPR_ENCRYPT=1.
                encrypt: None,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn record(key: &str) -> PersonalRecord {
        PersonalRecord::new(
            key,
            format!("data-{key}"),
            Metadata::new("neo", vec!["ads".to_string()], Duration::from_secs(60)),
        )
    }

    fn call(stream: &mut TcpStream, seq: u64, body: &RequestBody) -> (u64, ResponseBody) {
        wire::write_frame(
            stream,
            &wire::encode_request(seq, &TenantId::default(), body),
        )
        .unwrap();
        let payload = wire::read_frame(stream, wire::MAX_FRAME).unwrap().unwrap();
        wire::decode_response(&payload).unwrap()
    }

    #[test]
    fn serves_execute_and_introspection() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let controller = Session::controller();

        let (seq, body) = call(
            &mut stream,
            7,
            &RequestBody::Execute(controller.clone(), GdprQuery::CreateRecord(record("k1"))),
        );
        assert_eq!(seq, 7);
        assert_eq!(body, ResponseBody::Response(GdprResponse::Created));

        // GDPR errors roundtrip as errors, not protocol failures.
        let (_, body) = call(
            &mut stream,
            8,
            &RequestBody::Execute(controller, GdprQuery::CreateRecord(record("k1"))),
        );
        assert_eq!(
            body,
            ResponseBody::Error(GdprError::AlreadyExists("k1".to_string()))
        );

        let (_, body) = call(&mut stream, 9, &RequestBody::RecordCount);
        assert_eq!(body, ResponseBody::Count(1));
        let (_, body) = call(&mut stream, 10, &RequestBody::Name);
        assert_eq!(body, ResponseBody::Name("mem".to_string()));
        let (_, body) = call(&mut stream, 11, &RequestBody::Ping(vec![1, 2, 3]));
        assert_eq!(body, ResponseBody::Pong(vec![1, 2, 3]));
        let (_, body) = call(&mut stream, 12, &RequestBody::ConnStats);
        match body {
            ResponseBody::Stats(stats) => {
                assert!(stats.requests >= 5);
                assert_eq!(stats.errors, 1);
                assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let controller = Session::controller();
        // Burst all requests before reading a single response.
        let n = 50u64;
        for i in 0..n {
            let body = RequestBody::Execute(
                controller.clone(),
                GdprQuery::CreateRecord(record(&format!("k{i}"))),
            );
            wire::write_frame(
                &mut stream,
                &wire::encode_request(i, &TenantId::default(), &body),
            )
            .unwrap();
        }
        for i in 0..n {
            let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
                .unwrap()
                .unwrap();
            let (seq, body) = wire::decode_response(&payload).unwrap();
            assert_eq!(seq, i, "responses must keep request order");
            assert_eq!(body, ResponseBody::Response(GdprResponse::Created));
        }
        let (_, body) = call(&mut stream, 999, &RequestBody::RecordCount);
        assert_eq!(body, ResponseBody::Count(n));
        server.shutdown();
    }

    #[test]
    fn malformed_payload_gets_protocol_error_then_close() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Valid frame, garbage payload (version/seq/tenant readable,
        // opcode bogus).
        let mut payload = vec![wire::PROTOCOL_VERSION];
        payload.extend_from_slice(&42u64.to_be_bytes());
        payload.extend_from_slice(&0u32.to_be_bytes()); // empty tenant
        payload.push(0xEE);
        wire::write_frame(&mut stream, &payload).unwrap();
        stream.flush().unwrap();
        let response = wire::read_frame(&mut stream, wire::MAX_FRAME)
            .unwrap()
            .unwrap();
        let (seq, body) = wire::decode_response(&response).unwrap();
        assert_eq!(seq, 42);
        assert!(matches!(body, ResponseBody::Protocol(_)));
        // The server stops reading this stream afterwards.
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Requests pipelined ahead of a malformed frame still answer, in
    /// order, before the protocol error and the close.
    #[test]
    fn good_requests_ahead_of_poison_still_answer() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let controller = Session::controller();
        for i in 0..3u64 {
            let body = RequestBody::Execute(
                controller.clone(),
                GdprQuery::CreateRecord(record(&format!("p{i}"))),
            );
            wire::write_frame(
                &mut stream,
                &wire::encode_request(i, &TenantId::default(), &body),
            )
            .unwrap();
        }
        let mut garbage = vec![wire::PROTOCOL_VERSION];
        garbage.extend_from_slice(&9u64.to_be_bytes());
        garbage.extend_from_slice(&0u32.to_be_bytes()); // empty tenant
        garbage.push(0xEE);
        wire::write_frame(&mut stream, &garbage).unwrap();
        for i in 0..3u64 {
            let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
                .unwrap()
                .unwrap();
            let (seq, body) = wire::decode_response(&payload).unwrap();
            assert_eq!(seq, i);
            assert_eq!(body, ResponseBody::Response(GdprResponse::Created));
        }
        let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
            .unwrap()
            .unwrap();
        let (seq, body) = wire::decode_response(&payload).unwrap();
        assert_eq!(seq, 9);
        assert!(matches!(body, ResponseBody::Protocol(_)));
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        server.shutdown();
    }

    /// A client that pipelines requests but never drains responses must
    /// not wedge the server: its stalled outbound buffer trips the write
    /// timeout and other clients keep being served.
    #[test]
    fn non_draining_client_cannot_starve_other_connections() {
        let engine: EngineHandle = Arc::new(ComplianceEngine::new(MemStore::new()));
        let server = GdprServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 4,
                write_timeout: Duration::from_millis(200),
                encrypt: None,
                ..Default::default()
            },
        )
        .unwrap();

        // One record with a payload far beyond the loopback socket
        // buffers, so unread responses fill them fast.
        let mut setup = TcpStream::connect(server.local_addr()).unwrap();
        let mut big = record("big");
        big.data = "x".repeat(512 * 1024);
        let (_, body) = call(
            &mut setup,
            0,
            &RequestBody::Execute(Session::controller(), GdprQuery::CreateRecord(big)),
        );
        assert_eq!(body, ResponseBody::Response(GdprResponse::Created));

        // The stalling client: burst reads of the big record, never read
        // a single response.
        let staller = TcpStream::connect(server.local_addr()).unwrap();
        {
            let mut w = staller.try_clone().unwrap();
            for i in 0..64u64 {
                let body = RequestBody::Execute(
                    Session::processor("ads"),
                    GdprQuery::ReadDataByKey("big".to_string()),
                );
                wire::write_frame(
                    &mut w,
                    &wire::encode_request(i, &TenantId::default(), &body),
                )
                .unwrap();
            }
        }

        // A well-behaved client must still get answers within the write
        // timeout plus slack.
        let mut probe = TcpStream::connect(server.local_addr()).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (_, body) = call(&mut probe, 1, &RequestBody::Ping(vec![42]));
        assert_eq!(body, ResponseBody::Pong(vec![42]));
        // And the staller is eventually killed, releasing its state.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().connections_active.load(Ordering::Relaxed) > 2 {
            assert!(Instant::now() < deadline, "staller never reaped");
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(staller);
        server.shutdown();
    }

    /// Frames delivered one byte at a time (and split across arbitrary
    /// write boundaries) must reassemble exactly — the nonblocking decode
    /// path sees whatever fragments the kernel delivers.
    #[test]
    fn byte_by_byte_frames_reassemble() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let frame = {
            let mut buf = Vec::new();
            wire::write_frame(
                &mut buf,
                &wire::encode_request(5, &TenantId::default(), &RequestBody::Ping(vec![9, 9])),
            )
            .unwrap();
            buf
        };
        for byte in &frame {
            stream.write_all(&[*byte]).unwrap();
            stream.flush().unwrap();
        }
        let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
            .unwrap()
            .unwrap();
        let (seq, body) = wire::decode_response(&payload).unwrap();
        assert_eq!((seq, body), (5, ResponseBody::Pong(vec![9, 9])));

        // Two frames split mid-header across one write boundary.
        let mut two = Vec::new();
        wire::write_frame(
            &mut two,
            &wire::encode_request(6, &TenantId::default(), &RequestBody::Ping(vec![1])),
        )
        .unwrap();
        wire::write_frame(
            &mut two,
            &wire::encode_request(7, &TenantId::default(), &RequestBody::Ping(vec![2])),
        )
        .unwrap();
        let cut = two.len() / 2 + 1;
        stream.write_all(&two[..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        stream.write_all(&two[cut..]).unwrap();
        for (want_seq, want_blob) in [(6u64, vec![1u8]), (7, vec![2])] {
            let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
                .unwrap()
                .unwrap();
            let (seq, body) = wire::decode_response(&payload).unwrap();
            assert_eq!((seq, body), (want_seq, ResponseBody::Pong(want_blob)));
        }
        server.shutdown();
    }

    /// An oversized length prefix is fatal for the connection — no
    /// response can be attributed to a seq once framing is gone.
    #[test]
    fn hostile_length_kills_the_connection() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// A churn of short-lived connections must leave no per-connection
    /// state behind: the active gauge returns to zero and the server
    /// still serves.
    #[test]
    fn connection_churn_leaves_no_state() {
        let server = spawn_server();
        let churn = 500u64;
        for i in 0..churn {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            let (_, body) = call(&mut stream, i, &RequestBody::Ping(vec![i as u8]));
            assert_eq!(body, ResponseBody::Pong(vec![i as u8]));
        }
        assert_eq!(
            server.stats().connections_accepted.load(Ordering::Relaxed),
            churn
        );
        // Closures are detected on the loop's next wake; give them time.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().connections_active.load(Ordering::Relaxed) > 0 {
            assert!(
                Instant::now() < deadline,
                "leaked {} connections' state",
                server.stats().connections_active.load(Ordering::Relaxed)
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut probe = TcpStream::connect(server.local_addr()).unwrap();
        let (_, body) = call(&mut probe, 0, &RequestBody::Ping(vec![1]));
        assert_eq!(body, ResponseBody::Pong(vec![1]));
        server.shutdown();
    }

    /// A slow writer (request dribbled byte-by-byte) and a slow reader
    /// (responses drained in tiny chunks) sharing the server with a
    /// pipelining client: everyone completes, nothing crosses.
    #[test]
    fn slow_reader_slow_writer_pair_under_load() {
        let server = spawn_server();
        let addr = server.local_addr();
        let flood = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let controller = Session::controller();
            let n = 200u64;
            for i in 0..n {
                let body = RequestBody::Execute(
                    controller.clone(),
                    GdprQuery::CreateRecord(record(&format!("f{i}"))),
                );
                wire::write_frame(
                    &mut stream,
                    &wire::encode_request(i, &TenantId::default(), &body),
                )
                .unwrap();
            }
            for i in 0..n {
                let payload = wire::read_frame(&mut stream, wire::MAX_FRAME)
                    .unwrap()
                    .unwrap();
                let (seq, body) = wire::decode_response(&payload).unwrap();
                assert_eq!(seq, i);
                assert_eq!(body, ResponseBody::Response(GdprResponse::Created));
            }
        });

        // Slow writer: dribble a ping frame with pauses while the flood
        // runs.
        let mut slow = TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        wire::write_frame(
            &mut frame,
            &wire::encode_request(1, &TenantId::default(), &RequestBody::Ping(vec![5; 32])),
        )
        .unwrap();
        for chunk in frame.chunks(3) {
            slow.write_all(chunk).unwrap();
            slow.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        // Slow reader: drain the response two bytes at a time.
        let mut response = Vec::new();
        let mut buf = [0u8; 2];
        slow.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        loop {
            let n = slow.read(&mut buf).unwrap();
            assert!(n > 0, "server closed on the slow client");
            response.extend_from_slice(&buf[..n]);
            if response.len() >= 4 {
                let len = u32::from_be_bytes(response[..4].try_into().unwrap()) as usize;
                if response.len() >= 4 + len {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let (seq, body) = wire::decode_response(&response[4..]).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(body, ResponseBody::Pong(vec![5; 32]));
        flood.join().unwrap();
        server.shutdown();
    }

    fn spawn_encrypted_server(key: &str) -> GdprServer {
        let engine: EngineHandle = Arc::new(ComplianceEngine::new(MemStore::new()));
        GdprServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_depth: 8,
                encrypt: Some(key.to_string()),
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Run the client half of the handshake by hand — these tests pin the
    /// wire behavior below `GdprClient`'s convenience layer.
    fn client_handshake(stream: &mut TcpStream, key: &str) -> crypto::channel::DuplexChannel {
        let client_random = crate::secure::session_random();
        wire::write_frame(
            stream,
            &crate::secure::encode_hello(crate::secure::ROLE_CLIENT, &client_random),
        )
        .unwrap();
        let ack = wire::read_frame(stream, wire::MAX_FRAME).unwrap().unwrap();
        let server_random = crate::secure::decode_hello(&ack, crate::secure::ROLE_SERVER).unwrap();
        crate::secure::client_channel(key, &client_random, &server_random)
    }

    fn call_sealed(
        stream: &mut TcpStream,
        channel: &mut crypto::channel::DuplexChannel,
        seq: u64,
        body: &RequestBody,
    ) -> (u64, ResponseBody) {
        let sealed = channel.seal(&wire::encode_request(seq, &TenantId::default(), body));
        wire::write_frame(stream, &sealed).unwrap();
        let record = wire::read_frame(stream, wire::MAX_FRAME + crate::secure::SEAL_OVERHEAD)
            .unwrap()
            .unwrap();
        let plaintext = channel.open(&record).unwrap();
        wire::decode_response(&plaintext).unwrap()
    }

    #[test]
    fn encrypted_transport_serves_end_to_end() {
        let server = spawn_encrypted_server("unit-psk");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut channel = client_handshake(&mut stream, "unit-psk");
        let controller = Session::controller();

        let (seq, body) = call_sealed(
            &mut stream,
            &mut channel,
            3,
            &RequestBody::Execute(controller.clone(), GdprQuery::CreateRecord(record("e1"))),
        );
        assert_eq!(
            (seq, body),
            (3, ResponseBody::Response(GdprResponse::Created))
        );
        // GDPR errors and introspection answer identically to plaintext.
        let (_, body) = call_sealed(
            &mut stream,
            &mut channel,
            4,
            &RequestBody::Execute(controller, GdprQuery::CreateRecord(record("e1"))),
        );
        assert_eq!(
            body,
            ResponseBody::Error(GdprError::AlreadyExists("e1".to_string()))
        );
        let (_, body) = call_sealed(&mut stream, &mut channel, 5, &RequestBody::RecordCount);
        assert_eq!(body, ResponseBody::Count(1));
        let (_, body) = call_sealed(&mut stream, &mut channel, 6, &RequestBody::Ping(vec![8; 8]));
        assert_eq!(body, ResponseBody::Pong(vec![8; 8]));

        // Pipelining seals every request up front; responses stay ordered.
        let mut burst = Vec::new();
        for i in 10..20u64 {
            let sealed = channel.seal(&wire::encode_request(
                i,
                &TenantId::default(),
                &RequestBody::Ping(vec![i as u8]),
            ));
            wire::write_frame(&mut burst, &sealed).unwrap();
        }
        stream.write_all(&burst).unwrap();
        for i in 10..20u64 {
            let record = wire::read_frame(&mut stream, wire::MAX_FRAME + 64)
                .unwrap()
                .unwrap();
            let plaintext = channel.open(&record).unwrap();
            let (seq, body) = wire::decode_response(&plaintext).unwrap();
            assert_eq!((seq, body), (i, ResponseBody::Pong(vec![i as u8])));
        }
        assert_eq!(
            server.stats().handshakes_completed.load(Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    /// A plaintext client on an encrypted server gets no answer at all:
    /// the op frame fails hello validation and the connection drops —
    /// no downgrade, no protocol-error oracle for unauthenticated peers.
    #[test]
    fn plaintext_client_is_rejected_without_response() {
        let server = spawn_encrypted_server("unit-psk");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        wire::write_frame(
            &mut stream,
            &wire::encode_request(1, &TenantId::default(), &RequestBody::Ping(vec![1])),
        )
        .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().handshake_failures.load(Ordering::Relaxed), 1);
        assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn version_skew_and_garbage_hellos_are_rejected() {
        let server = spawn_encrypted_server("unit-psk");
        // Version skew: well-formed hello, wrong version.
        let mut skewed = TcpStream::connect(server.local_addr()).unwrap();
        let mut hello = crate::secure::encode_hello(crate::secure::ROLE_CLIENT, &[3; 32]);
        hello[4..6].copy_from_slice(&7u16.to_be_bytes());
        wire::write_frame(&mut skewed, &hello).unwrap();
        skewed
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert!(matches!(
            wire::read_frame(&mut skewed, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        // Garbage: a framed blob that is not a hello.
        let mut garbage = TcpStream::connect(server.local_addr()).unwrap();
        wire::write_frame(&mut garbage, &[0xEE; 11]).unwrap();
        garbage
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert!(matches!(
            wire::read_frame(&mut garbage, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().handshake_failures.load(Ordering::Relaxed), 2);
        // The server still serves a correct client afterwards.
        let mut good = TcpStream::connect(server.local_addr()).unwrap();
        let mut channel = client_handshake(&mut good, "unit-psk");
        let (_, body) = call_sealed(&mut good, &mut channel, 1, &RequestBody::Ping(vec![4]));
        assert_eq!(body, ResponseBody::Pong(vec![4]));
        server.shutdown();
    }

    /// Mid-handshake EOF (a scanner connecting and leaving, or a partial
    /// hello) must release connection state without a panic or a leak.
    #[test]
    fn mid_handshake_eof_closes_cleanly() {
        let server = spawn_encrypted_server("unit-psk");
        {
            let mut partial = TcpStream::connect(server.local_addr()).unwrap();
            let hello = crate::secure::encode_hello(crate::secure::ROLE_CLIENT, &[5; 32]);
            let mut framed = Vec::new();
            wire::write_frame(&mut framed, &hello).unwrap();
            partial.write_all(&framed[..framed.len() / 2]).unwrap();
            partial.flush().unwrap();
        } // dropped: EOF with half a hello buffered
        {
            let _silent = TcpStream::connect(server.local_addr()).unwrap();
        } // dropped: EOF before any byte
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().connections_active.load(Ordering::Relaxed) > 0 {
            assert!(Instant::now() < deadline, "handshake conn state leaked");
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut good = TcpStream::connect(server.local_addr()).unwrap();
        let mut channel = client_handshake(&mut good, "unit-psk");
        let (_, body) = call_sealed(&mut good, &mut channel, 1, &RequestBody::Ping(vec![6]));
        assert_eq!(body, ResponseBody::Pong(vec![6]));
        server.shutdown();
    }

    /// Replayed records are audited as replays and kill the connection;
    /// tampered records count as decrypt failures.
    #[test]
    fn replay_and_tamper_audit_separately() {
        let server = spawn_encrypted_server("unit-psk");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut channel = client_handshake(&mut stream, "unit-psk");
        let sealed = channel.seal(&wire::encode_request(
            1,
            &TenantId::default(),
            &RequestBody::Ping(vec![1]),
        ));
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &sealed).unwrap();
        stream.write_all(&framed).unwrap();
        // First copy answers; the replayed copy kills the connection.
        let record = wire::read_frame(&mut stream, wire::MAX_FRAME + 64)
            .unwrap()
            .unwrap();
        assert!(channel.open(&record).is_ok());
        stream.write_all(&framed).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().replay_rejects.load(Ordering::Relaxed), 1);

        // Fresh connection, tampered ciphertext.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut channel = client_handshake(&mut stream, "unit-psk");
        let mut sealed = channel.seal(&wire::encode_request(
            1,
            &TenantId::default(),
            &RequestBody::Ping(vec![2]),
        ));
        let last = sealed.len() - 1;
        sealed[last] ^= 0xFF;
        wire::write_frame(&mut stream, &sealed).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(server.stats().decrypt_failures.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let (_, body) = call(&mut stream, 1, &RequestBody::Ping(vec![7]));
        assert_eq!(body, ResponseBody::Pong(vec![7]));
        server.shutdown();
        server.shutdown();
        // The old connection is gone.
        let _ = stream.flush();
        assert!(matches!(
            wire::read_frame(&mut stream, wire::MAX_FRAME),
            Ok(None) | Err(_)
        ));
    }

    fn spawn_sharded_server(shards: usize, encrypt: Option<&str>) -> GdprServer {
        // Every shard must share one clock instance.
        let clock = clock::sim();
        let stores: Vec<MemStore> = (0..shards)
            .map(|_| MemStore {
                rows: Mutex::new(BTreeMap::new()),
                clock: clock.clone(),
            })
            .collect();
        let engine: EngineHandle =
            Arc::new(gdpr_core::sharded::ShardedEngine::new(stores).unwrap());
        GdprServer::bind(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_depth: 8,
                max_frame: 1 << 20,
                encrypt: encrypt.map(str::to_string),
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Run the scripted sequence (3 creates, 1 duplicate create that
    /// errors, 2 processor reads, 1 delete) and assert the metrics
    /// snapshot accounts for every op exactly once — the same invariant
    /// at every shard count and on both transports.
    fn assert_scripted_metrics(server: &GdprServer, key_psk: Option<&str>) {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut channel = key_psk.map(|psk| client_handshake(&mut stream, psk));
        let mut send = |seq: u64, body: &RequestBody| match channel.as_mut() {
            Some(channel) => call_sealed(&mut stream, channel, seq, body),
            None => call(&mut stream, seq, body),
        };
        let controller = Session::controller();
        let processor = Session::processor("ads");
        for (i, key) in ["m1", "m2", "m3"].iter().enumerate() {
            let (_, body) = send(
                i as u64,
                &RequestBody::Execute(controller.clone(), GdprQuery::CreateRecord(record(key))),
            );
            assert_eq!(body, ResponseBody::Response(GdprResponse::Created));
        }
        let (_, body) = send(
            3,
            &RequestBody::Execute(controller.clone(), GdprQuery::CreateRecord(record("m1"))),
        );
        assert!(matches!(body, ResponseBody::Error(_)));
        for seq in 4..6u64 {
            let (_, body) = send(
                seq,
                &RequestBody::Execute(
                    processor.clone(),
                    GdprQuery::ReadDataByKey("m2".to_string()),
                ),
            );
            assert!(matches!(body, ResponseBody::Response(_)));
        }
        let (_, body) = send(
            6,
            &RequestBody::Execute(controller, GdprQuery::DeleteByKey("m3".to_string())),
        );
        assert!(matches!(body, ResponseBody::Response(_)));

        let (_, body) = send(7, &RequestBody::GetMetrics);
        let ResponseBody::Metrics(report) = body else {
            panic!("expected Metrics, got {body:?}");
        };
        let op = |name: &str| report.ops.iter().find(|o| o.name == name).unwrap();
        let create = op("create-record");
        assert_eq!((create.ok, create.errors), (3, 1));
        assert_eq!(create.latency.count, 4);
        let read = op("read-data-by-key");
        assert_eq!((read.ok, read.errors), (2, 0));
        let delete = op("delete-record-by-key");
        assert_eq!((delete.ok, delete.errors), (1, 0));
        let total: u64 = report.ops.iter().map(|o| o.ok + o.errors).sum();
        assert_eq!(total, 7, "every engine op counted exactly once");

        // The lifecycle stages saw these requests too. GetMetrics rides
        // the same decode→batch path as engine ops, so the snapshot it
        // returns already includes its own decode stamp: 8 requests.
        // Batches may coalesce, so batch-level stages only need to be
        // non-empty and internally consistent.
        let stage = |name: &str| {
            report
                .stages
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing stage {name}"))
        };
        assert_eq!(stage("decode_wait").histogram.count, 8);
        let batches = stage("batch_size").histogram.count;
        assert!((1..=8).contains(&batches));
        assert_eq!(stage("queue_wait").histogram.count, batches);
        // The snapshot is taken inside the batch that carries GetMetrics,
        // before that batch's execute time is stamped — so execute always
        // trails by exactly the one in-flight batch.
        assert_eq!(stage("execute").histogram.count, batches - 1);
        assert_eq!(report.counter("requests"), Some(8));
        assert_eq!(report.counter("gdpr_errors"), Some(1));
        assert_eq!(report.counter("protocol_errors"), Some(0));
        let expected_handshakes = u64::from(key_psk.is_some());
        assert_eq!(
            report.counter("handshakes_completed"),
            Some(expected_handshakes)
        );
    }

    #[test]
    fn get_metrics_counts_match_the_scripted_sequence_across_shards() {
        for shards in [1usize, 8] {
            let server = spawn_sharded_server(shards, None);
            assert_scripted_metrics(&server, None);
            server.shutdown();
        }
    }

    #[test]
    fn get_metrics_counts_match_over_the_encrypted_transport() {
        for shards in [1usize, 8] {
            let server = spawn_sharded_server(shards, Some("metrics-psk"));
            assert_scripted_metrics(&server, Some("metrics-psk"));
            server.shutdown();
        }
    }

    /// Hammer `GetMetrics` from several threads while the server shuts
    /// down. Connections may drop mid-flight — that is fine — but the
    /// server must never panic and every response that does arrive must
    /// decode to a well-formed, untorn report.
    #[test]
    fn metrics_snapshot_races_shutdown_without_tearing() {
        let server = spawn_server();
        let addr = server.local_addr();
        let hammers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut served = 0usize;
                    for _ in 0..200 {
                        let Ok(mut stream) = TcpStream::connect(addr) else {
                            break;
                        };
                        let frame =
                            wire::encode_request(1, &TenantId::default(), &RequestBody::GetMetrics);
                        if wire::write_frame(&mut stream, &frame).is_err() {
                            break;
                        }
                        match wire::read_frame(&mut stream, wire::MAX_FRAME) {
                            Ok(Some(payload)) => {
                                let (_, body) = wire::decode_response(&payload).unwrap();
                                let ResponseBody::Metrics(report) = body else {
                                    panic!("expected Metrics, got {body:?}");
                                };
                                // A snapshot racing shutdown must still be
                                // internally coherent: all counters present,
                                // stage list complete.
                                assert!(report.counter("requests").is_some());
                                assert!(report.counter("connections_accepted").is_some());
                                assert_eq!(report.stages.len(), 5);
                                served += 1;
                            }
                            // Dropped by shutdown — acceptable.
                            Ok(None) | Err(_) => break,
                        }
                    }
                    served
                })
            })
            .collect();
        // Let the hammers land a few before pulling the plug.
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        let served: usize = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(served > 0, "at least one snapshot must have been served");
    }
}
