//! The GDPR wire protocol: framing plus a complete codec for every
//! [`GdprQuery`], [`GdprResponse`], and [`GdprError`] variant, so remote
//! semantics are byte-equivalent to in-process calls.
//!
//! # Frame layout
//!
//! ```text
//! ┌──────────────┬──────────────────────────────┐
//! │ u32 BE len   │ payload (len bytes)          │
//! └──────────────┴──────────────────────────────┘
//! request  payload := u8 version │ u64 BE seq │ string tenant │ u8 opcode │ body
//! response payload := u8 version │ u64 BE seq │ u8 status │ body
//! ```
//!
//! The leading byte is the protocol version ([`PROTOCOL_VERSION`], 0x02
//! since multi-tenancy). Version-1 payloads began directly with the `u64`
//! seq — their first byte is the sequence number's most-significant byte,
//! which a client would have to send >7×10¹⁶ requests to raise to 0x02 —
//! so mismatched peers fail loudly on the first frame instead of
//! misparsing it.
//!
//! `tenant` is the caller's tenant name (empty string = the default
//! tenant). It rides in the request header, not inside the session body,
//! so control requests (`GetMetrics`) are tenant-scoped too; for `Execute`
//! the decoder injects it into the session, making the header
//! authoritative.
//!
//! `seq` is assigned by the client and echoed verbatim in the response —
//! with pipelining (many requests in flight per connection) the server
//! answers strictly in request order, and the echoed `seq` lets the client
//! assert that no response was reordered or crossed between connections.
//!
//! Integers are big-endian; strings and blobs are `u32` length-prefixed
//! UTF-8/bytes; lists are a `u32` count followed by the elements; options
//! are a presence byte. Decoding is bounds-checked everywhere (see
//! [`crate::codec`]) and must consume the payload exactly — truncated
//! frames, hostile lengths, unknown opcodes, and trailing garbage are all
//! rejected, never panicked on.
//!
//! The opcode tables live next to the matching encode/decode pairs below
//! and are documented for external implementations in
//! `crates/server/README.md`.

use crate::codec::{Reader, WireError, WireResult, Writer};
use gdpr_core::compliance::{FeatureReport, FeatureSupport};
use gdpr_core::connector::SpaceReport;
use gdpr_core::query::{MetadataField, MetadataUpdate};
use gdpr_core::record::{Metadata, PersonalRecord};
use gdpr_core::response::LogLine;
use gdpr_core::role::{Role, Session};
use gdpr_core::telemetry::{self, HistogramSnapshot, OpSnapshot};
use gdpr_core::tenant::TenantId;
use gdpr_core::{GdprError, GdprQuery, GdprResponse};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Frames larger than this are rejected before allocation — a corrupt or
/// hostile length prefix must not balloon server memory.
pub const MAX_FRAME: usize = 64 << 20;

/// The protocol revision both payload kinds open with. Bumped to 2 when
/// the tenant field entered the request header; a peer speaking another
/// revision is rejected on its first frame with an error naming both
/// versions.
pub const PROTOCOL_VERSION: u8 = 2;

/// Read and check the leading version byte of a payload.
fn check_version(r: &mut Reader<'_>) -> WireResult<()> {
    let version = r.u8("protocol version")?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::new(
            r.offset() - 1,
            format!(
                "unsupported protocol version {version:#04x} (this peer speaks {PROTOCOL_VERSION:#04x}; \
                 version-1 frames have no version byte and no tenant field)"
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one `len || payload` frame — as a single `write_all`, so an
/// unbuffered socket sends one segment per frame instead of a 4-byte
/// header followed by a Nagle-delayed payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// exactly between frames); a stream that dies mid-frame — even inside
/// the 4-byte length prefix — is an error.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream died inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// What a client may ask of a served engine: the full [`GdprQuery`] surface
/// plus the connector-level introspection the bench and conformance layers
/// use (`features`, `space_report`, `record_count`, `name`) and two
/// connection-level utilities.
// `Execute` dwarfs the control variants, but every request is decoded,
// dispatched, and dropped within one pool job — boxing the hot variant
// would buy nothing except an allocation per query on the request path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// opcode 0x00 — execute one GDPR query under a session.
    Execute(Session, GdprQuery),
    /// opcode 0x01 — the served engine's capability report.
    Features,
    /// opcode 0x02 — the served engine's space accounting.
    SpaceReport,
    /// opcode 0x03 — live record count.
    RecordCount,
    /// opcode 0x04 — the served connector's name (`redis-sharded`, ...).
    Name,
    /// opcode 0x05 — echo; liveness probe and framing self-test.
    Ping(Vec<u8>),
    /// opcode 0x06 — this connection's and the server's counters.
    ConnStats,
    /// opcode 0x07 — the server's full telemetry snapshot: per-opcode
    /// service-time histograms, per-stage pipeline histograms, and the
    /// server/security counters.
    GetMetrics,
}

pub fn encode_request(seq: u64, tenant: &TenantId, body: &RequestBody) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(PROTOCOL_VERSION);
    w.u64(seq);
    w.string(tenant.name());
    match body {
        RequestBody::Execute(session, query) => {
            w.u8(0x00);
            encode_session(&mut w, session);
            encode_query(&mut w, query);
        }
        RequestBody::Features => w.u8(0x01),
        RequestBody::SpaceReport => w.u8(0x02),
        RequestBody::RecordCount => w.u8(0x03),
        RequestBody::Name => w.u8(0x04),
        RequestBody::Ping(blob) => {
            w.u8(0x05);
            w.bytes(blob);
        }
        RequestBody::ConnStats => w.u8(0x06),
        RequestBody::GetMetrics => w.u8(0x07),
    }
    w.into_bytes()
}

pub fn decode_request(payload: &[u8]) -> WireResult<(u64, TenantId, RequestBody)> {
    let mut r = Reader::new(payload);
    check_version(&mut r)?;
    let seq = r.u64("seq")?;
    let tenant_name = r.string("tenant")?;
    let tenant = TenantId::new(tenant_name)
        .map_err(|e| WireError::new(r.offset(), format!("unacceptable tenant: {e}")))?;
    let op = r.u8("request opcode")?;
    let body = match op {
        0x00 => {
            // The header tenant is authoritative: inject it into the
            // session so the engine never sees a tenant the framing layer
            // didn't vouch for.
            let session = decode_session(&mut r)?.with_tenant(tenant.clone());
            let query = decode_query(&mut r)?;
            RequestBody::Execute(session, query)
        }
        0x01 => RequestBody::Features,
        0x02 => RequestBody::SpaceReport,
        0x03 => RequestBody::RecordCount,
        0x04 => RequestBody::Name,
        0x05 => RequestBody::Ping(r.bytes("ping blob")?.to_vec()),
        0x06 => RequestBody::ConnStats,
        0x07 => RequestBody::GetMetrics,
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown request opcode {other:#04x}"),
            ))
        }
    };
    r.finish()?;
    Ok((seq, tenant, body))
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Per-connection and server-wide counters, served for `ConnStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests this connection has completed.
    pub requests: u64,
    /// Of those, how many returned a GDPR error.
    pub errors: u64,
    /// Payload bytes read from this connection.
    pub bytes_in: u64,
    /// Payload bytes written to this connection.
    pub bytes_out: u64,
    /// Connections the server has accepted since start.
    pub server_connections: u64,
    /// Requests the server has completed across all connections.
    pub server_requests: u64,
}

/// One named pipeline-stage histogram inside a [`MetricsReport`]
/// (`queue_wait`, `execute`, `write_drain`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMetrics {
    pub name: String,
    pub histogram: HistogramSnapshot,
}

/// The server's full telemetry snapshot, served for `GetMetrics`: the
/// engine's per-opcode table, the event loop's per-stage histograms, and
/// the flat server/security counters — everything the Prometheus endpoint
/// exposes, through the binary codec instead.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Per-opcode service times and ok/error counts (engine-side).
    pub ops: Vec<OpSnapshot>,
    /// Per-stage request lifecycle histograms (server-side).
    pub stages: Vec<StageMetrics>,
    /// Flat named counters: connections, requests, and the transport
    /// security counters (handshakes, replay/decrypt rejects).
    pub counters: Vec<(String, u64)>,
}

impl MetricsReport {
    /// The value of a flat counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The per-opcode snapshot for a query name, if present.
    pub fn op(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// The stage histogram for a stage name, if present.
    pub fn stage(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.histogram)
    }
}

/// Every answer the server sends. The status byte doubles as the body tag.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// status 0x00 — `Execute` succeeded.
    Response(GdprResponse),
    /// status 0x01 — `Execute` failed with a GDPR-layer error. These are
    /// part of the semantics (the conformance suite asserts on them), so
    /// they roundtrip exactly like successes.
    Error(GdprError),
    /// status 0x02 — the request itself was malformed or unserviceable;
    /// the server answers this and closes the connection.
    Protocol(String),
    /// status 0x03 — answer to `Features`.
    Features(FeatureReport),
    /// status 0x04 — answer to `SpaceReport`.
    Space(SpaceReport),
    /// status 0x05 — answer to `RecordCount`.
    Count(u64),
    /// status 0x06 — answer to `Name`.
    Name(String),
    /// status 0x07 — answer to `Ping`, blob echoed.
    Pong(Vec<u8>),
    /// status 0x08 — answer to `ConnStats`.
    Stats(StatsSnapshot),
    /// status 0x09 — answer to `GetMetrics`.
    Metrics(MetricsReport),
}

pub fn encode_response(seq: u64, body: &ResponseBody) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(PROTOCOL_VERSION);
    w.u64(seq);
    match body {
        ResponseBody::Response(resp) => {
            w.u8(0x00);
            encode_gdpr_response(&mut w, resp);
        }
        ResponseBody::Error(err) => {
            w.u8(0x01);
            encode_error(&mut w, err);
        }
        ResponseBody::Protocol(msg) => {
            w.u8(0x02);
            w.string(msg);
        }
        ResponseBody::Features(report) => {
            w.u8(0x03);
            encode_feature_report(&mut w, report);
        }
        ResponseBody::Space(space) => {
            w.u8(0x04);
            w.u64(space.personal_data_bytes as u64);
            w.u64(space.total_bytes as u64);
        }
        ResponseBody::Count(n) => {
            w.u8(0x05);
            w.u64(*n);
        }
        ResponseBody::Name(name) => {
            w.u8(0x06);
            w.string(name);
        }
        ResponseBody::Pong(blob) => {
            w.u8(0x07);
            w.bytes(blob);
        }
        ResponseBody::Stats(stats) => {
            w.u8(0x08);
            w.u64(stats.requests);
            w.u64(stats.errors);
            w.u64(stats.bytes_in);
            w.u64(stats.bytes_out);
            w.u64(stats.server_connections);
            w.u64(stats.server_requests);
        }
        ResponseBody::Metrics(report) => {
            w.u8(0x09);
            encode_metrics_report(&mut w, report);
        }
    }
    w.into_bytes()
}

pub fn decode_response(payload: &[u8]) -> WireResult<(u64, ResponseBody)> {
    let mut r = Reader::new(payload);
    check_version(&mut r)?;
    let seq = r.u64("seq")?;
    let status = r.u8("response status")?;
    let body = match status {
        0x00 => ResponseBody::Response(decode_gdpr_response(&mut r)?),
        0x01 => ResponseBody::Error(decode_error(&mut r)?),
        0x02 => ResponseBody::Protocol(r.string("protocol error")?),
        0x03 => ResponseBody::Features(decode_feature_report(&mut r)?),
        0x04 => ResponseBody::Space(SpaceReport {
            personal_data_bytes: r.u64("personal bytes")? as usize,
            total_bytes: r.u64("total bytes")? as usize,
        }),
        0x05 => ResponseBody::Count(r.u64("count")?),
        0x06 => ResponseBody::Name(r.string("name")?),
        0x07 => ResponseBody::Pong(r.bytes("pong blob")?.to_vec()),
        0x08 => ResponseBody::Stats(StatsSnapshot {
            requests: r.u64("requests")?,
            errors: r.u64("errors")?,
            bytes_in: r.u64("bytes in")?,
            bytes_out: r.u64("bytes out")?,
            server_connections: r.u64("server connections")?,
            server_requests: r.u64("server requests")?,
        }),
        0x09 => ResponseBody::Metrics(decode_metrics_report(&mut r)?),
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown response status {other:#04x}"),
            ))
        }
    };
    r.finish()?;
    Ok((seq, body))
}

// ---------------------------------------------------------------------------
// Telemetry snapshots
// ---------------------------------------------------------------------------

/// Histograms travel sparse: `count | sum | min | max`, then a `u32` run of
/// `(u32 bucket index, u64 bucket count)` pairs for the nonzero buckets
/// only — a mostly-idle histogram is a few dozen bytes instead of 64×8.
pub fn encode_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    w.u64(h.count);
    w.u64(h.sum_ns);
    w.u64(h.min_ns);
    w.u64(h.max_ns);
    let nonzero: Vec<(usize, u64)> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| (i, c))
        .collect();
    w.count(nonzero.len());
    for (idx, c) in nonzero {
        w.u32(idx as u32);
        w.u64(c);
    }
}

pub fn decode_histogram(r: &mut Reader<'_>) -> WireResult<HistogramSnapshot> {
    let mut h = HistogramSnapshot {
        count: r.u64("histogram count")?,
        sum_ns: r.u64("histogram sum")?,
        min_ns: r.u64("histogram min")?,
        max_ns: r.u64("histogram max")?,
        ..HistogramSnapshot::default()
    };
    // Each sparse entry is 12 bytes (u32 index + u64 count) on the wire.
    let n = r.count(12, "histogram buckets")?;
    if n > telemetry::BUCKETS {
        return Err(WireError::new(
            r.offset(),
            format!("{n} sparse buckets exceed the {} fixed", telemetry::BUCKETS),
        ));
    }
    for _ in 0..n {
        let at = r.offset();
        let idx = r.u32("bucket index")? as usize;
        if idx >= telemetry::BUCKETS {
            return Err(WireError::new(
                at,
                format!(
                    "bucket index {idx} out of range (max {})",
                    telemetry::BUCKETS
                ),
            ));
        }
        h.buckets[idx] = r.u64("bucket count")?;
    }
    Ok(h)
}

pub fn encode_metrics_report(w: &mut Writer, report: &MetricsReport) {
    w.count(report.ops.len());
    for op in &report.ops {
        w.string(&op.name);
        w.u64(op.ok);
        w.u64(op.errors);
        encode_histogram(w, &op.latency);
    }
    w.count(report.stages.len());
    for stage in &report.stages {
        w.string(&stage.name);
        encode_histogram(w, &stage.histogram);
    }
    w.count(report.counters.len());
    for (name, value) in &report.counters {
        w.string(name);
        w.u64(*value);
    }
}

pub fn decode_metrics_report(r: &mut Reader<'_>) -> WireResult<MetricsReport> {
    let n_ops = r.count(52, "metric ops")?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(OpSnapshot {
            name: r.string("op name")?,
            ok: r.u64("op ok count")?,
            errors: r.u64("op error count")?,
            latency: decode_histogram(r)?,
        });
    }
    let n_stages = r.count(40, "metric stages")?;
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        stages.push(StageMetrics {
            name: r.string("stage name")?,
            histogram: decode_histogram(r)?,
        });
    }
    let n_counters = r.count(12, "metric counters")?;
    let mut counters = Vec::with_capacity(n_counters);
    for _ in 0..n_counters {
        counters.push((r.string("counter name")?, r.u64("counter value")?));
    }
    Ok(MetricsReport {
        ops,
        stages,
        counters,
    })
}

// ---------------------------------------------------------------------------
// Sessions and roles
// ---------------------------------------------------------------------------

fn encode_option_string(w: &mut Writer, v: &Option<String>) {
    match v {
        Some(s) => {
            w.bool(true);
            w.string(s);
        }
        None => w.bool(false),
    }
}

fn decode_option_string(r: &mut Reader<'_>, what: &str) -> WireResult<Option<String>> {
    Ok(if r.bool(what)? {
        Some(r.string(what)?)
    } else {
        None
    })
}

pub fn encode_session(w: &mut Writer, session: &Session) {
    w.u8(match session.role {
        Role::Controller => 0,
        Role::Customer => 1,
        Role::Processor => 2,
        Role::Regulator => 3,
    });
    encode_option_string(w, &session.user);
    encode_option_string(w, &session.purpose);
}

pub fn decode_session(r: &mut Reader<'_>) -> WireResult<Session> {
    let role = match r.u8("role")? {
        0 => Role::Controller,
        1 => Role::Customer,
        2 => Role::Processor,
        3 => Role::Regulator,
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown role {other}"),
            ))
        }
    };
    Ok(Session {
        role,
        user: decode_option_string(r, "session user")?,
        purpose: decode_option_string(r, "session purpose")?,
        // The request-header tenant is injected by `decode_request`; the
        // session body deliberately does not carry one.
        tenant: TenantId::default(),
    })
}

// ---------------------------------------------------------------------------
// Durations, metadata, records
// ---------------------------------------------------------------------------

fn encode_duration(w: &mut Writer, d: Duration) {
    w.u64(d.as_secs());
    w.u32(d.subsec_nanos());
}

fn decode_duration(r: &mut Reader<'_>) -> WireResult<Duration> {
    let secs = r.u64("duration secs")?;
    let at = r.offset();
    let nanos = r.u32("duration nanos")?;
    if nanos >= 1_000_000_000 {
        return Err(WireError::new(
            at,
            format!("subsecond nanos {nanos} out of range"),
        ));
    }
    Ok(Duration::new(secs, nanos))
}

pub fn encode_metadata(w: &mut Writer, m: &Metadata) {
    w.string_list(&m.purposes);
    match m.ttl {
        Some(ttl) => {
            w.bool(true);
            encode_duration(w, ttl);
        }
        None => w.bool(false),
    }
    w.string(&m.user);
    w.string_list(&m.objections);
    w.string_list(&m.decisions);
    w.string_list(&m.sharing);
    w.string(&m.source);
}

pub fn decode_metadata(r: &mut Reader<'_>) -> WireResult<Metadata> {
    Ok(Metadata {
        purposes: r.string_list("purposes")?,
        ttl: if r.bool("ttl present")? {
            Some(decode_duration(r)?)
        } else {
            None
        },
        user: r.string("user")?,
        objections: r.string_list("objections")?,
        decisions: r.string_list("decisions")?,
        sharing: r.string_list("sharing")?,
        source: r.string("source")?,
    })
}

pub fn encode_record(w: &mut Writer, record: &PersonalRecord) {
    w.string(&record.key);
    w.string(&record.data);
    encode_metadata(w, &record.metadata);
}

pub fn decode_record(r: &mut Reader<'_>) -> WireResult<PersonalRecord> {
    Ok(PersonalRecord {
        key: r.string("record key")?,
        data: r.string("record data")?,
        metadata: decode_metadata(r)?,
    })
}

fn encode_field(w: &mut Writer, field: MetadataField) {
    w.u8(match field {
        MetadataField::Purposes => 0,
        MetadataField::Objections => 1,
        MetadataField::Decisions => 2,
        MetadataField::Sharing => 3,
        MetadataField::Source => 4,
        MetadataField::User => 5,
    });
}

fn decode_field(r: &mut Reader<'_>) -> WireResult<MetadataField> {
    Ok(match r.u8("metadata field")? {
        0 => MetadataField::Purposes,
        1 => MetadataField::Objections,
        2 => MetadataField::Decisions,
        3 => MetadataField::Sharing,
        4 => MetadataField::Source,
        5 => MetadataField::User,
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown metadata field {other}"),
            ))
        }
    })
}

pub fn encode_update(w: &mut Writer, update: &MetadataUpdate) {
    match update {
        MetadataUpdate::Add(field, value) => {
            w.u8(0);
            encode_field(w, *field);
            w.string(value);
        }
        MetadataUpdate::Remove(field, value) => {
            w.u8(1);
            encode_field(w, *field);
            w.string(value);
        }
        MetadataUpdate::SetScalar(field, value) => {
            w.u8(2);
            encode_field(w, *field);
            w.string(value);
        }
        MetadataUpdate::SetTtl(ttl) => {
            w.u8(3);
            encode_duration(w, *ttl);
        }
    }
}

pub fn decode_update(r: &mut Reader<'_>) -> WireResult<MetadataUpdate> {
    Ok(match r.u8("update kind")? {
        0 => MetadataUpdate::Add(decode_field(r)?, r.string("update value")?),
        1 => MetadataUpdate::Remove(decode_field(r)?, r.string("update value")?),
        2 => MetadataUpdate::SetScalar(decode_field(r)?, r.string("update value")?),
        3 => MetadataUpdate::SetTtl(decode_duration(r)?),
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown update kind {other}"),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

/// Query opcodes follow the §3.3 taxonomy order (the same order
/// `GdprQuery` declares).
pub fn encode_query(w: &mut Writer, query: &GdprQuery) {
    use GdprQuery::*;
    match query {
        CreateRecord(record) => {
            w.u8(0);
            encode_record(w, record);
        }
        DeleteByKey(key) => {
            w.u8(1);
            w.string(key);
        }
        DeleteByPurpose(purpose) => {
            w.u8(2);
            w.string(purpose);
        }
        DeleteExpired => w.u8(3),
        DeleteByUser(user) => {
            w.u8(4);
            w.string(user);
        }
        ReadDataByKey(key) => {
            w.u8(5);
            w.string(key);
        }
        ReadDataByPurpose(purpose) => {
            w.u8(6);
            w.string(purpose);
        }
        ReadDataByUser(user) => {
            w.u8(7);
            w.string(user);
        }
        ReadDataNotObjecting(usage) => {
            w.u8(8);
            w.string(usage);
        }
        ReadDataDecisionEligible => w.u8(9),
        ReadMetadataByKey(key) => {
            w.u8(10);
            w.string(key);
        }
        ReadMetadataByUser(user) => {
            w.u8(11);
            w.string(user);
        }
        ReadMetadataBySharedWith(party) => {
            w.u8(12);
            w.string(party);
        }
        UpdateDataByKey { key, data } => {
            w.u8(13);
            w.string(key);
            w.string(data);
        }
        UpdateMetadataByKey { key, update } => {
            w.u8(14);
            w.string(key);
            encode_update(w, update);
        }
        UpdateMetadataByPurpose { purpose, update } => {
            w.u8(15);
            w.string(purpose);
            encode_update(w, update);
        }
        UpdateMetadataByUser { user, update } => {
            w.u8(16);
            w.string(user);
            encode_update(w, update);
        }
        GetSystemLogs { from_ms, to_ms } => {
            w.u8(17);
            w.u64(*from_ms);
            w.u64(*to_ms);
        }
        GetSystemFeatures => w.u8(18),
        VerifyDeletion(key) => {
            w.u8(19);
            w.string(key);
        }
    }
}

pub fn decode_query(r: &mut Reader<'_>) -> WireResult<GdprQuery> {
    use GdprQuery::*;
    Ok(match r.u8("query opcode")? {
        0 => CreateRecord(decode_record(r)?),
        1 => DeleteByKey(r.string("key")?),
        2 => DeleteByPurpose(r.string("purpose")?),
        3 => DeleteExpired,
        4 => DeleteByUser(r.string("user")?),
        5 => ReadDataByKey(r.string("key")?),
        6 => ReadDataByPurpose(r.string("purpose")?),
        7 => ReadDataByUser(r.string("user")?),
        8 => ReadDataNotObjecting(r.string("usage")?),
        9 => ReadDataDecisionEligible,
        10 => ReadMetadataByKey(r.string("key")?),
        11 => ReadMetadataByUser(r.string("user")?),
        12 => ReadMetadataBySharedWith(r.string("party")?),
        13 => UpdateDataByKey {
            key: r.string("key")?,
            data: r.string("data")?,
        },
        14 => UpdateMetadataByKey {
            key: r.string("key")?,
            update: decode_update(r)?,
        },
        15 => UpdateMetadataByPurpose {
            purpose: r.string("purpose")?,
            update: decode_update(r)?,
        },
        16 => UpdateMetadataByUser {
            user: r.string("user")?,
            update: decode_update(r)?,
        },
        17 => GetSystemLogs {
            from_ms: r.u64("from_ms")?,
            to_ms: r.u64("to_ms")?,
        },
        18 => GetSystemFeatures,
        19 => VerifyDeletion(r.string("key")?),
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown query opcode {other}"),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// GDPR responses
// ---------------------------------------------------------------------------

fn encode_feature_support(w: &mut Writer, support: FeatureSupport) {
    w.u8(match support {
        FeatureSupport::Native => 0,
        FeatureSupport::Retrofitted => 1,
        FeatureSupport::Unsupported => 2,
    });
}

fn decode_feature_support(r: &mut Reader<'_>) -> WireResult<FeatureSupport> {
    Ok(match r.u8("feature support")? {
        0 => FeatureSupport::Native,
        1 => FeatureSupport::Retrofitted,
        2 => FeatureSupport::Unsupported,
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown feature support {other}"),
            ))
        }
    })
}

pub fn encode_feature_report(w: &mut Writer, report: &FeatureReport) {
    encode_feature_support(w, report.timely_deletion);
    encode_feature_support(w, report.monitoring_and_logging);
    encode_feature_support(w, report.metadata_indexing);
    encode_feature_support(w, report.encryption);
    encode_feature_support(w, report.access_control);
}

pub fn decode_feature_report(r: &mut Reader<'_>) -> WireResult<FeatureReport> {
    Ok(FeatureReport {
        timely_deletion: decode_feature_support(r)?,
        monitoring_and_logging: decode_feature_support(r)?,
        metadata_indexing: decode_feature_support(r)?,
        encryption: decode_feature_support(r)?,
        access_control: decode_feature_support(r)?,
    })
}

fn encode_log_line(w: &mut Writer, line: &LogLine) {
    w.u64(line.timestamp_ms);
    w.string(&line.actor);
    w.string(&line.operation);
    w.string(&line.detail);
}

fn decode_log_line(r: &mut Reader<'_>) -> WireResult<LogLine> {
    Ok(LogLine {
        timestamp_ms: r.u64("log timestamp")?,
        actor: r.string("log actor")?,
        operation: r.string("log operation")?,
        detail: r.string("log detail")?,
    })
}

pub fn encode_gdpr_response(w: &mut Writer, resp: &GdprResponse) {
    use GdprResponse::*;
    match resp {
        Created => w.u8(0),
        Deleted(n) => {
            w.u8(1);
            w.u64(*n as u64);
        }
        Records(records) => {
            w.u8(2);
            w.count(records.len());
            for record in records {
                encode_record(w, record);
            }
        }
        Data(pairs) => {
            w.u8(3);
            w.count(pairs.len());
            for (key, data) in pairs {
                w.string(key);
                w.string(data);
            }
        }
        Metadata(pairs) => {
            w.u8(4);
            w.count(pairs.len());
            for (key, metadata) in pairs {
                w.string(key);
                encode_metadata(w, metadata);
            }
        }
        Updated(n) => {
            w.u8(5);
            w.u64(*n as u64);
        }
        Logs(lines) => {
            w.u8(6);
            w.count(lines.len());
            for line in lines {
                encode_log_line(w, line);
            }
        }
        Features(report) => {
            w.u8(7);
            encode_feature_report(w, report);
        }
        DeletionVerified(gone) => {
            w.u8(8);
            w.bool(*gone);
        }
    }
}

pub fn decode_gdpr_response(r: &mut Reader<'_>) -> WireResult<GdprResponse> {
    use GdprResponse::*;
    Ok(match r.u8("response opcode")? {
        0 => Created,
        1 => Deleted(r.u64("deleted count")? as usize),
        2 => {
            let n = r.count(8, "records")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(decode_record(r)?);
            }
            Records(records)
        }
        3 => {
            let n = r.count(8, "data pairs")?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.string("data key")?, r.string("data value")?));
            }
            Data(pairs)
        }
        4 => {
            let n = r.count(8, "metadata pairs")?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.string("metadata key")?, decode_metadata(r)?));
            }
            Metadata(pairs)
        }
        5 => Updated(r.u64("updated count")? as usize),
        6 => {
            let n = r.count(20, "log lines")?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(decode_log_line(r)?);
            }
            Logs(lines)
        }
        7 => Features(decode_feature_report(r)?),
        8 => DeletionVerified(r.bool("deletion verdict")?),
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown response opcode {other}"),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// GDPR errors
// ---------------------------------------------------------------------------

pub fn encode_error(w: &mut Writer, err: &GdprError) {
    use GdprError::*;
    match err {
        AccessDenied {
            role,
            query,
            reason,
        } => {
            w.u8(0);
            w.string(role);
            w.string(query);
            w.string(reason);
        }
        NotFound(key) => {
            w.u8(1);
            w.string(key);
        }
        AlreadyExists(key) => {
            w.u8(2);
            w.string(key);
        }
        InvalidRecord(msg) => {
            w.u8(3);
            w.string(msg);
        }
        Store(msg) => {
            w.u8(4);
            w.string(msg);
        }
        Unsupported(msg) => {
            w.u8(5);
            w.string(msg);
        }
        ShardMisroute {
            key,
            found_in,
            owner,
            shard_count,
        } => {
            w.u8(6);
            w.string(key);
            w.u64(*found_in as u64);
            w.u64(*owner as u64);
            w.u64(*shard_count as u64);
        }
    }
}

pub fn decode_error(r: &mut Reader<'_>) -> WireResult<GdprError> {
    use GdprError::*;
    Ok(match r.u8("error opcode")? {
        0 => AccessDenied {
            role: r.string("error role")?,
            query: r.string("error query")?,
            reason: r.string("error reason")?,
        },
        1 => NotFound(r.string("error key")?),
        2 => AlreadyExists(r.string("error key")?),
        3 => InvalidRecord(r.string("error message")?),
        4 => Store(r.string("error message")?),
        5 => Unsupported(r.string("error message")?),
        6 => ShardMisroute {
            key: r.string("error key")?,
            found_in: r.u64("found_in")? as usize,
            owner: r.u64("owner")? as usize,
            shard_count: r.u64("shard_count")? as usize,
        },
        other => {
            return Err(WireError::new(
                r.offset() - 1,
                format!("unknown error opcode {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PersonalRecord {
        let mut metadata = Metadata::new(
            "neo",
            vec!["ads".to_string(), "2fa".to_string()],
            Duration::from_secs(3600),
        );
        metadata.objections.push("ads".to_string());
        metadata.sharing.push("x-corp".to_string());
        PersonalRecord::new("ph-1", "123-456", metadata)
    }

    fn sample_metrics() -> MetricsReport {
        let hist = gdpr_core::AtomicHistogram::new();
        hist.record(Duration::from_micros(3));
        hist.record(Duration::from_millis(40));
        hist.record_value(u64::MAX); // saturated bucket must survive the wire
        MetricsReport {
            ops: vec![OpSnapshot {
                name: "create-record".to_string(),
                ok: 41,
                errors: 1,
                latency: hist.snapshot(),
            }],
            stages: vec![
                StageMetrics {
                    name: "queue_wait".to_string(),
                    histogram: hist.snapshot(),
                },
                StageMetrics {
                    name: "execute".to_string(),
                    histogram: HistogramSnapshot::default(), // empty histogram
                },
            ],
            counters: vec![
                ("connections".to_string(), 7),
                ("replay_rejects".to_string(), 0),
            ],
        }
    }

    #[test]
    fn metrics_report_roundtrips_exactly() {
        let report = sample_metrics();
        let encoded = encode_response(99, &ResponseBody::Metrics(report.clone()));
        let (seq, got) = decode_response(&encoded).unwrap();
        assert_eq!(seq, 99);
        assert_eq!(got, ResponseBody::Metrics(report.clone()));
        // Accessors find what was encoded.
        assert_eq!(report.counter("connections"), Some(7));
        assert_eq!(report.counter("missing"), None);
        assert_eq!(report.op("create-record").unwrap().ok, 41);
        assert!(report.stage("execute").unwrap().is_empty());
    }

    #[test]
    fn histogram_decode_rejects_out_of_range_bucket() {
        let mut w = Writer::new();
        w.u64(3); // count
        w.u64(100); // sum
        w.u64(1); // min
        w.u64(50); // max
        w.count(1);
        w.u32(telemetry::BUCKETS as u32); // one past the last valid index
        w.u64(3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(decode_histogram(&mut r).is_err());
    }

    #[test]
    fn request_roundtrip_covers_every_opcode() {
        let bodies = vec![
            RequestBody::Execute(Session::customer("neo"), GdprQuery::CreateRecord(record())),
            RequestBody::Execute(
                Session::processor("ads"),
                GdprQuery::UpdateMetadataByKey {
                    key: "ph-1".to_string(),
                    update: MetadataUpdate::SetTtl(Duration::new(3, 250_000_000)),
                },
            ),
            RequestBody::Features,
            RequestBody::SpaceReport,
            RequestBody::RecordCount,
            RequestBody::Name,
            RequestBody::Ping(vec![0, 1, 255]),
            RequestBody::ConnStats,
            RequestBody::GetMetrics,
        ];
        for (seq, body) in bodies.into_iter().enumerate() {
            let encoded = encode_request(seq as u64 * 7, &TenantId::default(), &body);
            let (got_seq, tenant, got) = decode_request(&encoded).unwrap();
            assert_eq!(got_seq, seq as u64 * 7);
            assert!(tenant.is_default());
            assert_eq!(got, body);
        }
    }

    #[test]
    fn request_header_tenant_roundtrips_and_enters_the_session() {
        let acme = TenantId::new("acme").unwrap();
        // Control requests carry the tenant in the header alone.
        let encoded = encode_request(5, &acme, &RequestBody::GetMetrics);
        let (seq, tenant, body) = decode_request(&encoded).unwrap();
        assert_eq!((seq, &tenant, &body), (5, &acme, &RequestBody::GetMetrics));
        // Execute: the decoder injects the header tenant into the session.
        let session = Session::customer("neo").with_tenant(acme.clone());
        let body = RequestBody::Execute(session, GdprQuery::ReadDataByKey("k".into()));
        let encoded = encode_request(6, &acme, &body);
        let (_, tenant, got) = decode_request(&encoded).unwrap();
        assert_eq!(tenant, acme);
        assert_eq!(got, body);
    }

    #[test]
    fn version_1_and_alien_version_frames_are_rejected_loudly() {
        // A v1 request payload began with the u64 seq — first byte 0x00.
        let mut v1 = Writer::new();
        v1.u64(3);
        v1.u8(0x01); // Features
        let err = decode_request(&v1.into_bytes()).unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported protocol version 0x00"),
            "{err}"
        );
        // A hypothetical v3 peer is named in the error too.
        let mut v3 = encode_request(1, &TenantId::default(), &RequestBody::Name);
        v3[0] = 0x03;
        let err = decode_request(&v3).unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported protocol version 0x03"),
            "{err}"
        );
        // Responses carry the same leading byte.
        let mut resp = encode_response(1, &ResponseBody::Count(1));
        resp[0] = 0x01;
        assert!(decode_response(&resp).is_err());
    }

    #[test]
    fn malformed_header_tenants_are_rejected() {
        for bad in ["has space", "a/b", &"x".repeat(65)] {
            let mut w = Writer::new();
            w.u8(PROTOCOL_VERSION);
            w.u64(0);
            w.string(bad);
            w.u8(0x01); // Features
            let err = decode_request(&w.into_bytes()).unwrap_err();
            assert!(err.to_string().contains("unacceptable tenant"), "{err}");
        }
    }

    #[test]
    fn response_roundtrip_covers_every_status() {
        let bodies = vec![
            ResponseBody::Response(GdprResponse::Created),
            ResponseBody::Response(GdprResponse::Records(vec![record()])),
            ResponseBody::Response(GdprResponse::Logs(vec![LogLine {
                timestamp_ms: 12,
                actor: "customer:neo".to_string(),
                operation: "read-data-by-usr".to_string(),
                detail: "usr=neo [ok] n=2".to_string(),
            }])),
            ResponseBody::Error(GdprError::ShardMisroute {
                key: "k".to_string(),
                found_in: 1,
                owner: 2,
                shard_count: 3,
            }),
            ResponseBody::Protocol("bad frame".to_string()),
            ResponseBody::Features(FeatureReport::default()),
            ResponseBody::Space(SpaceReport {
                personal_data_bytes: 10,
                total_bytes: 35,
            }),
            ResponseBody::Count(99),
            ResponseBody::Name("redis-sharded".to_string()),
            ResponseBody::Pong(vec![9; 3]),
            ResponseBody::Stats(StatsSnapshot {
                requests: 1,
                errors: 2,
                bytes_in: 3,
                bytes_out: 4,
                server_connections: 5,
                server_requests: 6,
            }),
            ResponseBody::Metrics(sample_metrics()),
        ];
        for (seq, body) in bodies.into_iter().enumerate() {
            let encoded = encode_response(seq as u64, &body);
            let (got_seq, got) = decode_response(&encoded).unwrap();
            assert_eq!(got_seq, seq as u64);
            assert_eq!(got, body);
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let payload = encode_request(1, &TenantId::default(), &RequestBody::Name);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(),
            payload
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(),
            payload
        );
        assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none());

        // A frame longer than the cap is refused before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cursor = std::io::Cursor::new(huge);
        assert!(read_frame(&mut cursor, MAX_FRAME).is_err());
    }

    #[test]
    fn mid_frame_death_is_an_error_not_eof() {
        let payload = encode_request(1, &TenantId::default(), &RequestBody::RecordCount);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor, MAX_FRAME).is_err());
    }

    #[test]
    fn trailing_garbage_after_body_is_rejected() {
        let mut encoded = encode_request(3, &TenantId::default(), &RequestBody::Features);
        encoded.push(0xAB);
        assert!(decode_request(&encoded).is_err());
        let mut encoded = encode_response(3, &ResponseBody::Count(1));
        encoded.push(0xAB);
        assert!(decode_response(&encoded).is_err());
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        let mut w = Writer::new();
        w.u8(PROTOCOL_VERSION);
        w.u64(0);
        w.string("");
        w.u8(0xEE);
        assert!(decode_request(&w.into_bytes()).is_err());
        let mut w = Writer::new();
        w.u8(PROTOCOL_VERSION);
        w.u64(0);
        w.u8(0xEE);
        assert!(decode_response(&w.into_bytes()).is_err());
    }
}
