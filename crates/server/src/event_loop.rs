//! The readiness-driven core: one thread multiplexing every connection
//! over [`crate::sys::Poller`] (level-triggered epoll), with engine work
//! offloaded to the [`crate::pool::Executor`] as per-connection batches.
//!
//! ```text
//!        ┌───────────────── event loop (1 thread) ─────────────────┐
//! accept │ nonblocking reads → FrameDecoder → pending ops          │
//!        │        └── burst of N ops → one executor batch ──┐      │
//!        │ completions (wake) → outbuf → nonblocking writes │      │
//!        └──────────────────────────────────────────────────┼──────┘
//!                                                           ▼
//!                                     Executor: engine.execute_batch(ops)
//! ```
//!
//! Ordering needs no sequencer: at most one batch per connection is in
//! flight, its responses are encoded into one buffer in op order, and the
//! loop appends completion buffers to the connection's outbuf in
//! submission order.
//!
//! Backpressure is two-staged: a full executor queue leaves batches
//! pending on their connections, and a connection whose pending ops or
//! outbuf cross their high-water marks gets its read interest dropped —
//! the kernel socket buffer then fills and the client blocks, exactly the
//! end state the old blocking pool submit produced, but without a thread
//! parked per connection.

use crate::conn::{Conn, DecodedOp, Transport};
use crate::secure;
use crate::server::{run_batch, ServerShared};
use crate::sys;
use crate::wire::{self, ResponseBody};
use crypto::CryptoError;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
/// The optional Prometheus exposition listener (`--metrics-addr`).
const TOKEN_METRICS: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 3;

/// How much one readiness wake may read from a single connection before
/// yielding to the others (level-triggered epoll re-reports the rest).
const READ_BUDGET: usize = 256 * 1024;

/// Most connections accepted per listener wake. At 10k-connection scale a
/// connect storm must not starve established connections of loop time;
/// level-triggered epoll re-reports the listener backlog on the next wake.
const ACCEPT_BURST: usize = 256;

/// How long the listener stays deaf after fd exhaustion before retrying.
/// A connection closing resumes it earlier — that is the event that
/// actually frees a descriptor.
const ACCEPT_PAUSE: Duration = Duration::from_millis(50);

const EMFILE: i32 = 24;
const ENFILE: i32 = 23;

/// A batch's encoded responses, handed back from the executor.
pub(crate) struct Completion {
    pub token: u64,
    pub bytes: Vec<u8>,
}

/// The executor-side handle that re-arms the loop: a loopback socketpair
/// built purely with std (the no-libc twin of an eventfd).
pub(crate) struct Waker {
    tx: parking_lot::Mutex<TcpStream>,
}

impl Waker {
    pub fn wake(&self) {
        // A full pipe means a wake is already pending; any error beyond
        // that means the loop is gone and waking is moot.
        let _ = self.tx.lock().write(&[1]);
    }
}

/// The wake socketpair: an ephemeral loopback listener, one connect, one
/// accept, listener dropped. Returns (write side, read side).
pub(crate) fn wake_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Waker {
            tx: parking_lot::Mutex::new(tx),
        },
        rx,
    ))
}

/// One connection to the metrics exposition listener: the full HTTP
/// response is composed at accept time; all that remains is draining it.
/// The request itself is never read — the endpoint serves exactly one
/// document.
struct MetricsConn {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

pub(crate) struct EventLoop {
    shared: Arc<ServerShared>,
    poller: sys::Poller,
    listener: TcpListener,
    /// Plaintext Prometheus exposition listener, when configured.
    metrics_listener: Option<TcpListener>,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    /// In-progress metrics responses, keyed by token (same space as
    /// `conns`; a token is in at most one of the two maps).
    metrics_conns: HashMap<u64, MetricsConn>,
    next_token: u64,
    /// Connections whose batch submission found the executor full.
    stalled: Vec<u64>,
    events: Vec<sys::Event>,
    scratch: Vec<u8>,
    last_stall_check: Instant,
    /// When `Some`, the listener's read interest is dropped after fd
    /// exhaustion; the instant is the retry deadline.
    accept_paused_until: Option<Instant>,
}

impl EventLoop {
    pub fn new(
        shared: Arc<ServerShared>,
        poller: sys::Poller,
        listener: TcpListener,
        metrics_listener: Option<TcpListener>,
        wake_rx: TcpStream,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;
        if let Some(metrics) = &metrics_listener {
            metrics.set_nonblocking(true)?;
            poller.add(metrics.as_raw_fd(), TOKEN_METRICS, true, false)?;
        }
        Ok(EventLoop {
            shared,
            poller,
            listener,
            metrics_listener,
            wake_rx,
            conns: HashMap::new(),
            metrics_conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            stalled: Vec::new(),
            events: Vec::with_capacity(256),
            scratch: vec![0; 64 * 1024],
            last_stall_check: Instant::now(),
            accept_paused_until: None,
        })
    }

    pub fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // The tick bounds how late a write-stall kill can fire — and,
            // while accepting is paused on fd exhaustion, how late the
            // listener retry happens.
            let timeout = if self.accept_paused_until.is_some() {
                20
            } else {
                500
            };
            if self.poller.wait(&mut self.events, timeout).is_err() {
                break;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let events = std::mem::take(&mut self.events);
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    TOKEN_METRICS => self.accept_metrics(),
                    token if self.metrics_conns.contains_key(&token) => {
                        if event.writable {
                            self.flush_metrics_conn(token);
                        }
                    }
                    token => {
                        if event.writable {
                            self.flush_conn(token);
                        }
                        if event.readable {
                            self.conn_readable(token);
                        }
                    }
                }
            }
            self.events = events;
            self.process_completions();
            self.check_write_stalls();
            self.resume_accepting(false);
        }
        self.drain_on_shutdown();
    }

    fn accept_ready(&mut self) {
        for _ in 0..ACCEPT_BURST {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                    // Out of descriptors: go deaf on the listener instead
                    // of spinning on a backlog this process cannot accept.
                    // Existing connections keep full service; the next
                    // close (or the pause deadline) resumes accepting.
                    self.pause_accepting();
                    return;
                }
                // Transient per-connection failures (e.g. the peer reset
                // before accept); keep draining the backlog.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    // Unknown persistent accept failure: avoid a busy
                    // spin; level-triggered epoll re-reports the backlog.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            };
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Response frames are small; waiting for ACKs to coalesce them
            // (Nagle) would serialize the request/response pattern.
            stream.set_nodelay(true).ok();
            let token = self.next_token;
            self.next_token += 1;
            let stats = &self.shared.stats;
            stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
            stats.connections_active.fetch_add(1, Ordering::Relaxed);
            let conn = Conn::new(
                stream,
                self.shared.config.max_frame,
                self.shared.config.encrypt.is_some(),
            );
            if self
                .poller
                .add(conn.stream.as_raw_fd(), token, true, false)
                .is_err()
            {
                stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            self.conns.insert(token, conn);
        }
    }

    /// Accept metrics scrapes: compose the full HTTP response immediately
    /// (the snapshot belongs to the accept instant) and drain it as the
    /// socket allows. Never reads — a scraper that wants a second sample
    /// opens a second connection.
    fn accept_metrics(&mut self) {
        let mut accepted = Vec::new();
        if let Some(listener) = &self.metrics_listener {
            for _ in 0..ACCEPT_BURST {
                match listener.accept() {
                    Ok((stream, _)) => accepted.push(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    // Metrics scrapes are best-effort; any other accept
                    // failure just waits for the next readiness report.
                    Err(_) => break,
                }
            }
        }
        for stream in accepted {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let report = crate::metrics::build_metrics_report(&self.shared);
            let tenants = self.shared.engine.tenant_telemetry();
            let buf = crate::metrics::http_response(&report, &tenants);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .add(stream.as_raw_fd(), token, false, true)
                .is_err()
            {
                continue;
            }
            self.metrics_conns.insert(
                token,
                MetricsConn {
                    stream,
                    buf,
                    pos: 0,
                },
            );
            self.flush_metrics_conn(token);
        }
    }

    /// Drain one metrics response; close once it is fully written (or on
    /// any write failure — there is nothing to salvage).
    fn flush_metrics_conn(&mut self, token: u64) {
        let Some(mc) = self.metrics_conns.get_mut(&token) else {
            return;
        };
        loop {
            if mc.pos == mc.buf.len() {
                self.close_metrics_conn(token);
                return;
            }
            match mc.stream.write(&mc.buf[mc.pos..]) {
                Ok(0) => {
                    self.close_metrics_conn(token);
                    return;
                }
                Ok(n) => mc.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_metrics_conn(token);
                    return;
                }
            }
        }
    }

    fn close_metrics_conn(&mut self, token: u64) {
        if let Some(mc) = self.metrics_conns.remove(&token) {
            let _ = self.poller.delete(mc.stream.as_raw_fd());
            let _ = mc.stream.shutdown(Shutdown::Both);
        }
    }

    fn pause_accepting(&mut self) {
        if self.accept_paused_until.is_none()
            && self
                .poller
                .modify(self.listener.as_raw_fd(), TOKEN_LISTENER, false, false)
                .is_err()
        {
            // Could not silence the listener; fall back to a short sleep
            // so the loop does not spin on the un-acceptable backlog.
            std::thread::sleep(Duration::from_millis(10));
            return;
        }
        self.accept_paused_until = Some(Instant::now() + ACCEPT_PAUSE);
    }

    /// Re-arm the listener after fd exhaustion. `force` retries
    /// immediately (a descriptor was just freed); otherwise only once the
    /// pause deadline passes.
    fn resume_accepting(&mut self, force: bool) {
        let Some(deadline) = self.accept_paused_until else {
            return;
        };
        if !force && Instant::now() < deadline {
            return;
        }
        if self
            .poller
            .modify(self.listener.as_raw_fd(), TOKEN_LISTENER, true, false)
            .is_ok()
        {
            self.accept_paused_until = None;
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break, // writer gone: shutdown path will notice
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let config = self.shared.config.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.poisoned || conn.peer_eof {
            return;
        }
        let mut budget = READ_BUDGET;
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.counters
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.decoder.push(&self.scratch[..n]);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        // Decode everything complete; a malformed payload answers in
        // order and poisons the stream, a hostile length prefix kills the
        // framing outright (no response can be attributed to a seq).
        // On an encrypted transport each frame payload first crosses the
        // record layer: the hello while handshaking, sealed records after.
        while !conn.poisoned {
            match conn.decoder.next_frame() {
                Ok(Some(payload)) => {
                    let plaintext = match &mut conn.transport {
                        Transport::Plain => payload,
                        Transport::Handshaking => {
                            match secure::decode_hello(&payload, secure::ROLE_CLIENT) {
                                Ok(client_random) => {
                                    let key =
                                        config.encrypt.as_deref().unwrap_or(secure::DEFAULT_PSK);
                                    let server_random = secure::session_random();
                                    let ack =
                                        secure::encode_hello(secure::ROLE_SERVER, &server_random);
                                    // The ack itself travels pre-cipher;
                                    // straight to the outbuf, not enqueue.
                                    let mut frame = Vec::with_capacity(4 + ack.len());
                                    let _ = wire::write_frame(&mut frame, &ack);
                                    if conn.outbuf.is_empty() {
                                        conn.last_write_progress = Instant::now();
                                    }
                                    conn.outbuf.extend(frame);
                                    conn.transport = Transport::Secure(Box::new(
                                        secure::server_channel(key, &client_random, &server_random),
                                    ));
                                    self.shared
                                        .stats
                                        .handshakes_completed
                                        .fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                Err(_) => {
                                    // A plaintext op frame, garbage, or a
                                    // skewed version: refuse the downgrade
                                    // without answering — an unauthenticated
                                    // peer gets no protocol oracle.
                                    self.shared
                                        .stats
                                        .handshake_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                    conn.poisoned = true;
                                    conn.close_after_flush = true;
                                    conn.decoder.clear();
                                    continue;
                                }
                            }
                        }
                        Transport::Secure(channel) => match channel.open(&payload) {
                            Ok(plaintext) => plaintext,
                            Err(e) => {
                                // A record-layer failure desynchronizes the
                                // channel permanently; close without a
                                // response, but audit replays apart from
                                // corruption.
                                let stat = match e {
                                    CryptoError::Replay => &self.shared.stats.replay_rejects,
                                    _ => &self.shared.stats.decrypt_failures,
                                };
                                stat.fetch_add(1, Ordering::Relaxed);
                                conn.poisoned = true;
                                conn.close_after_flush = true;
                                conn.decoder.clear();
                                continue;
                            }
                        },
                    };
                    match wire::decode_request(&plaintext) {
                        Ok((seq, tenant, body)) => conn.pending.push_back(DecodedOp::Request {
                            seq,
                            tenant,
                            body,
                            decoded_at: Instant::now(),
                        }),
                        Err(err) => {
                            self.shared
                                .stats
                                .protocol_errors
                                .fetch_add(1, Ordering::Relaxed);
                            // Best-effort seq echo: v2 payloads carry it
                            // after the version byte. A v1/garbage frame
                            // yields a junk seq, which is fine — the error
                            // text names the real problem and the
                            // connection closes.
                            let seq = plaintext
                                .get(1..9)
                                .map_or(0, |b| u64::from_be_bytes(b.try_into().unwrap()));
                            conn.pending
                                .push_back(DecodedOp::Canned(wire::encode_response(
                                    seq,
                                    &ResponseBody::Protocol(err.to_string()),
                                )));
                            conn.poisoned = true;
                            conn.close_after_flush = true;
                            conn.decoder.clear();
                        }
                    }
                }
                Ok(None) => break,
                Err(_hostile_len) => {
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    conn.poisoned = true;
                    conn.close_after_flush = true;
                    conn.decoder.clear();
                }
            }
        }
        if conn.peer_eof {
            conn.close_after_flush = true;
        }
        if conn.close_after_flush && conn.drained() {
            self.close_conn(token);
            return;
        }
        // Flush eagerly so a handshake ack does not wait a poll cycle.
        if !conn.outbuf.is_empty() {
            self.flush_conn(token);
        }
        self.try_submit(token);
        self.update_interest(token, &config);
    }

    /// Hand the connection's pending burst to the executor as one batch —
    /// unless one is already in flight (ordering) or the executor is full
    /// (the batch stays pending; retried on the next completion wake).
    fn try_submit(&mut self, token: u64) {
        let max_batch = self.shared.config.max_batch;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.in_flight || conn.pending.is_empty() {
            return;
        }
        if !self.shared.executor.has_capacity() {
            if !self.stalled.contains(&token) {
                self.stalled.push(token);
            }
            return;
        }
        let take = conn.pending.len().min(max_batch.max(1));
        let ops: Vec<DecodedOp> = conn.pending.drain(..take).collect();
        conn.in_flight = true;
        let shared = Arc::clone(&self.shared);
        let counters = Arc::clone(&conn.counters);
        let submitted_at = Instant::now();
        let submitted = self.shared.executor.submit(Box::new(move || {
            // Submit → worker pickup: pure executor queue pressure.
            shared.telemetry.queue_wait.record(submitted_at.elapsed());
            let bytes = run_batch(&shared, &counters, ops);
            shared.completions.lock().push(Completion { token, bytes });
            shared.waker.wake();
        }));
        if !submitted {
            // Shutting down: the loop is about to exit; drop the batch.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_flight = false;
            }
        }
    }

    fn process_completions(&mut self) {
        let config = self.shared.config.clone();
        loop {
            let done: Vec<Completion> = {
                let mut completions = self.shared.completions.lock();
                if completions.is_empty() {
                    break;
                }
                std::mem::take(&mut *completions)
            };
            for completion in done {
                let Some(conn) = self.conns.get_mut(&completion.token) else {
                    continue;
                };
                conn.in_flight = false;
                if conn.outbuf.is_empty() && !completion.bytes.is_empty() {
                    // The write obligation starts now; stall tracking
                    // must not count the idle time before it. The same
                    // instant starts the write_drain telemetry stage.
                    let now = Instant::now();
                    conn.last_write_progress = now;
                    conn.write_batch_started = Some(now);
                }
                conn.enqueue(completion.bytes);
                // Opportunistic write: a just-completed batch almost
                // always fits the socket buffer, so skip the EPOLLOUT
                // round trip entirely in the common case.
                self.flush_conn(completion.token);
                self.try_submit(completion.token);
                self.update_interest(completion.token, &config);
            }
            // Freed executor slots: retry connections parked on a full
            // queue.
            let stalled = std::mem::take(&mut self.stalled);
            for token in stalled {
                self.try_submit(token);
                self.update_interest(token, &config);
            }
        }
    }

    /// Drain the outbuf as far as the socket accepts; closes the
    /// connection on write failure or once everything owed is out and the
    /// connection is marked to close.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !conn.outbuf.is_empty() {
            match conn.stream.write(conn.outbuf.remaining()) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.counters
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.outbuf.advance(n);
                    conn.last_write_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if conn.outbuf.is_empty() {
            if let Some(started) = conn.write_batch_started.take() {
                self.shared.telemetry.write_drain.record(started.elapsed());
            }
        }
        if conn.outbuf.is_empty() && conn.close_after_flush && conn.drained() {
            self.close_conn(token);
        }
    }

    /// Recompute and apply the connection's epoll interest from its state.
    fn update_interest(&mut self, token: u64, config: &crate::server::ServerConfig) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let readable = !conn.poisoned
            && !conn.peer_eof
            && conn.pending.len() < config.max_pending_ops.max(1)
            && conn.outbuf.len() < config.outbuf_high_water.max(1);
        let writable = !conn.outbuf.is_empty();
        if (readable, writable) != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, readable, writable)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            conn.interest = (readable, writable);
        }
    }

    /// Kill connections owing output that made no write progress for the
    /// configured timeout — a pipelining client that never drains
    /// responses must not hold buffers (and batches) forever.
    fn check_write_stalls(&mut self) {
        let timeout = self.shared.config.write_timeout;
        if timeout.is_zero() {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_stall_check) < Duration::from_millis(100) {
            return;
        }
        self.last_stall_check = now;
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                !conn.outbuf.is_empty() && now.duration_since(conn.last_write_progress) > timeout
            })
            .map(|(&token, _)| token)
            .collect();
        for token in dead {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.shared
                .stats
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
            // A descriptor just freed: if accepts were paused on fd
            // exhaustion there is room for exactly this listener retry.
            self.resume_accepting(true);
        }
        self.stalled.retain(|&t| t != token);
    }

    /// Graceful exit: stop reading, let in-flight batches complete, flush
    /// what the sockets accept within a short deadline, close everything.
    fn drain_on_shutdown(&mut self) {
        for conn in self.conns.values_mut() {
            conn.pending.clear();
            conn.poisoned = true;
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            self.process_shutdown_completions();
            let tokens: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.outbuf.is_empty())
                .map(|(&t, _)| t)
                .collect();
            for token in tokens {
                self.flush_conn(token);
            }
            let owed = self
                .conns
                .values()
                .any(|c| c.in_flight || !c.outbuf.is_empty());
            if !owed || Instant::now() >= deadline {
                break;
            }
            if self.poller.wait(&mut self.events, 50).is_err() {
                break;
            }
            if self.events.iter().any(|e| e.token == TOKEN_WAKE) {
                self.drain_wake();
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
        let metrics_tokens: Vec<u64> = self.metrics_conns.keys().copied().collect();
        for token in metrics_tokens {
            self.close_metrics_conn(token);
        }
    }

    /// Completion intake during drain: append and flush, but never submit
    /// new batches.
    fn process_shutdown_completions(&mut self) {
        let done: Vec<Completion> = std::mem::take(&mut *self.shared.completions.lock());
        for completion in done {
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            conn.in_flight = false;
            conn.enqueue(completion.bytes);
            self.flush_conn(completion.token);
        }
    }
}
