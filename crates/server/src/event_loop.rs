//! The readiness-driven core: one thread multiplexing every connection
//! over [`crate::sys::Poller`] (level-triggered epoll), with engine work
//! offloaded to the [`crate::pool::Executor`] as per-connection batches.
//!
//! ```text
//!        ┌───────────────── event loop (1 thread) ─────────────────┐
//! accept │ nonblocking reads → FrameDecoder → pending ops          │
//!        │        └── burst of N ops → one executor batch ──┐      │
//!        │ completions (wake) → outbuf → nonblocking writes │      │
//!        └──────────────────────────────────────────────────┼──────┘
//!                                                           ▼
//!                                     Executor: engine.execute_batch(ops)
//! ```
//!
//! Ordering needs no sequencer: at most one batch per connection is in
//! flight, its responses are encoded into one buffer in op order, and the
//! loop appends completion buffers to the connection's outbuf in
//! submission order.
//!
//! Backpressure is two-staged: a full executor queue leaves batches
//! pending on their connections, and a connection whose pending ops or
//! outbuf cross their high-water marks gets its read interest dropped —
//! the kernel socket buffer then fills and the client blocks, exactly the
//! end state the old blocking pool submit produced, but without a thread
//! parked per connection.

use crate::conn::{Conn, DecodedOp};
use crate::server::{run_batch, ServerShared};
use crate::sys;
use crate::wire::{self, ResponseBody};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How much one readiness wake may read from a single connection before
/// yielding to the others (level-triggered epoll re-reports the rest).
const READ_BUDGET: usize = 256 * 1024;

/// A batch's encoded responses, handed back from the executor.
pub(crate) struct Completion {
    pub token: u64,
    pub bytes: Vec<u8>,
}

/// The executor-side handle that re-arms the loop: a loopback socketpair
/// built purely with std (the no-libc twin of an eventfd).
pub(crate) struct Waker {
    tx: parking_lot::Mutex<TcpStream>,
}

impl Waker {
    pub fn wake(&self) {
        // A full pipe means a wake is already pending; any error beyond
        // that means the loop is gone and waking is moot.
        let _ = self.tx.lock().write(&[1]);
    }
}

/// The wake socketpair: an ephemeral loopback listener, one connect, one
/// accept, listener dropped. Returns (write side, read side).
pub(crate) fn wake_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Waker {
            tx: parking_lot::Mutex::new(tx),
        },
        rx,
    ))
}

pub(crate) struct EventLoop {
    shared: Arc<ServerShared>,
    poller: sys::Poller,
    listener: TcpListener,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Connections whose batch submission found the executor full.
    stalled: Vec<u64>,
    events: Vec<sys::Event>,
    scratch: Vec<u8>,
    last_stall_check: Instant,
}

impl EventLoop {
    pub fn new(
        shared: Arc<ServerShared>,
        poller: sys::Poller,
        listener: TcpListener,
        wake_rx: TcpStream,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;
        Ok(EventLoop {
            shared,
            poller,
            listener,
            wake_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            stalled: Vec::new(),
            events: Vec::with_capacity(256),
            scratch: vec![0; 64 * 1024],
            last_stall_check: Instant::now(),
        })
    }

    pub fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // The tick bounds how late a write-stall kill can fire.
            if self.poller.wait(&mut self.events, 500).is_err() {
                break;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let events = std::mem::take(&mut self.events);
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    token => {
                        if event.writable {
                            self.flush_conn(token);
                        }
                        if event.readable {
                            self.conn_readable(token);
                        }
                    }
                }
            }
            self.events = events;
            self.process_completions();
            self.check_write_stalls();
        }
        self.drain_on_shutdown();
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Persistent accept failures (e.g. fd exhaustion) must
                    // not busy-spin the loop; level-triggered epoll will
                    // re-report the backlog after the pause.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            };
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Response frames are small; waiting for ACKs to coalesce them
            // (Nagle) would serialize the request/response pattern.
            stream.set_nodelay(true).ok();
            let token = self.next_token;
            self.next_token += 1;
            let stats = &self.shared.stats;
            stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
            stats.connections_active.fetch_add(1, Ordering::Relaxed);
            let conn = Conn::new(stream, self.shared.config.max_frame);
            if self
                .poller
                .add(conn.stream.as_raw_fd(), token, true, false)
                .is_err()
            {
                stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            self.conns.insert(token, conn);
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break, // writer gone: shutdown path will notice
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let config = self.shared.config.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.poisoned || conn.peer_eof {
            return;
        }
        let mut budget = READ_BUDGET;
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.counters
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.decoder.push(&self.scratch[..n]);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        // Decode everything complete; a malformed payload answers in
        // order and poisons the stream, a hostile length prefix kills the
        // framing outright (no response can be attributed to a seq).
        while !conn.poisoned {
            match conn.decoder.next_frame() {
                Ok(Some(payload)) => match wire::decode_request(&payload) {
                    Ok((seq, body)) => conn.pending.push_back(DecodedOp::Request { seq, body }),
                    Err(err) => {
                        self.shared
                            .stats
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let seq = payload
                            .get(..8)
                            .map_or(0, |b| u64::from_be_bytes(b.try_into().unwrap()));
                        conn.pending
                            .push_back(DecodedOp::Canned(wire::encode_response(
                                seq,
                                &ResponseBody::Protocol(err.to_string()),
                            )));
                        conn.poisoned = true;
                        conn.close_after_flush = true;
                        conn.decoder.clear();
                    }
                },
                Ok(None) => break,
                Err(_hostile_len) => {
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    conn.poisoned = true;
                    conn.close_after_flush = true;
                    conn.decoder.clear();
                }
            }
        }
        if conn.peer_eof {
            conn.close_after_flush = true;
            if conn.drained() {
                self.close_conn(token);
                return;
            }
        }
        self.try_submit(token);
        self.update_interest(token, &config);
    }

    /// Hand the connection's pending burst to the executor as one batch —
    /// unless one is already in flight (ordering) or the executor is full
    /// (the batch stays pending; retried on the next completion wake).
    fn try_submit(&mut self, token: u64) {
        let max_batch = self.shared.config.max_batch;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.in_flight || conn.pending.is_empty() {
            return;
        }
        if !self.shared.executor.has_capacity() {
            if !self.stalled.contains(&token) {
                self.stalled.push(token);
            }
            return;
        }
        let take = conn.pending.len().min(max_batch.max(1));
        let ops: Vec<DecodedOp> = conn.pending.drain(..take).collect();
        conn.in_flight = true;
        let shared = Arc::clone(&self.shared);
        let counters = Arc::clone(&conn.counters);
        let submitted = self.shared.executor.submit(Box::new(move || {
            let bytes = run_batch(&shared, &counters, ops);
            shared.completions.lock().push(Completion { token, bytes });
            shared.waker.wake();
        }));
        if !submitted {
            // Shutting down: the loop is about to exit; drop the batch.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_flight = false;
            }
        }
    }

    fn process_completions(&mut self) {
        let config = self.shared.config.clone();
        loop {
            let done: Vec<Completion> = {
                let mut completions = self.shared.completions.lock();
                if completions.is_empty() {
                    break;
                }
                std::mem::take(&mut *completions)
            };
            for completion in done {
                let Some(conn) = self.conns.get_mut(&completion.token) else {
                    continue;
                };
                conn.in_flight = false;
                if conn.outbuf.is_empty() && !completion.bytes.is_empty() {
                    // The write obligation starts now; stall tracking
                    // must not count the idle time before it.
                    conn.last_write_progress = Instant::now();
                }
                conn.outbuf.extend(completion.bytes);
                // Opportunistic write: a just-completed batch almost
                // always fits the socket buffer, so skip the EPOLLOUT
                // round trip entirely in the common case.
                self.flush_conn(completion.token);
                self.try_submit(completion.token);
                self.update_interest(completion.token, &config);
            }
            // Freed executor slots: retry connections parked on a full
            // queue.
            let stalled = std::mem::take(&mut self.stalled);
            for token in stalled {
                self.try_submit(token);
                self.update_interest(token, &config);
            }
        }
    }

    /// Drain the outbuf as far as the socket accepts; closes the
    /// connection on write failure or once everything owed is out and the
    /// connection is marked to close.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !conn.outbuf.is_empty() {
            match conn.stream.write(conn.outbuf.remaining()) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.counters
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.outbuf.advance(n);
                    conn.last_write_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if conn.outbuf.is_empty() && conn.close_after_flush && conn.drained() {
            self.close_conn(token);
        }
    }

    /// Recompute and apply the connection's epoll interest from its state.
    fn update_interest(&mut self, token: u64, config: &crate::server::ServerConfig) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let readable = !conn.poisoned
            && !conn.peer_eof
            && conn.pending.len() < config.max_pending_ops.max(1)
            && conn.outbuf.len() < config.outbuf_high_water.max(1);
        let writable = !conn.outbuf.is_empty();
        if (readable, writable) != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, readable, writable)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            conn.interest = (readable, writable);
        }
    }

    /// Kill connections owing output that made no write progress for the
    /// configured timeout — a pipelining client that never drains
    /// responses must not hold buffers (and batches) forever.
    fn check_write_stalls(&mut self) {
        let timeout = self.shared.config.write_timeout;
        if timeout.is_zero() {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_stall_check) < Duration::from_millis(100) {
            return;
        }
        self.last_stall_check = now;
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                !conn.outbuf.is_empty() && now.duration_since(conn.last_write_progress) > timeout
            })
            .map(|(&token, _)| token)
            .collect();
        for token in dead {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.shared
                .stats
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
        }
        self.stalled.retain(|&t| t != token);
    }

    /// Graceful exit: stop reading, let in-flight batches complete, flush
    /// what the sockets accept within a short deadline, close everything.
    fn drain_on_shutdown(&mut self) {
        for conn in self.conns.values_mut() {
            conn.pending.clear();
            conn.poisoned = true;
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            self.process_shutdown_completions();
            let tokens: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.outbuf.is_empty())
                .map(|(&t, _)| t)
                .collect();
            for token in tokens {
                self.flush_conn(token);
            }
            let owed = self
                .conns
                .values()
                .any(|c| c.in_flight || !c.outbuf.is_empty());
            if !owed || Instant::now() >= deadline {
                break;
            }
            if self.poller.wait(&mut self.events, 50).is_err() {
                break;
            }
            if self.events.iter().any(|e| e.token == TOKEN_WAKE) {
                self.drain_wake();
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// Completion intake during drain: append and flush, but never submit
    /// new batches.
    fn process_shutdown_completions(&mut self) {
        let done: Vec<Completion> = std::mem::take(&mut *self.shared.completions.lock());
        for completion in done {
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            conn.in_flight = false;
            conn.outbuf.extend(completion.bytes);
            self.flush_conn(completion.token);
        }
    }
}
