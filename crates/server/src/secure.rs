//! Encrypted transport: the handshake and record layer that runs
//! [`crypto::SecureChannel`] over the wire protocol, so data in transit
//! crosses the same cipher boundary the paper's stunnel/SSL deployment
//! imposes.
//!
//! # Handshake
//!
//! The handshake is framed inside the ordinary length-prefixed protocol —
//! two frames, one per direction, exchanged before the first op frame:
//!
//! ```text
//! client → server   frame( "GSEC" | version u16 BE | 'C' | client_random[32] )
//! server → client   frame( "GSEC" | version u16 BE | 'S' | server_random[32] )
//! ```
//!
//! Both sides then derive the duplex cipher pair from
//! `pre-shared key ‖ client_random ‖ server_random` (see [`session_seed`])
//! and every subsequent frame payload is a sealed record:
//!
//! ```text
//! frame( seq u64 LE | tag u64 LE | ciphertext )     — crypto::SecureChannel
//! ```
//!
//! with per-direction strictly-increasing sequence numbers (replay and
//! reordering rejected at the record layer) and SipHash-2-4 tags compared
//! in constant time.
//!
//! # Downgrade rejection
//!
//! There is no in-band negotiation to tamper with: an encrypted endpoint
//! *requires* the handshake. A plaintext client's first op frame fails
//! hello validation and the server drops the connection without answering;
//! an encrypted client talking to a plaintext server receives a protocol
//! response instead of a hello ack, refuses to continue, and reports the
//! downgrade loudly. Version skew is rejected on both sides.
//!
//! # Security model (stand-in, not TLS)
//!
//! Like the rest of this crate's crypto, this is the *benchmark-faithful
//! cost* of an encrypted transport, not a reviewed protocol: the session
//! key is derived from a **pre-shared secret** (no PKI, no certificates,
//! no forward secrecy), and [`session_random`] mixes OS-seeded hasher
//! state with clocks and counters rather than reading a CSPRNG. Do not
//! ship personal data over it outside a benchmark.

use crypto::channel::DuplexChannel;
use crypto::SecureChannel;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Handshake frame magic.
pub const MAGIC: [u8; 4] = *b"GSEC";
/// Handshake protocol version.
pub const VERSION: u16 = 1;
/// Role byte in the client hello.
pub const ROLE_CLIENT: u8 = b'C';
/// Role byte in the server ack.
pub const ROLE_SERVER: u8 = b'S';
/// Length of the per-side session random.
pub const RANDOM_LEN: usize = 32;
/// Exact length of a hello payload: magic + version + role + random.
pub const HELLO_LEN: usize = 4 + 2 + 1 + RANDOM_LEN;
/// Bytes a sealed record adds on top of its plaintext (seq + tag).
pub const SEAL_OVERHEAD: usize = crypto::channel::HEADER_LEN;

/// The pre-shared key used when none is configured explicitly — a loud
/// stand-in, exactly as the paper's stunnel PSK configs ship a sample key.
pub const DEFAULT_PSK: &str = "gdprbench-preshared-session-key";

/// Environment toggle honored by [`encrypt_key_from_env`].
pub const ENCRYPT_ENV: &str = "GDPR_ENCRYPT";
/// Environment override for the pre-shared key.
pub const ENCRYPT_KEY_ENV: &str = "GDPR_ENCRYPT_KEY";

/// The suite-wide encryption opt-in: `Some(key)` when `GDPR_ENCRYPT` is
/// set to anything but `0`/`false`/`off`/empty, with the key taken from
/// `GDPR_ENCRYPT_KEY` (default [`DEFAULT_PSK`]). `ServerConfig::default`
/// and the default client constructors honor this, so the conformance,
/// stress, and property suites run over the encrypted transport when CI
/// exports `GDPR_ENCRYPT=1` — the same pattern as `GDPR_SHARDS`.
pub fn encrypt_key_from_env() -> Option<String> {
    let enabled = match std::env::var(ENCRYPT_ENV) {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        Err(_) => false,
    };
    enabled.then(|| std::env::var(ENCRYPT_KEY_ENV).unwrap_or_else(|_| DEFAULT_PSK.to_string()))
}

/// Why a hello payload was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeError {
    /// Wrong payload length for a hello frame.
    BadLength(usize),
    /// The magic bytes are not `GSEC`.
    BadMagic,
    /// A well-formed hello advertising an unsupported version.
    VersionSkew(u16),
    /// A hello carrying the wrong role byte (e.g. a reflected ack).
    BadRole(u8),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::BadLength(n) => {
                write!(f, "handshake frame of {n} bytes (expected {HELLO_LEN})")
            }
            HandshakeError::BadMagic => write!(f, "handshake frame without GSEC magic"),
            HandshakeError::VersionSkew(v) => {
                write!(f, "handshake version {v} (this endpoint speaks {VERSION})")
            }
            HandshakeError::BadRole(r) => write!(f, "handshake role byte {r:#04x}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Encode a hello payload for `role` carrying `random`.
pub fn encode_hello(role: u8, random: &[u8; RANDOM_LEN]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HELLO_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.push(role);
    out.extend_from_slice(random);
    out
}

/// Validate a hello payload and extract its random. `expected_role`
/// prevents reflection: a client hello can never pass as a server ack.
pub fn decode_hello(payload: &[u8], expected_role: u8) -> Result<[u8; RANDOM_LEN], HandshakeError> {
    if payload.len() != HELLO_LEN {
        return Err(HandshakeError::BadLength(payload.len()));
    }
    if payload[..4] != MAGIC {
        return Err(HandshakeError::BadMagic);
    }
    let version = u16::from_be_bytes(payload[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(HandshakeError::VersionSkew(version));
    }
    if payload[6] != expected_role {
        return Err(HandshakeError::BadRole(payload[6]));
    }
    Ok(payload[7..].try_into().unwrap())
}

/// Session key material: pre-shared key and both randoms, domain-tagged
/// and length-separated so no concatenation of a different split collides.
pub fn session_seed(
    key: &str,
    client_random: &[u8; RANDOM_LEN],
    server_random: &[u8; RANDOM_LEN],
) -> Vec<u8> {
    let key = key.as_bytes();
    let mut seed = Vec::with_capacity(8 + 4 + key.len() + 2 * RANDOM_LEN);
    seed.extend_from_slice(b"gsec-v1:");
    seed.extend_from_slice(&(key.len() as u32).to_le_bytes());
    seed.extend_from_slice(key);
    seed.extend_from_slice(client_random);
    seed.extend_from_slice(server_random);
    seed
}

/// The client's duplex channel for a completed handshake.
pub fn client_channel(
    key: &str,
    client_random: &[u8; RANDOM_LEN],
    server_random: &[u8; RANDOM_LEN],
) -> DuplexChannel {
    SecureChannel::pair(&session_seed(key, client_random, server_random)).0
}

/// The server's duplex channel for a completed handshake.
pub fn server_channel(
    key: &str,
    client_random: &[u8; RANDOM_LEN],
    server_random: &[u8; RANDOM_LEN],
) -> DuplexChannel {
    SecureChannel::pair(&session_seed(key, client_random, server_random)).1
}

/// A per-session random. Sourced from the OS-entropy-seeded std hasher
/// state mixed with the wall clock and a process-global counter — a
/// stand-in consistent with the module's pre-shared-key security model
/// (the offline build has no CSPRNG crate and no libc `getrandom`).
pub fn session_random() -> [u8; RANDOM_LEN] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let state = RandomState::new();
    let mut out = [0u8; RANDOM_LEN];
    let stack_addr = out.as_ptr() as u64;
    for (i, chunk) in out.chunks_exact_mut(8).enumerate() {
        let mut hasher = state.build_hasher();
        hasher.write_u64(i as u64);
        hasher.write_u64(nanos);
        hasher.write_u64(count);
        hasher.write_u64(stack_addr);
        chunk.copy_from_slice(&hasher.finish().to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips_per_role() {
        let random = [7u8; RANDOM_LEN];
        for role in [ROLE_CLIENT, ROLE_SERVER] {
            let hello = encode_hello(role, &random);
            assert_eq!(hello.len(), HELLO_LEN);
            assert_eq!(decode_hello(&hello, role).unwrap(), random);
        }
        // Reflection: a client hello never validates as a server ack.
        let hello = encode_hello(ROLE_CLIENT, &random);
        assert_eq!(
            decode_hello(&hello, ROLE_SERVER),
            Err(HandshakeError::BadRole(ROLE_CLIENT))
        );
    }

    #[test]
    fn malformed_hellos_are_rejected_with_causes() {
        let random = [1u8; RANDOM_LEN];
        let good = encode_hello(ROLE_CLIENT, &random);

        assert_eq!(
            decode_hello(&good[..HELLO_LEN - 1], ROLE_CLIENT),
            Err(HandshakeError::BadLength(HELLO_LEN - 1))
        );
        assert_eq!(
            decode_hello(&[], ROLE_CLIENT),
            Err(HandshakeError::BadLength(0))
        );

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            decode_hello(&bad_magic, ROLE_CLIENT),
            Err(HandshakeError::BadMagic)
        );

        let mut skew = good.clone();
        skew[4..6].copy_from_slice(&9u16.to_be_bytes());
        assert_eq!(
            decode_hello(&skew, ROLE_CLIENT),
            Err(HandshakeError::VersionSkew(9))
        );
    }

    #[test]
    fn both_sides_derive_matching_channels() {
        let cr = session_random();
        let sr = session_random();
        let mut client = client_channel("psk", &cr, &sr);
        let mut server = server_channel("psk", &cr, &sr);
        let sealed = client.seal(b"request");
        assert_eq!(server.open(&sealed).unwrap(), b"request");
        let sealed = server.seal(b"response");
        assert_eq!(client.open(&sealed).unwrap(), b"response");
        // A different pre-shared key derives an incompatible channel.
        let mut wrong = server_channel("other", &cr, &sr);
        assert!(wrong.open(&client.seal(b"x")).is_err());
    }

    #[test]
    fn session_randoms_do_not_repeat() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(session_random()), "session random repeated");
        }
    }

    #[test]
    fn seed_is_split_unambiguous() {
        // key "ab" + random starting 'c'... must differ from key "abc".
        let mut cr1 = [0u8; RANDOM_LEN];
        cr1[0] = b'c';
        let cr2 = [0u8; RANDOM_LEN];
        let sr = [9u8; RANDOM_LEN];
        assert_ne!(
            session_seed("ab", &cr1, &sr),
            session_seed("abc", &cr2, &sr)
        );
    }
}
