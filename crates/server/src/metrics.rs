//! Server-side telemetry: per-stage latency histograms for the request
//! lifecycle, assembly of the [`MetricsReport`] served by the `GetMetrics`
//! wire op, and the Prometheus text exposition the `--metrics-addr`
//! endpoint serves.
//!
//! The pipeline stages a frame crosses, and which histogram sees each:
//!
//! ```text
//! decode ──────────────▶ executor dequeues ──▶ engine done ──▶ socket drained
//!    └─ decode_wait_ns ──────┘ (per op)
//!         submit ─ queue_wait_ns ─┘ (per batch)
//!                        └──── execute_ns ────┘ (per batch)
//!                                  enqueue ─── write_drain_ns ───┘ (per batch)
//! batch_size: ops per executor submission (dimensionless)
//! ```
//!
//! All histograms are [`AtomicHistogram`]s — recording is a few relaxed
//! atomic adds, cheap enough for the hot path (the bench suite measures
//! the total at <2% on the pipelined ladder).

use crate::server::ServerShared;
use crate::wire::{MetricsReport, StageMetrics};
use gdpr_core::telemetry::{AtomicHistogram, HistogramSnapshot, OpTelemetrySnapshot};
use gdpr_core::tenant::TenantId;
use std::sync::atomic::Ordering;

/// The event loop's per-stage histograms.
#[derive(Default)]
pub struct ServerTelemetry {
    /// Frame decoded → its batch starts executing (per op): how long a
    /// decoded request waited for the executor, including the
    /// one-batch-in-flight ordering delay.
    pub decode_wait: AtomicHistogram,
    /// Batch submitted to the executor → worker picks it up (per batch):
    /// pure executor queue pressure.
    pub queue_wait: AtomicHistogram,
    /// Engine `execute_batch` service time (per batch).
    pub execute: AtomicHistogram,
    /// Responses enqueued on an empty outbuf → outbuf drained to the
    /// socket (per batch): seal + write + kernel buffer time.
    pub write_drain: AtomicHistogram,
    /// Ops per executor submission (dimensionless values, same buckets).
    pub batch_size: AtomicHistogram,
}

/// Stage names in report order — the exposition endpoint and the wire op
/// both present stages under these keys.
const STAGES: [&str; 5] = [
    "decode_wait",
    "queue_wait",
    "execute",
    "write_drain",
    "batch_size",
];

impl ServerTelemetry {
    fn stage_snapshots(&self) -> Vec<StageMetrics> {
        [
            &self.decode_wait,
            &self.queue_wait,
            &self.execute,
            &self.write_drain,
            &self.batch_size,
        ]
        .iter()
        .zip(STAGES)
        .map(|(h, name)| StageMetrics {
            name: name.to_string(),
            histogram: h.snapshot(),
        })
        .collect()
    }
}

/// Assemble the full metrics snapshot: the engine's per-opcode table, the
/// loop's stage histograms, and the flat server/security counters. Every
/// atomic is loaded exactly once — a snapshot racing shutdown (or live
/// traffic) sees each counter's value at its own load, never a torn or
/// repeated read.
pub(crate) fn build_metrics_report(shared: &ServerShared) -> MetricsReport {
    let ops = shared
        .engine
        .op_telemetry()
        .map(|snap| snap.ops)
        .unwrap_or_default();
    finish_report(shared, ops)
}

/// The tenant-scoped variant the wire `GetMetrics` handler uses: the
/// per-opcode table comes from the requesting tenant's counters alone (a
/// tenant that has never executed anything gets an empty table). The
/// stage histograms and server counters are shared infrastructure —
/// connection and pipeline plumbing, not per-tenant data — and stay
/// deployment-wide.
pub(crate) fn build_metrics_report_for(shared: &ServerShared, tenant: &TenantId) -> MetricsReport {
    let ops = shared
        .engine
        .op_telemetry_for(tenant)
        .map(|snap| snap.ops)
        .unwrap_or_default();
    finish_report(shared, ops)
}

fn finish_report(
    shared: &ServerShared,
    ops: Vec<gdpr_core::telemetry::OpSnapshot>,
) -> MetricsReport {
    let stats = &shared.stats;
    let counters = vec![
        (
            "connections_accepted".to_string(),
            stats.connections_accepted.load(Ordering::Relaxed),
        ),
        (
            "connections_active".to_string(),
            stats.connections_active.load(Ordering::Relaxed),
        ),
        (
            "requests".to_string(),
            stats.requests.load(Ordering::Relaxed),
        ),
        (
            "gdpr_errors".to_string(),
            stats.gdpr_errors.load(Ordering::Relaxed),
        ),
        (
            "protocol_errors".to_string(),
            stats.protocol_errors.load(Ordering::Relaxed),
        ),
        (
            "handshakes_completed".to_string(),
            stats.handshakes_completed.load(Ordering::Relaxed),
        ),
        (
            "handshake_failures".to_string(),
            stats.handshake_failures.load(Ordering::Relaxed),
        ),
        (
            "replay_rejects".to_string(),
            stats.replay_rejects.load(Ordering::Relaxed),
        ),
        (
            "decrypt_failures".to_string(),
            stats.decrypt_failures.load(Ordering::Relaxed),
        ),
    ];
    MetricsReport {
        ops,
        stages: shared.telemetry.stage_snapshots(),
        counters,
    }
}

/// Render a [`MetricsReport`] in Prometheus text exposition format
/// (version 0.0.4): flat counters as `gdpr_server_<name>`, per-opcode
/// tables as `gdpr_op_*{op="..."}`, and stage histograms as native
/// Prometheus histograms (`_bucket{le="..."}` with cumulative counts in
/// seconds, `_sum`, `_count`).
pub fn render_prometheus(report: &MetricsReport) -> String {
    let mut out = String::with_capacity(16 * 1024);
    for (name, value) in &report.counters {
        let metric = format!("gdpr_server_{name}");
        out.push_str(&format!(
            "# TYPE {metric} {}\n{metric} {value}\n",
            // Gauges go up and down; everything else only accumulates.
            if name == "connections_active" {
                "gauge"
            } else {
                "counter"
            },
        ));
    }
    out.push_str("# TYPE gdpr_op_total counter\n");
    out.push_str("# TYPE gdpr_op_errors_total counter\n");
    for op in &report.ops {
        if op.ok + op.errors == 0 {
            continue; // untouched opcodes would only be noise
        }
        out.push_str(&format!(
            "gdpr_op_total{{op=\"{}\"}} {}\n",
            op.name,
            op.ok + op.errors
        ));
        out.push_str(&format!(
            "gdpr_op_errors_total{{op=\"{}\"}} {}\n",
            op.name, op.errors
        ));
    }
    for op in &report.ops {
        if !op.latency.is_empty() {
            render_histogram(
                &mut out,
                "gdpr_op_latency_seconds",
                &format!("op=\"{}\"", op.name),
                &op.latency,
                true,
            );
        }
    }
    for stage in &report.stages {
        let seconds = stage.name != "batch_size";
        let metric = if seconds {
            format!("gdpr_stage_{}_seconds", stage.name)
        } else {
            format!("gdpr_stage_{}", stage.name)
        };
        render_histogram(&mut out, &metric, "", &stage.histogram, seconds);
    }
    out
}

/// Per-tenant opcode series, appended after the deployment-wide report:
/// `gdpr_tenant_op_total{tenant=...,op=...}` and the matching
/// `_errors_total`. Tenants and opcodes with zero traffic are omitted.
pub fn render_tenant_prometheus(tenants: &[(String, OpTelemetrySnapshot)]) -> String {
    let mut out = String::new();
    if tenants.iter().all(|(_, snap)| snap.total_ops() == 0) {
        return out;
    }
    out.push_str("# TYPE gdpr_tenant_op_total counter\n");
    out.push_str("# TYPE gdpr_tenant_op_errors_total counter\n");
    for (tenant, snap) in tenants {
        for op in &snap.ops {
            if op.total() == 0 {
                continue;
            }
            out.push_str(&format!(
                "gdpr_tenant_op_total{{tenant=\"{tenant}\",op=\"{}\"}} {}\n",
                op.name,
                op.total()
            ));
            out.push_str(&format!(
                "gdpr_tenant_op_errors_total{{tenant=\"{tenant}\",op=\"{}\"}} {}\n",
                op.name, op.errors
            ));
        }
    }
    out
}

/// One Prometheus histogram: cumulative `_bucket{le=...}` lines over the
/// nonzero buckets, a `+Inf` catch-all, `_sum`, and `_count`. Latency
/// buckets convert nanoseconds → seconds; dimensionless histograms (batch
/// sizes) emit raw upper bounds.
fn render_histogram(
    out: &mut String,
    metric: &str,
    labels: &str,
    h: &HistogramSnapshot,
    seconds: bool,
) {
    let fmt_labels = |extra: &str| {
        if labels.is_empty() {
            format!("{{{extra}}}")
        } else {
            format!("{{{labels},{extra}}}")
        }
    };
    let plain_labels = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("# TYPE {metric} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &count) in h.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let (_, upper) = gdpr_core::telemetry::bucket_bounds(i);
        let le = if upper == u64::MAX {
            "+Inf".to_string()
        } else if seconds {
            format!("{}", upper as f64 / 1e9)
        } else {
            format!("{upper}")
        };
        out.push_str(&format!(
            "{metric}_bucket{} {cumulative}\n",
            fmt_labels(&format!("le=\"{le}\""))
        ));
    }
    out.push_str(&format!(
        "{metric}_bucket{} {}\n",
        fmt_labels("le=\"+Inf\""),
        h.count
    ));
    let sum = if seconds {
        format!("{}", h.sum_ns as f64 / 1e9)
    } else {
        format!("{}", h.sum_ns)
    };
    out.push_str(&format!("{metric}_sum{plain_labels} {sum}\n"));
    out.push_str(&format!("{metric}_count{plain_labels} {}\n", h.count));
}

/// The full HTTP response the metrics listener writes: minimal HTTP/1.0 —
/// no request parsing, no keep-alive — because every scraper ever written
/// handles "200, body, close".
pub(crate) fn http_response(
    report: &MetricsReport,
    tenants: &[(String, OpTelemetrySnapshot)],
) -> Vec<u8> {
    let mut body = render_prometheus(report);
    body.push_str(&render_tenant_prometheus(tenants));
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::telemetry::OpTelemetry;
    use gdpr_core::GdprQuery;
    use std::time::Duration;

    fn sample_report() -> MetricsReport {
        let ops = OpTelemetry::new();
        ops.record(
            &GdprQuery::ReadDataByKey("k".into()),
            Duration::from_micros(15),
            false,
        );
        ops.record(
            &GdprQuery::ReadDataByKey("k".into()),
            Duration::from_micros(40),
            true,
        );
        let stages = ServerTelemetry::default();
        stages.queue_wait.record(Duration::from_micros(5));
        stages.batch_size.record_value(17);
        MetricsReport {
            ops: ops.snapshot().ops,
            stages: stages.stage_snapshots(),
            counters: vec![
                ("requests".to_string(), 2),
                ("connections_active".to_string(), 1),
            ],
        }
    }

    #[test]
    fn prometheus_text_has_counters_ops_and_stages() {
        let text = render_prometheus(&sample_report());
        assert!(text.contains("# TYPE gdpr_server_requests counter"));
        assert!(text.contains("gdpr_server_requests 2"));
        assert!(text.contains("# TYPE gdpr_server_connections_active gauge"));
        assert!(text.contains("gdpr_op_total{op=\"read-data-by-key\"} 2"));
        assert!(text.contains("gdpr_op_errors_total{op=\"read-data-by-key\"} 1"));
        // Untouched opcodes are omitted.
        assert!(!text.contains("op=\"create-record\""));
        // Latency histograms expose seconds and end with +Inf/_count.
        assert!(text.contains("gdpr_op_latency_seconds_bucket{op=\"read-data-by-key\",le=\""));
        assert!(text.contains("gdpr_op_latency_seconds_count{op=\"read-data-by-key\"} 2"));
        assert!(text.contains("gdpr_stage_queue_wait_seconds_bucket{le=\""));
        assert!(text.contains("gdpr_stage_queue_wait_seconds_count 1"));
        // batch_size stays dimensionless (no _seconds suffix); 17 lands in
        // the first bucket, [0, 96).
        assert!(text.contains("gdpr_stage_batch_size_bucket{le=\"96\"} 1"));
        // Every histogram carries the +Inf catch-all.
        assert!(text.contains("gdpr_stage_batch_size_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn tenant_series_are_labeled_and_skip_idle_tenants() {
        let acme = OpTelemetry::labeled("acme");
        acme.record(
            &GdprQuery::ReadDataByKey("k".into()),
            Duration::from_micros(3),
            true,
        );
        let idle = OpTelemetry::labeled("idle");
        let text = render_tenant_prometheus(&[
            ("acme".to_string(), acme.snapshot()),
            ("idle".to_string(), idle.snapshot()),
        ]);
        assert!(text.contains("gdpr_tenant_op_total{tenant=\"acme\",op=\"read-data-by-key\"} 1"));
        assert!(
            text.contains("gdpr_tenant_op_errors_total{tenant=\"acme\",op=\"read-data-by-key\"} 1")
        );
        assert!(!text.contains("tenant=\"idle\""));
        // All-idle input renders nothing, not bare TYPE headers.
        assert!(render_tenant_prometheus(&[("idle".to_string(), idle.snapshot())]).is_empty());
    }

    #[test]
    fn cumulative_bucket_counts_are_monotone() {
        let h = AtomicHistogram::new();
        for us in [1u64, 10, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        let mut out = String::new();
        render_histogram(&mut out, "m", "", &h.snapshot(), true);
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.starts_with("m_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative counts must not decrease: {line}");
            last = v;
        }
        assert!(out.ends_with("m_count 6\n"));
    }

    #[test]
    fn http_response_is_well_formed() {
        let resp = http_response(&sample_report(), &[]);
        let text = String::from_utf8(resp).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.0 200 OK"));
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
    }
}
