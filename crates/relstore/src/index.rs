//! Index layer: unique and secondary indices over table columns, including
//! inverted indices for `text[]` columns — the paper's "metadata indexing".
//!
//! For scalar columns the index maps the column value to the rows holding
//! it. For `text[]` columns it maps each *element* to the rows whose array
//! contains it, which is what a `... WHERE 'ads' = ANY(purposes)` query
//! needs (PostgreSQL would use a GIN index here).

use crate::btree::BPlusTree;
use crate::datum::{Datum, IndexKey};
use crate::error::{RelError, RelResult};
use crate::heap::RowId;

/// A single-column index.
pub struct Index {
    name: String,
    /// Position of the indexed column in the table schema.
    column: usize,
    unique: bool,
    /// Inverted semantics: index the elements of a `text[]` column.
    inverted: bool,
    tree: BPlusTree<IndexKey, RowId>,
    /// Approximate bytes of key data held (Table 3: index space overhead).
    key_bytes: usize,
}

impl Index {
    pub fn new(name: impl Into<String>, column: usize, unique: bool, inverted: bool) -> Self {
        Index {
            name: name.into(),
            column,
            unique,
            inverted,
            tree: BPlusTree::new(),
            key_bytes: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn column(&self) -> usize {
        self.column
    }

    pub fn is_unique(&self) -> bool {
        self.unique
    }

    pub fn is_inverted(&self) -> bool {
        self.inverted
    }

    /// Keys this row contributes to the index.
    fn keys_of(&self, row: &[Datum]) -> Vec<IndexKey> {
        let datum = &row[self.column];
        if self.inverted {
            match datum.as_text_array() {
                Some(items) => items
                    .iter()
                    .map(|s| IndexKey(Datum::Text(s.clone())))
                    .collect(),
                None => Vec::new(), // NULL array indexes nothing
            }
        } else if datum.is_null() {
            Vec::new() // NULLs are not indexed (as in btree indexes for lookups we issue)
        } else {
            vec![IndexKey(datum.clone())]
        }
    }

    /// Pre-check uniqueness for a row about to be inserted.
    pub fn check_unique(&self, row: &[Datum]) -> RelResult<()> {
        if !self.unique {
            return Ok(());
        }
        for key in self.keys_of(row) {
            if !self.tree.get(&key).is_empty() {
                return Err(RelError::UniqueViolation {
                    index: self.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Add a row's entries.
    pub fn insert(&mut self, row: &[Datum], id: RowId) {
        for key in self.keys_of(row) {
            self.key_bytes += key.0.size_bytes();
            self.tree.insert(key, id);
        }
    }

    /// Remove a row's entries.
    pub fn remove(&mut self, row: &[Datum], id: RowId) {
        for key in self.keys_of(row) {
            if self.tree.remove(&key, &id) {
                self.key_bytes -= key.0.size_bytes();
            }
        }
    }

    /// Rows holding exactly `datum` (or containing it, for inverted indices).
    pub fn lookup(&self, datum: &Datum) -> Vec<RowId> {
        self.tree.get(&IndexKey(datum.clone())).to_vec()
    }

    /// Rows whose key lies in `[lo, hi]`.
    pub fn lookup_range(&self, lo: &Datum, hi: &Datum) -> Vec<RowId> {
        self.lookup_range_limit(lo, hi, usize::MAX)
    }

    /// As [`Self::lookup_range`], capped at `limit` rows (in key order).
    pub fn lookup_range_limit(&self, lo: &Datum, hi: &Datum, limit: usize) -> Vec<RowId> {
        self.tree
            .range_limit(&IndexKey(lo.clone()), &IndexKey(hi.clone()), limit)
            .into_iter()
            .map(|(_, id)| id)
            .collect()
    }

    /// Number of (key, row) entries.
    pub fn entry_count(&self) -> usize {
        self.tree.entry_count()
    }

    /// Approximate bytes held by this index (keys + per-entry overhead).
    pub fn size_bytes(&self) -> usize {
        self.key_bytes + self.tree.entry_count() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: &str, purposes: &[&str]) -> Vec<Datum> {
        vec![
            Datum::Text(key.into()),
            Datum::TextArray(purposes.iter().map(|s| s.to_string()).collect()),
        ]
    }

    #[test]
    fn scalar_index_lookup() {
        let mut idx = Index::new("pk", 0, true, false);
        idx.insert(&row("a", &[]), RowId(0));
        idx.insert(&row("b", &[]), RowId(1));
        assert_eq!(idx.lookup(&Datum::Text("a".into())), vec![RowId(0)]);
        assert!(idx.lookup(&Datum::Text("zz".into())).is_empty());
    }

    #[test]
    fn unique_violation_detected() {
        let mut idx = Index::new("pk", 0, true, false);
        idx.insert(&row("a", &[]), RowId(0));
        assert!(matches!(
            idx.check_unique(&row("a", &[])),
            Err(RelError::UniqueViolation { .. })
        ));
        assert!(idx.check_unique(&row("b", &[])).is_ok());
    }

    #[test]
    fn non_unique_allows_duplicates() {
        let mut idx = Index::new("sec", 0, false, false);
        idx.insert(&row("x", &[]), RowId(0));
        assert!(idx.check_unique(&row("x", &[])).is_ok());
        idx.insert(&row("x", &[]), RowId(1));
        let mut got = idx.lookup(&Datum::Text("x".into()));
        got.sort();
        assert_eq!(got, vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn inverted_index_on_text_array() {
        let mut idx = Index::new("purposes_idx", 1, false, true);
        idx.insert(&row("a", &["ads", "2fa"]), RowId(0));
        idx.insert(&row("b", &["ads"]), RowId(1));
        idx.insert(&row("c", &["analytics"]), RowId(2));
        let mut ads = idx.lookup(&Datum::Text("ads".into()));
        ads.sort();
        assert_eq!(ads, vec![RowId(0), RowId(1)]);
        assert_eq!(idx.lookup(&Datum::Text("2fa".into())), vec![RowId(0)]);
        assert_eq!(idx.entry_count(), 4);
    }

    #[test]
    fn remove_clears_entries() {
        let mut idx = Index::new("purposes_idx", 1, false, true);
        let r = row("a", &["ads", "2fa"]);
        idx.insert(&r, RowId(0));
        idx.remove(&r, RowId(0));
        assert!(idx.lookup(&Datum::Text("ads".into())).is_empty());
        assert_eq!(idx.entry_count(), 0);
        assert_eq!(idx.size_bytes(), 0);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let mut idx = Index::new("sec", 0, false, false);
        idx.insert(&[Datum::Null, Datum::Null], RowId(0));
        assert_eq!(idx.entry_count(), 0);
    }

    #[test]
    fn range_lookup() {
        let mut idx = Index::new("ts", 0, false, false);
        for i in 0..100u64 {
            idx.insert(&[Datum::Timestamp(i)], RowId(i as u32));
        }
        let got = idx.lookup_range(&Datum::Timestamp(10), &Datum::Timestamp(19));
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn size_grows_with_entries() {
        let mut idx = Index::new("sec", 0, false, false);
        idx.insert(&[Datum::Text("long-purpose-string".into())], RowId(0));
        let one = idx.size_bytes();
        idx.insert(&[Datum::Text("another-purpose".into())], RowId(1));
        assert!(idx.size_bytes() > one);
    }
}
