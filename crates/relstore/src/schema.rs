//! Table schemas: column names, types, and the primary key.

use crate::datum::Datum;
use crate::error::{RelError, RelResult};

/// Column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Bool,
    Int,
    Float,
    Text,
    Timestamp,
    /// `text[]`: multi-valued metadata columns.
    TextArray,
}

impl ColumnType {
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Text => "text",
            ColumnType::Timestamp => "timestamp",
            ColumnType::TextArray => "text[]",
        }
    }

    /// Does `datum` inhabit this type? NULL inhabits every type.
    pub fn admits(&self, datum: &Datum) -> bool {
        matches!(
            (self, datum),
            (_, Datum::Null)
                | (ColumnType::Bool, Datum::Bool(_))
                | (ColumnType::Int, Datum::Int(_))
                | (ColumnType::Float, Datum::Float(_))
                | (ColumnType::Text, Datum::Text(_))
                | (ColumnType::Timestamp, Datum::Timestamp(_))
                | (ColumnType::TextArray, Datum::TextArray(_))
        )
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

/// A table schema: ordered columns plus the primary-key column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    /// Index into `columns` of the primary key.
    pk: usize,
}

impl Schema {
    /// Build a schema. `pk_column` must name one of the columns.
    pub fn new(columns: Vec<(&str, ColumnType)>, pk_column: &str) -> RelResult<Schema> {
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|(name, ty)| Column {
                name: name.to_string(),
                ty,
            })
            .collect();
        let pk = columns
            .iter()
            .position(|c| c.name == pk_column)
            .ok_or_else(|| RelError::NoSuchColumn(pk_column.to_string()))?;
        Ok(Schema { columns, pk })
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of `name`, if it exists.
    pub fn column_index(&self, name: &str) -> RelResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelError::NoSuchColumn(name.to_string()))
    }

    /// The primary-key column position.
    pub fn pk_index(&self) -> usize {
        self.pk
    }

    /// The primary-key column name.
    pub fn pk_name(&self) -> &str {
        &self.columns[self.pk].name
    }

    /// Validate a row against this schema (arity and per-column types).
    pub fn check_row(&self, row: &[Datum]) -> RelResult<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, datum) in self.columns.iter().zip(row) {
            if !col.ty.admits(datum) {
                return Err(RelError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name().to_string(),
                    got: datum.type_name().to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ("key", ColumnType::Text),
                ("data", ColumnType::Text),
                ("purposes", ColumnType::TextArray),
                ("expiry", ColumnType::Timestamp),
            ],
            "key",
        )
        .unwrap()
    }

    #[test]
    fn pk_resolution() {
        let s = schema();
        assert_eq!(s.pk_index(), 0);
        assert_eq!(s.pk_name(), "key");
        assert_eq!(s.column_index("expiry").unwrap(), 3);
        assert!(matches!(
            s.column_index("ghost"),
            Err(RelError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn bad_pk_rejected() {
        assert!(Schema::new(vec![("a", ColumnType::Int)], "nope").is_err());
    }

    #[test]
    fn check_row_accepts_valid() {
        let s = schema();
        let row = vec![
            Datum::Text("k1".into()),
            Datum::Text("d".into()),
            Datum::TextArray(vec!["ads".into()]),
            Datum::Timestamp(42),
        ];
        assert!(s.check_row(&row).is_ok());
    }

    #[test]
    fn check_row_accepts_nulls() {
        let s = schema();
        let row = vec![
            Datum::Text("k1".into()),
            Datum::Null,
            Datum::Null,
            Datum::Null,
        ];
        assert!(s.check_row(&row).is_ok());
    }

    #[test]
    fn check_row_rejects_arity() {
        let s = schema();
        assert!(matches!(
            s.check_row(&[Datum::Text("k".into())]),
            Err(RelError::ArityMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn check_row_rejects_type() {
        let s = schema();
        let row = vec![
            Datum::Text("k1".into()),
            Datum::Int(5), // wrong: data is text
            Datum::TextArray(vec![]),
            Datum::Timestamp(0),
        ];
        assert!(matches!(
            s.check_row(&row),
            Err(RelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn admits_matrix() {
        assert!(ColumnType::Int.admits(&Datum::Int(1)));
        assert!(!ColumnType::Int.admits(&Datum::Text("1".into())));
        assert!(ColumnType::Text.admits(&Datum::Null));
        assert!(ColumnType::TextArray.admits(&Datum::TextArray(vec![])));
        assert!(!ColumnType::TextArray.admits(&Datum::Text("a".into())));
    }
}
