//! The statement log — PostgreSQL's `csvlog`, plus the paper's row-level
//! response logging.
//!
//! Each executed statement produces one CSV line:
//! `timestamp_ms,kind,rows_affected,"statement text"`. With `log_reads`
//! enabled in [`crate::RelConfig`], SELECT/COUNT statements are logged too —
//! that is the audit-trail behaviour GDPR Article 30 requires and the source
//! of the 30–40% "Log" overhead in Figure 4b.

use crate::error::RelResult;
use crate::statement::{Statement, StatementResult};
use clock::SharedClock;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Where the query log goes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum LogStorage {
    /// Keep lines in memory (tests; also lets regulators query the log).
    #[default]
    Memory,
    /// Append to a CSV file.
    File(PathBuf),
}

/// One parsed query-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    pub timestamp_ms: u64,
    pub kind: String,
    pub rows: usize,
    pub statement: String,
}

enum Sink {
    Memory(Vec<LogEntry>),
    File(BufWriter<File>),
}

/// The query logger. Internally synchronized; shared by reference.
pub struct QueryLog {
    sink: Mutex<Sink>,
    clock: SharedClock,
    entries: std::sync::atomic::AtomicU64,
}

impl QueryLog {
    pub fn open(storage: &LogStorage, clock: SharedClock) -> RelResult<Arc<QueryLog>> {
        let sink = match storage {
            LogStorage::Memory => Sink::Memory(Vec::new()),
            LogStorage::File(path) => {
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                Sink::File(BufWriter::new(file))
            }
        };
        Ok(Arc::new(QueryLog {
            sink: Mutex::new(sink),
            clock,
            entries: std::sync::atomic::AtomicU64::new(0),
        }))
    }

    /// Record one executed statement.
    pub fn record(&self, stmt: &Statement, result: &StatementResult) -> RelResult<()> {
        let entry = LogEntry {
            timestamp_ms: self.clock.now().as_millis(),
            kind: stmt.kind().to_string(),
            rows: result.rows_affected(),
            statement: stmt.to_string(),
        };
        self.entries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match &mut *self.sink.lock() {
            Sink::Memory(lines) => lines.push(entry),
            Sink::File(w) => {
                writeln!(
                    w,
                    "{},{},{},\"{}\"",
                    entry.timestamp_ms,
                    entry.kind,
                    entry.rows,
                    entry.statement.replace('"', "\"\"")
                )?;
            }
        }
        Ok(())
    }

    /// Total entries recorded.
    pub fn len(&self) -> u64 {
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries within `[from_ms, to_ms]` (memory sink only) — the regulator's
    /// GET-SYSTEM-LOGS query shape.
    pub fn entries_between(&self, from_ms: u64, to_ms: u64) -> Vec<LogEntry> {
        match &*self.sink.lock() {
            Sink::Memory(lines) => lines
                .iter()
                .filter(|e| e.timestamp_ms >= from_ms && e.timestamp_ms <= to_ms)
                .cloned()
                .collect(),
            Sink::File(_) => Vec::new(),
        }
    }

    /// Flush file-backed logs.
    pub fn flush(&self) -> RelResult<()> {
        if let Sink::File(w) = &mut *self.sink.lock() {
            w.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;
    use crate::predicate::Predicate;

    fn select() -> Statement {
        Statement::Select {
            table: "t".into(),
            pred: Predicate::eq_text("usr", "neo"),
        }
    }

    #[test]
    fn memory_log_records_entries() {
        let sim = clock::sim();
        let log = QueryLog::open(&LogStorage::Memory, sim.clone()).unwrap();
        log.record(&select(), &StatementResult::Rows(vec![vec![Datum::Null]]))
            .unwrap();
        sim.advance(std::time::Duration::from_millis(500));
        log.record(&select(), &StatementResult::Count(3)).unwrap();
        assert_eq!(log.len(), 2);
        let all = log.entries_between(0, u64::MAX);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].rows, 1);
        assert_eq!(all[1].rows, 3);
        assert!(all[0].statement.contains("usr = 'neo'"));
    }

    #[test]
    fn time_range_filtering() {
        let sim = clock::sim();
        let log = QueryLog::open(&LogStorage::Memory, sim.clone()).unwrap();
        for _ in 0..5 {
            log.record(&select(), &StatementResult::Count(0)).unwrap();
            sim.advance(std::time::Duration::from_millis(100));
        }
        // Entries at t=0,100,200,300,400.
        assert_eq!(log.entries_between(100, 300).len(), 3);
        assert_eq!(log.entries_between(401, 999).len(), 0);
    }

    #[test]
    fn file_log_writes_csv() {
        let dir = std::env::temp_dir().join(format!("qlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("query.csv");
        let _ = std::fs::remove_file(&path);
        let log = QueryLog::open(&LogStorage::File(path.clone()), clock::wall()).unwrap();
        log.record(&select(), &StatementResult::Count(2)).unwrap();
        log.flush().unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("SELECT,2,"));
        std::fs::remove_file(&path).unwrap();
    }
}
