//! The statement API: the typed equivalent of the SQL the paper's client
//! stubs issue, plus a binary encoding for the WAL and the encrypted
//! transit boundary.

use crate::datum::Datum;
use crate::error::{RelError, RelResult};
use crate::predicate::Predicate;
use crate::schema::ColumnType;
use std::fmt;

/// One statement against a [`crate::Database`].
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        table: String,
        columns: Vec<(String, ColumnType)>,
        pk: String,
    },
    CreateIndex {
        table: String,
        index: String,
        column: String,
        inverted: bool,
    },
    DropIndex {
        table: String,
        index: String,
    },
    Insert {
        table: String,
        row: Vec<Datum>,
    },
    Select {
        table: String,
        pred: Predicate,
    },
    /// `SELECT ... WHERE column >= start ORDER BY column LIMIT limit` —
    /// the bounded range scan YCSB's workload E issues.
    SelectRange {
        table: String,
        column: String,
        start: Datum,
        limit: usize,
    },
    Count {
        table: String,
        pred: Predicate,
    },
    Update {
        table: String,
        pred: Predicate,
        assignments: Vec<(String, Datum)>,
    },
    Delete {
        table: String,
        pred: Predicate,
    },
}

/// The result of executing a [`Statement`].
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// DDL succeeded.
    Done,
    /// INSERT succeeded.
    Inserted,
    /// SELECT rows.
    Rows(Vec<Vec<Datum>>),
    /// COUNT result.
    Count(usize),
    /// Rows changed by UPDATE.
    Updated(usize),
    /// Rows removed by DELETE (returned for deletion verification).
    Deleted(Vec<Vec<Datum>>),
}

impl StatementResult {
    /// Rows touched/returned, for the query log.
    pub fn rows_affected(&self) -> usize {
        match self {
            StatementResult::Done | StatementResult::Inserted => 1,
            StatementResult::Rows(rows) | StatementResult::Deleted(rows) => rows.len(),
            StatementResult::Count(n) | StatementResult::Updated(n) => *n,
        }
    }

    pub fn rows(&self) -> &[Vec<Datum>] {
        match self {
            StatementResult::Rows(rows) | StatementResult::Deleted(rows) => rows,
            _ => &[],
        }
    }

    /// Binary encoding of the result, used to pay the honest in-transit
    /// cipher cost on the response path (results are consumed in-process, so
    /// no decoder is needed — the channel verifies integrity byte-for-byte).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StatementResult::Done => out.push(0),
            StatementResult::Inserted => out.push(1),
            StatementResult::Rows(rows) | StatementResult::Deleted(rows) => {
                out.push(if matches!(self, StatementResult::Rows(_)) {
                    2
                } else {
                    3
                });
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                    for d in row {
                        d.encode(&mut out);
                    }
                }
            }
            StatementResult::Count(n) => {
                out.push(4);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
            }
            StatementResult::Updated(n) => {
                out.push(5);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
            }
        }
        out
    }
}

impl Statement {
    /// Does this statement mutate the database (and so belong in the WAL)?
    pub fn is_write(&self) -> bool {
        !matches!(
            self,
            Statement::Select { .. } | Statement::SelectRange { .. } | Statement::Count { .. }
        )
    }

    /// The statement kind, for the query log.
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::CreateTable { .. } => "CREATE TABLE",
            Statement::CreateIndex { .. } => "CREATE INDEX",
            Statement::DropIndex { .. } => "DROP INDEX",
            Statement::Insert { .. } => "INSERT",
            Statement::Select { .. } => "SELECT",
            Statement::SelectRange { .. } => "SELECT",
            Statement::Count { .. } => "COUNT",
            Statement::Update { .. } => "UPDATE",
            Statement::Delete { .. } => "DELETE",
        }
    }

    // ----- binary encoding (WAL, transit) -----

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Statement::CreateTable { table, columns, pk } => {
                out.push(0);
                put_str(&mut out, table);
                out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                for (name, ty) in columns {
                    put_str(&mut out, name);
                    out.push(column_type_tag(*ty));
                }
                put_str(&mut out, pk);
            }
            Statement::CreateIndex {
                table,
                index,
                column,
                inverted,
            } => {
                out.push(1);
                put_str(&mut out, table);
                put_str(&mut out, index);
                put_str(&mut out, column);
                out.push(*inverted as u8);
            }
            Statement::DropIndex { table, index } => {
                out.push(2);
                put_str(&mut out, table);
                put_str(&mut out, index);
            }
            Statement::Insert { table, row } => {
                out.push(3);
                put_str(&mut out, table);
                out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                for d in row {
                    d.encode(&mut out);
                }
            }
            Statement::Select { table, pred } => {
                out.push(4);
                put_str(&mut out, table);
                encode_pred(pred, &mut out);
            }
            Statement::Count { table, pred } => {
                out.push(5);
                put_str(&mut out, table);
                encode_pred(pred, &mut out);
            }
            Statement::Update {
                table,
                pred,
                assignments,
            } => {
                out.push(6);
                put_str(&mut out, table);
                encode_pred(pred, &mut out);
                out.extend_from_slice(&(assignments.len() as u32).to_le_bytes());
                for (col, value) in assignments {
                    put_str(&mut out, col);
                    value.encode(&mut out);
                }
            }
            Statement::Delete { table, pred } => {
                out.push(7);
                put_str(&mut out, table);
                encode_pred(pred, &mut out);
            }
            Statement::SelectRange {
                table,
                column,
                start,
                limit,
            } => {
                out.push(8);
                put_str(&mut out, table);
                put_str(&mut out, column);
                start.encode(&mut out);
                out.extend_from_slice(&(*limit as u64).to_le_bytes());
            }
        }
        out
    }

    pub fn decode(buf: &[u8]) -> RelResult<Statement> {
        let mut pos = 0;
        let stmt = Self::decode_at(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(RelError::Corrupt("trailing bytes after statement".into()));
        }
        Ok(stmt)
    }

    fn decode_at(buf: &[u8], pos: &mut usize) -> RelResult<Statement> {
        let err = |m: &str| RelError::Corrupt(m.to_string());
        let tag = *buf.get(*pos).ok_or_else(|| err("empty statement"))?;
        *pos += 1;
        Ok(match tag {
            0 => {
                let table = get_str(buf, pos)?;
                let n = get_u32(buf, pos)? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = get_str(buf, pos)?;
                    let ty_tag = *buf.get(*pos).ok_or_else(|| err("truncated column type"))?;
                    *pos += 1;
                    columns.push((name, column_type_from_tag(ty_tag)?));
                }
                let pk = get_str(buf, pos)?;
                Statement::CreateTable { table, columns, pk }
            }
            1 => Statement::CreateIndex {
                table: get_str(buf, pos)?,
                index: get_str(buf, pos)?,
                column: get_str(buf, pos)?,
                inverted: {
                    let b = *buf.get(*pos).ok_or_else(|| err("truncated bool"))?;
                    *pos += 1;
                    b != 0
                },
            },
            2 => Statement::DropIndex {
                table: get_str(buf, pos)?,
                index: get_str(buf, pos)?,
            },
            3 => {
                let table = get_str(buf, pos)?;
                let n = get_u32(buf, pos)? as usize;
                let mut row = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    row.push(Datum::decode(buf, pos).map_err(RelError::Corrupt)?);
                }
                Statement::Insert { table, row }
            }
            4 => Statement::Select {
                table: get_str(buf, pos)?,
                pred: decode_pred(buf, pos)?,
            },
            5 => Statement::Count {
                table: get_str(buf, pos)?,
                pred: decode_pred(buf, pos)?,
            },
            6 => {
                let table = get_str(buf, pos)?;
                let pred = decode_pred(buf, pos)?;
                let n = get_u32(buf, pos)? as usize;
                let mut assignments = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let col = get_str(buf, pos)?;
                    let value = Datum::decode(buf, pos).map_err(RelError::Corrupt)?;
                    assignments.push((col, value));
                }
                Statement::Update {
                    table,
                    pred,
                    assignments,
                }
            }
            7 => Statement::Delete {
                table: get_str(buf, pos)?,
                pred: decode_pred(buf, pos)?,
            },
            8 => {
                let table = get_str(buf, pos)?;
                let column = get_str(buf, pos)?;
                let start = Datum::decode(buf, pos).map_err(RelError::Corrupt)?;
                if buf.len() < *pos + 8 {
                    return Err(err("truncated limit"));
                }
                let limit = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()) as usize;
                *pos += 8;
                Statement::SelectRange {
                    table,
                    column,
                    start,
                    limit,
                }
            }
            other => return Err(err(&format!("unknown statement tag {other}"))),
        })
    }
}

impl fmt::Display for Statement {
    /// SQL-flavoured rendering for the query log.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { table, columns, pk } => {
                write!(f, "CREATE TABLE {table} (")?;
                for (i, (name, ty)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} {}", ty.name())?;
                }
                write!(f, ", PRIMARY KEY ({pk}))")
            }
            Statement::CreateIndex {
                table,
                index,
                column,
                inverted,
            } => {
                let using = if *inverted { " USING gin" } else { "" };
                write!(f, "CREATE INDEX {index} ON {table}{using} ({column})")
            }
            Statement::DropIndex { table, index } => write!(f, "DROP INDEX {index} ON {table}"),
            Statement::Insert { table, row } => {
                write!(f, "INSERT INTO {table} VALUES (")?;
                for (i, d) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, ")")
            }
            Statement::Select { table, pred } => write!(f, "SELECT * FROM {table} WHERE {pred}"),
            Statement::SelectRange {
                table,
                column,
                start,
                limit,
            } => write!(
                f,
                "SELECT * FROM {table} WHERE {column} >= {start} ORDER BY {column} LIMIT {limit}"
            ),
            Statement::Count { table, pred } => {
                write!(f, "SELECT count(*) FROM {table} WHERE {pred}")
            }
            Statement::Update {
                table,
                pred,
                assignments,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, value)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} = {value}")?;
                }
                write!(f, " WHERE {pred}")
            }
            Statement::Delete { table, pred } => write!(f, "DELETE FROM {table} WHERE {pred}"),
        }
    }
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Text => 3,
        ColumnType::Timestamp => 4,
        ColumnType::TextArray => 5,
    }
}

fn column_type_from_tag(tag: u8) -> RelResult<ColumnType> {
    Ok(match tag {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Float,
        3 => ColumnType::Text,
        4 => ColumnType::Timestamp,
        5 => ColumnType::TextArray,
        other => {
            return Err(RelError::Corrupt(format!(
                "unknown column type tag {other}"
            )))
        }
    })
}

fn encode_pred(pred: &Predicate, out: &mut Vec<u8>) {
    match pred {
        Predicate::True => out.push(0),
        Predicate::Eq(col, value) => {
            out.push(1);
            put_str(out, col);
            value.encode(out);
        }
        Predicate::Contains(col, value) => {
            out.push(2);
            put_str(out, col);
            put_str(out, value);
        }
        Predicate::Lt(col, value) => {
            out.push(3);
            put_str(out, col);
            value.encode(out);
        }
        Predicate::Le(col, value) => {
            out.push(4);
            put_str(out, col);
            value.encode(out);
        }
        Predicate::Gt(col, value) => {
            out.push(5);
            put_str(out, col);
            value.encode(out);
        }
        Predicate::Ge(col, value) => {
            out.push(6);
            put_str(out, col);
            value.encode(out);
        }
        Predicate::IsNull(col) => {
            out.push(7);
            put_str(out, col);
        }
        Predicate::And(ps) => {
            out.push(8);
            out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
            for p in ps {
                encode_pred(p, out);
            }
        }
        Predicate::Or(ps) => {
            out.push(9);
            out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
            for p in ps {
                encode_pred(p, out);
            }
        }
        Predicate::Not(p) => {
            out.push(10);
            encode_pred(p, out);
        }
    }
}

fn decode_pred(buf: &[u8], pos: &mut usize) -> RelResult<Predicate> {
    let err = |m: &str| RelError::Corrupt(m.to_string());
    let tag = *buf.get(*pos).ok_or_else(|| err("empty predicate"))?;
    *pos += 1;
    let datum = |buf: &[u8], pos: &mut usize| Datum::decode(buf, pos).map_err(RelError::Corrupt);
    Ok(match tag {
        0 => Predicate::True,
        1 => Predicate::Eq(get_str(buf, pos)?, datum(buf, pos)?),
        2 => Predicate::Contains(get_str(buf, pos)?, get_str(buf, pos)?),
        3 => Predicate::Lt(get_str(buf, pos)?, datum(buf, pos)?),
        4 => Predicate::Le(get_str(buf, pos)?, datum(buf, pos)?),
        5 => Predicate::Gt(get_str(buf, pos)?, datum(buf, pos)?),
        6 => Predicate::Ge(get_str(buf, pos)?, datum(buf, pos)?),
        7 => Predicate::IsNull(get_str(buf, pos)?),
        8 | 9 => {
            let n = get_u32(buf, pos)? as usize;
            let mut ps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                ps.push(decode_pred(buf, pos)?);
            }
            if tag == 8 {
                Predicate::And(ps)
            } else {
                Predicate::Or(ps)
            }
        }
        10 => Predicate::Not(Box::new(decode_pred(buf, pos)?)),
        other => return Err(err(&format!("unknown predicate tag {other}"))),
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> RelResult<u32> {
    if buf.len() < *pos + 4 {
        return Err(RelError::Corrupt("truncated u32".into()));
    }
    let n = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
    *pos += 4;
    Ok(n)
}

fn get_str(buf: &[u8], pos: &mut usize) -> RelResult<String> {
    let len = get_u32(buf, pos)? as usize;
    if buf.len() < *pos + len {
        return Err(RelError::Corrupt("truncated string".into()));
    }
    let s = String::from_utf8(buf[*pos..*pos + len].to_vec())
        .map_err(|e| RelError::Corrupt(e.to_string()))?;
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Statement> {
        vec![
            Statement::CreateTable {
                table: "personal_data".into(),
                columns: vec![
                    ("key".into(), ColumnType::Text),
                    ("purposes".into(), ColumnType::TextArray),
                    ("expiry".into(), ColumnType::Timestamp),
                ],
                pk: "key".into(),
            },
            Statement::CreateIndex {
                table: "personal_data".into(),
                index: "purposes_idx".into(),
                column: "purposes".into(),
                inverted: true,
            },
            Statement::DropIndex {
                table: "personal_data".into(),
                index: "purposes_idx".into(),
            },
            Statement::Insert {
                table: "personal_data".into(),
                row: vec![
                    Datum::Text("k1".into()),
                    Datum::TextArray(vec!["ads".into()]),
                    Datum::Timestamp(42),
                ],
            },
            Statement::Select {
                table: "personal_data".into(),
                pred: Predicate::And(vec![
                    Predicate::eq_text("key", "k1"),
                    Predicate::Not(Box::new(Predicate::contains("objections", "ads"))),
                ]),
            },
            Statement::Count {
                table: "personal_data".into(),
                pred: Predicate::Or(vec![Predicate::True, Predicate::IsNull("usr".into())]),
            },
            Statement::Update {
                table: "personal_data".into(),
                pred: Predicate::Le("expiry".into(), Datum::Timestamp(99)),
                assignments: vec![("data".into(), Datum::Text("redacted".into()))],
            },
            Statement::Delete {
                table: "personal_data".into(),
                pred: Predicate::Ge("expiry".into(), Datum::Timestamp(7)),
            },
            Statement::SelectRange {
                table: "usertable".into(),
                column: "key".into(),
                start: Datum::Text("user000042".into()),
                limit: 37,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for stmt in samples() {
            let buf = stmt.encode();
            let decoded = Statement::decode(&buf).unwrap();
            assert_eq!(decoded, stmt);
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = samples()[3].encode();
        buf.push(0xFF);
        assert!(Statement::decode(&buf).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = samples()[0].encode();
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            assert!(Statement::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn write_classification() {
        let stmts = samples();
        assert!(stmts[0].is_write());
        assert!(stmts[3].is_write());
        assert!(!stmts[4].is_write()); // SELECT
        assert!(!stmts[5].is_write()); // COUNT
        assert!(stmts[6].is_write());
    }

    #[test]
    fn display_is_sql_like() {
        let stmt = Statement::Select {
            table: "t".into(),
            pred: Predicate::eq_text("usr", "neo"),
        };
        assert_eq!(stmt.to_string(), "SELECT * FROM t WHERE usr = 'neo'");
        let ins = &samples()[3];
        assert_eq!(
            ins.to_string(),
            "INSERT INTO personal_data VALUES ('k1', {ads}, ts:42)"
        );
        assert!(samples()[1].to_string().contains("USING gin"));
    }

    #[test]
    fn rows_affected() {
        assert_eq!(StatementResult::Updated(3).rows_affected(), 3);
        assert_eq!(
            StatementResult::Rows(vec![vec![Datum::Null], vec![Datum::Null]]).rows_affected(),
            2
        );
        assert_eq!(StatementResult::Count(9).rows_affected(), 9);
        assert_eq!(StatementResult::Inserted.rows_affected(), 1);
    }
}
