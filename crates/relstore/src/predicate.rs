//! Row predicates: the WHERE clauses of the statement API.

use crate::datum::Datum;
use crate::error::RelResult;
use crate::schema::Schema;
use std::cmp::Ordering;
use std::fmt;

/// A predicate over rows of one table.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// `col = value` (scalar equality).
    Eq(String, Datum),
    /// `value = ANY(col)` — membership in a `text[]` column.
    Contains(String, String),
    /// `col < value`.
    Lt(String, Datum),
    /// `col <= value`.
    Le(String, Datum),
    /// `col > value`.
    Gt(String, Datum),
    /// `col >= value`.
    Ge(String, Datum),
    /// `col IS NULL` / empty array.
    IsNull(String),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `col = text-value`.
    pub fn eq_text(col: &str, value: &str) -> Predicate {
        Predicate::Eq(col.to_string(), Datum::Text(value.to_string()))
    }

    /// Convenience: `value = ANY(col)`.
    pub fn contains(col: &str, value: &str) -> Predicate {
        Predicate::Contains(col.to_string(), value.to_string())
    }

    /// Evaluate against a row. Unknown (NULL) comparisons are false, as in
    /// SQL's three-valued logic collapsing to WHERE semantics.
    pub fn eval(&self, schema: &Schema, row: &[Datum]) -> RelResult<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(col, value) => {
                let datum = &row[schema.column_index(col)?];
                datum.sql_cmp(value) == Some(Ordering::Equal)
            }
            Predicate::Contains(col, needle) => {
                let datum = &row[schema.column_index(col)?];
                datum
                    .as_text_array()
                    .is_some_and(|items| items.iter().any(|s| s == needle))
            }
            Predicate::Lt(col, value) => self.cmp_is(schema, row, col, value, Ordering::Less)?,
            Predicate::Gt(col, value) => self.cmp_is(schema, row, col, value, Ordering::Greater)?,
            Predicate::Le(col, value) => {
                let datum = &row[schema.column_index(col)?];
                matches!(datum.sql_cmp(value), Some(Ordering::Less | Ordering::Equal))
            }
            Predicate::Ge(col, value) => {
                let datum = &row[schema.column_index(col)?];
                matches!(
                    datum.sql_cmp(value),
                    Some(Ordering::Greater | Ordering::Equal)
                )
            }
            Predicate::IsNull(col) => {
                let datum = &row[schema.column_index(col)?];
                datum.is_null() || datum.as_text_array().is_some_and(|a| a.is_empty())
            }
            Predicate::And(preds) => {
                for p in preds {
                    if !p.eval(schema, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(preds) => {
                for p in preds {
                    if p.eval(schema, row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(schema, row)?,
        })
    }

    fn cmp_is(
        &self,
        schema: &Schema,
        row: &[Datum],
        col: &str,
        value: &Datum,
        want: Ordering,
    ) -> RelResult<bool> {
        let datum = &row[schema.column_index(col)?];
        Ok(datum.sql_cmp(value) == Some(want))
    }

    /// Validate that all referenced columns exist.
    pub fn check(&self, schema: &Schema) -> RelResult<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::Eq(col, _)
            | Predicate::Contains(col, _)
            | Predicate::Lt(col, _)
            | Predicate::Le(col, _)
            | Predicate::Gt(col, _)
            | Predicate::Ge(col, _)
            | Predicate::IsNull(col) => schema.column_index(col).map(|_| ()),
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().try_for_each(|p| p.check(schema)),
            Predicate::Not(p) => p.check(schema),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Eq(c, v) => write!(f, "{c} = {v}"),
            Predicate::Contains(c, v) => write!(f, "'{v}' = ANY({c})"),
            Predicate::Lt(c, v) => write!(f, "{c} < {v}"),
            Predicate::Le(c, v) => write!(f, "{c} <= {v}"),
            Predicate::Gt(c, v) => write!(f, "{c} > {v}"),
            Predicate::Ge(c, v) => write!(f, "{c} >= {v}"),
            Predicate::IsNull(c) => write!(f, "{c} IS NULL"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ("key", ColumnType::Text),
                ("usr", ColumnType::Text),
                ("purposes", ColumnType::TextArray),
                ("expiry", ColumnType::Timestamp),
            ],
            "key",
        )
        .unwrap()
    }

    fn row(key: &str, usr: &str, purposes: &[&str], expiry: u64) -> Vec<Datum> {
        vec![
            Datum::Text(key.into()),
            Datum::Text(usr.into()),
            Datum::TextArray(purposes.iter().map(|s| s.to_string()).collect()),
            Datum::Timestamp(expiry),
        ]
    }

    #[test]
    fn eq_and_contains() {
        let s = schema();
        let r = row("k1", "neo", &["ads", "2fa"], 100);
        assert!(Predicate::eq_text("usr", "neo").eval(&s, &r).unwrap());
        assert!(!Predicate::eq_text("usr", "smith").eval(&s, &r).unwrap());
        assert!(Predicate::contains("purposes", "ads").eval(&s, &r).unwrap());
        assert!(!Predicate::contains("purposes", "sales")
            .eval(&s, &r)
            .unwrap());
    }

    #[test]
    fn comparisons_on_timestamps() {
        let s = schema();
        let r = row("k1", "neo", &[], 100);
        let lt = Predicate::Lt("expiry".into(), Datum::Timestamp(200));
        let ge = Predicate::Ge("expiry".into(), Datum::Timestamp(100));
        let gt = Predicate::Gt("expiry".into(), Datum::Timestamp(100));
        assert!(lt.eval(&s, &r).unwrap());
        assert!(ge.eval(&s, &r).unwrap());
        assert!(!gt.eval(&s, &r).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let mut r = row("k1", "neo", &[], 100);
        r[1] = Datum::Null;
        assert!(!Predicate::eq_text("usr", "neo").eval(&s, &r).unwrap());
        assert!(Predicate::IsNull("usr".into()).eval(&s, &r).unwrap());
    }

    #[test]
    fn empty_array_counts_as_null() {
        let s = schema();
        let r = row("k1", "neo", &[], 100);
        assert!(Predicate::IsNull("purposes".into()).eval(&s, &r).unwrap());
        let r2 = row("k1", "neo", &["x"], 100);
        assert!(!Predicate::IsNull("purposes".into()).eval(&s, &r2).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row("k1", "neo", &["ads"], 100);
        let both = Predicate::And(vec![
            Predicate::eq_text("usr", "neo"),
            Predicate::contains("purposes", "ads"),
        ]);
        assert!(both.eval(&s, &r).unwrap());
        let either = Predicate::Or(vec![
            Predicate::eq_text("usr", "smith"),
            Predicate::contains("purposes", "ads"),
        ]);
        assert!(either.eval(&s, &r).unwrap());
        let neither = Predicate::Not(Box::new(either.clone()));
        assert!(!neither.eval(&s, &r).unwrap());
        assert!(
            Predicate::And(vec![]).eval(&s, &r).unwrap(),
            "empty AND is true"
        );
        assert!(
            !Predicate::Or(vec![]).eval(&s, &r).unwrap(),
            "empty OR is false"
        );
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let r = row("k1", "neo", &[], 0);
        assert!(Predicate::eq_text("ghost", "x").eval(&s, &r).is_err());
        assert!(Predicate::eq_text("ghost", "x").check(&s).is_err());
        assert!(Predicate::And(vec![Predicate::eq_text("ghost", "x")])
            .check(&s)
            .is_err());
        assert!(Predicate::True.check(&s).is_ok());
    }

    #[test]
    fn display_is_sql_like() {
        let p = Predicate::And(vec![
            Predicate::eq_text("usr", "neo"),
            Predicate::contains("purposes", "ads"),
        ]);
        assert_eq!(p.to_string(), "(usr = 'neo' AND 'ads' = ANY(purposes))");
    }
}
