use std::fmt;

/// Errors surfaced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column does not exist in the table's schema.
    NoSuchColumn(String),
    /// A datum's type did not match the column type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// Row arity did not match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// Duplicate value in a unique index (e.g. primary key).
    UniqueViolation { index: String },
    /// A table with this name already exists.
    TableExists(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// Write-ahead-log failure.
    Wal(String),
    /// Persisted data failed validation on recovery.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::NoSuchTable(t) => write!(f, "relation \"{t}\" does not exist"),
            RelError::NoSuchColumn(c) => write!(f, "column \"{c}\" does not exist"),
            RelError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "column \"{column}\" is of type {expected} but expression is of type {got}"
                )
            }
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "INSERT has {got} expressions but table expects {expected}"
                )
            }
            RelError::UniqueViolation { index } => {
                write!(
                    f,
                    "duplicate key value violates unique constraint \"{index}\""
                )
            }
            RelError::TableExists(t) => write!(f, "relation \"{t}\" already exists"),
            RelError::IndexExists(i) => write!(f, "index \"{i}\" already exists"),
            RelError::Wal(msg) => write!(f, "WAL error: {msg}"),
            RelError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            RelError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

impl From<std::io::Error> for RelError {
    fn from(e: std::io::Error) -> Self {
        RelError::Io(e.to_string())
    }
}

/// Engine-level result alias.
pub type RelResult<T> = Result<T, RelError>;
