//! A relational storage engine in the mould of PostgreSQL.
//!
//! This crate is the "PostgreSQL" of the reproduction (§5.2 of the paper).
//! Its design mirrors the properties that drive the paper's PostgreSQL
//! results:
//!
//! * **Concurrent readers.** Tables are guarded by reader-writer locks, so
//!   read statements proceed in parallel — unlike the single-threaded
//!   [`kvstore`](../kvstore/index.html). The paper attributes PostgreSQL's
//!   milder GDPR slowdown partly to not serializing everything.
//! * **B+Tree secondary indices** ([`btree`], [`index`]), including
//!   multi-value (array-typed) columns — the paper's "metadata indexing".
//!   Each additional index speeds metadata queries but taxes every write
//!   (Figure 3b: two secondary indices cost ~⅔ of pgbench throughput).
//! * **Write-ahead log** ([`wal`]) with fsync policies and optional at-rest
//!   encryption (the LUKS stand-in), replayable for crash recovery.
//! * **Statement log** ([`querylog`]) in the spirit of `csvlog` plus the
//!   paper's row-level-security response logging: with `log_reads` enabled,
//!   every SELECT is recorded too.
//! * **No native row TTL** — exactly PostgreSQL's situation. The paper adds
//!   an expiry-timestamp column and a 1-second sweep daemon; that daemon is
//!   [`ttl::TtlDaemon`].
//!
//! The public surface is a typed statement API ([`statement::Statement`])
//! rather than a SQL parser: the paper's client stubs issue a fixed set of
//! parameterized statements, so the reproduction models exactly that set.

pub mod btree;
pub mod config;
pub mod database;
pub mod datum;
pub mod error;
pub mod heap;
pub mod index;
pub mod predicate;
pub mod querylog;
pub mod schema;
pub mod sql;
pub mod statement;
pub mod table;
pub mod ttl;
pub mod wal;

pub use config::{RelConfig, WalStorage};
pub use database::Database;
pub use datum::Datum;
pub use error::RelError;
pub use predicate::Predicate;
pub use schema::{ColumnType, Schema};
pub use statement::{Statement, StatementResult};
