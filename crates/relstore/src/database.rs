//! The database front-end: statement execution over reader-writer-locked
//! tables, WAL logging, query logging, and the transit encryption boundary.
//!
//! Reads (SELECT/COUNT) take a shared lock on their table, so concurrent
//! readers proceed in parallel — the engine-level property that keeps the
//! paper's PostgreSQL degradation at ~2× where single-threaded Redis hits 5×.

use crate::config::{RelConfig, WalStorage};
use crate::error::{RelError, RelResult};
use crate::querylog::{LogStorage, QueryLog};
use crate::schema::Schema;
use crate::statement::{Statement, StatementResult};
use crate::table::Table;
use crate::wal::{self, Wal};
use clock::SharedClock;
use crypto::channel::SecureChannel;
use crypto::Volume;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Transit {
    client: crypto::channel::DuplexChannel,
    server: crypto::channel::DuplexChannel,
}

/// Execution counters.
#[derive(Debug, Default)]
pub struct RelStats {
    pub statements: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    /// The database's **persistence generation**: committed write
    /// statements (= the WAL position when a WAL is attached, counted
    /// whether or not one is). [`Database::recover`] reproduces the exact
    /// value the live database had when the log was written — see
    /// [`Database::mutation_generation`].
    pub mutations: AtomicU64,
}

/// The database.
pub struct Database {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    wal: Option<Mutex<Wal>>,
    qlog: Option<Arc<QueryLog>>,
    transit: Option<Mutex<Transit>>,
    config: RelConfig,
    clock: SharedClock,
    stats: RelStats,
}

impl Database {
    /// Open a database against the wall clock.
    pub fn open(config: RelConfig) -> RelResult<Arc<Database>> {
        Self::open_with_clock(config, clock::wall())
    }

    /// Open against an explicit clock.
    pub fn open_with_clock(config: RelConfig, clk: SharedClock) -> RelResult<Arc<Database>> {
        let volume = config
            .encrypt_at_rest
            .then(|| Volume::new(&config.cipher_seed));
        let wal = Wal::open(&config.wal, config.fsync, volume, clk.clone())?.map(Mutex::new);
        let qlog = if config.log_statements {
            Some(QueryLog::open(&LogStorage::Memory, clk.clone())?)
        } else {
            None
        };
        let transit = config.encrypt_transit.then(|| {
            let (client, server) = SecureChannel::pair(&config.cipher_seed);
            Mutex::new(Transit { client, server })
        });
        Ok(Arc::new(Database {
            tables: RwLock::new(HashMap::new()),
            wal,
            qlog,
            transit,
            config,
            clock: clk,
            stats: RelStats::default(),
        }))
    }

    pub fn config(&self) -> &RelConfig {
        &self.config
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    pub fn stats(&self) -> &RelStats {
        &self.stats
    }

    /// The query log, if statement logging is enabled.
    pub fn query_log(&self) -> Option<&Arc<QueryLog>> {
        self.qlog.as_ref()
    }

    /// Handle to a table (for daemons and tests).
    pub fn table(&self, name: &str) -> RelResult<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RelError::NoSuchTable(name.to_string()))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Approximate bytes across all tables (heap + indices): the Table 3
    /// numerator.
    pub fn total_size_bytes(&self) -> usize {
        self.tables
            .read()
            .values()
            .map(|t| t.read().size_bytes())
            .sum()
    }

    /// Parse and execute one SQL statement (see [`crate::sql`] for the
    /// supported dialect).
    pub fn execute_sql(&self, sql: &str) -> RelResult<StatementResult> {
        let stmt = crate::sql::parse(sql)?;
        self.execute(&stmt)
    }

    /// Execute one statement through the full pipeline.
    pub fn execute(&self, stmt: &Statement) -> RelResult<StatementResult> {
        // Transit boundary, request direction.
        if let Some(transit) = &self.transit {
            let wire = stmt.encode();
            let mut t = transit.lock();
            let sealed = t.client.seal(&wire);
            let opened = t
                .server
                .open(&sealed)
                .map_err(|e| RelError::Corrupt(format!("transit: {e}")))?;
            debug_assert_eq!(opened, wire);
        }

        let result = self.dispatch(stmt)?;

        if stmt.is_write() {
            if let Some(wal) = &self.wal {
                wal.lock().append(stmt)?;
            }
        }
        if let Some(qlog) = &self.qlog {
            if stmt.is_write() || self.config.log_reads {
                qlog.record(stmt, &result)?;
            }
        }

        // Transit boundary, response direction.
        if let Some(transit) = &self.transit {
            let wire = result.encode();
            let mut t = transit.lock();
            let sealed = t.server.seal(&wire);
            let opened = t
                .client
                .open(&sealed)
                .map_err(|e| RelError::Corrupt(format!("transit: {e}")))?;
            debug_assert_eq!(opened, wire);
        }

        self.stats.statements.fetch_add(1, Ordering::Relaxed);
        if stmt.is_write() {
            self.stats.writes.fetch_add(1, Ordering::Relaxed);
            self.stats.mutations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(result)
    }

    fn dispatch(&self, stmt: &Statement) -> RelResult<StatementResult> {
        match stmt {
            Statement::CreateTable { table, columns, pk } => {
                let mut tables = self.tables.write();
                if tables.contains_key(table) {
                    return Err(RelError::TableExists(table.clone()));
                }
                let schema =
                    Schema::new(columns.iter().map(|(n, t)| (n.as_str(), *t)).collect(), pk)?;
                tables.insert(
                    table.clone(),
                    Arc::new(RwLock::new(Table::new(table.clone(), schema))),
                );
                Ok(StatementResult::Done)
            }
            Statement::CreateIndex {
                table,
                index,
                column,
                inverted,
            } => {
                let t = self.table(table)?;
                t.write().create_index(index, column, *inverted)?;
                Ok(StatementResult::Done)
            }
            Statement::DropIndex { table, index } => {
                let t = self.table(table)?;
                t.write().drop_index(index)?;
                Ok(StatementResult::Done)
            }
            Statement::Insert { table, row } => {
                let t = self.table(table)?;
                t.write().insert(row.clone())?;
                Ok(StatementResult::Inserted)
            }
            Statement::Select { table, pred } => {
                let t = self.table(table)?;
                // Shared lock: concurrent SELECTs proceed in parallel.
                let rows = t.read().select(pred)?;
                Ok(StatementResult::Rows(rows))
            }
            Statement::SelectRange {
                table,
                column,
                start,
                limit,
            } => {
                let t = self.table(table)?;
                let rows = t.read().select_range(column, start, *limit)?;
                Ok(StatementResult::Rows(rows))
            }
            Statement::Count { table, pred } => {
                let t = self.table(table)?;
                let n = t.read().count(pred)?;
                Ok(StatementResult::Count(n))
            }
            Statement::Update {
                table,
                pred,
                assignments,
            } => {
                let t = self.table(table)?;
                let n = t.write().update_where(pred, assignments)?;
                Ok(StatementResult::Updated(n))
            }
            Statement::Delete { table, pred } => {
                let t = self.table(table)?;
                let rows = t.write().delete_where(pred)?;
                Ok(StatementResult::Deleted(rows))
            }
        }
    }

    /// Force a WAL flush/fsync.
    pub fn sync_wal(&self) -> RelResult<()> {
        if let Some(wal) = &self.wal {
            wal.lock().sync()?;
        }
        Ok(())
    }

    /// Bytes appended to the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.lock().bytes)
    }

    /// Handle to the in-memory WAL buffer (memory-backed only).
    pub fn wal_memory_buffer(&self) -> Option<wal::MemBuffer> {
        self.wal.as_ref().and_then(|w| w.lock().memory_buffer())
    }

    /// Rebuild a database from a WAL byte stream (crash recovery).
    pub fn recover(config: RelConfig, data: &[u8], clk: SharedClock) -> RelResult<Arc<Database>> {
        let volume = config
            .encrypt_at_rest
            .then(|| Volume::new(&config.cipher_seed));
        let statements = wal::decode_stream(data, volume.as_ref())?;
        let db = Self::open_with_clock(
            RelConfig {
                wal: WalStorage::Disabled,
                encrypt_transit: false,
                log_statements: false,
                ..config
            },
            clk,
        )?;
        for stmt in &statements {
            if stmt.is_write() {
                db.dispatch(stmt)?;
                // Keep the persistence generation replay-stable: the
                // recovered database lands on the exact WAL position the
                // live one had when the log was written.
                db.stats.mutations.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(db)
    }

    /// The persistence generation: committed write statements, which a
    /// [`Self::recover`] of this database's WAL reproduces exactly. A
    /// write the WAL never captured (torn tail) recovers to a smaller
    /// value; a write behind any engine advances it — either way an
    /// engine-side index snapshot stamped with a different value is
    /// visibly stale.
    pub fn mutation_generation(&self) -> u64 {
        self.stats.mutations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;
    use crate::predicate::Predicate;
    use crate::schema::ColumnType;

    fn create_stmt() -> Statement {
        Statement::CreateTable {
            table: "personal_data".into(),
            columns: vec![
                ("key".into(), ColumnType::Text),
                ("data".into(), ColumnType::Text),
                ("usr".into(), ColumnType::Text),
                ("expiry".into(), ColumnType::Timestamp),
            ],
            pk: "key".into(),
        }
    }

    fn insert_stmt(key: &str, usr: &str, expiry: u64) -> Statement {
        Statement::Insert {
            table: "personal_data".into(),
            row: vec![
                Datum::Text(key.into()),
                Datum::Text(format!("data-{key}")),
                Datum::Text(usr.into()),
                Datum::Timestamp(expiry),
            ],
        }
    }

    #[test]
    fn create_insert_select() {
        let db = Database::open(RelConfig::default()).unwrap();
        db.execute(&create_stmt()).unwrap();
        for i in 0..10 {
            db.execute(&insert_stmt(&format!("k{i}"), "neo", 100))
                .unwrap();
        }
        let result = db
            .execute(&Statement::Select {
                table: "personal_data".into(),
                pred: Predicate::eq_text("usr", "neo"),
            })
            .unwrap();
        assert_eq!(result.rows().len(), 10);
        assert_eq!(db.stats().writes.load(Ordering::Relaxed), 11);
        assert_eq!(db.stats().reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Database::open(RelConfig::default()).unwrap();
        db.execute(&create_stmt()).unwrap();
        assert!(matches!(
            db.execute(&create_stmt()),
            Err(RelError::TableExists(_))
        ));
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::open(RelConfig::default()).unwrap();
        assert!(matches!(
            db.execute(&Statement::Select {
                table: "ghost".into(),
                pred: Predicate::True
            }),
            Err(RelError::NoSuchTable(_))
        ));
    }

    #[test]
    fn wal_recovery_rebuilds_state() {
        let config = RelConfig {
            wal: WalStorage::Memory,
            ..Default::default()
        };
        let db = Database::open(config.clone()).unwrap();
        db.execute(&create_stmt()).unwrap();
        for i in 0..20 {
            db.execute(&insert_stmt(&format!("k{i}"), &format!("u{}", i % 4), i))
                .unwrap();
        }
        db.execute(&Statement::Delete {
            table: "personal_data".into(),
            pred: Predicate::eq_text("usr", "u0"),
        })
        .unwrap();
        db.execute(&Statement::Update {
            table: "personal_data".into(),
            pred: Predicate::eq_text("usr", "u1"),
            assignments: vec![("data".into(), Datum::Text("redacted".into()))],
        })
        .unwrap();
        let raw = db.wal_memory_buffer().unwrap().lock().clone();

        let recovered = Database::recover(config, &raw, clock::wall()).unwrap();
        let t = recovered.table("personal_data").unwrap();
        assert_eq!(t.read().row_count(), 15);
        let redacted = recovered
            .execute(&Statement::Select {
                table: "personal_data".into(),
                pred: Predicate::eq_text("data", "redacted"),
            })
            .unwrap();
        assert_eq!(redacted.rows().len(), 5);
        // The persistence generation is replay-stable: CREATE TABLE + 20
        // inserts + delete + update = 23 writes on both sides (reads on
        // the recovered db above do not count).
        assert_eq!(db.mutation_generation(), 23);
        assert_eq!(recovered.mutation_generation(), 23);
    }

    #[test]
    fn encrypted_wal_recovery() {
        let config = RelConfig {
            wal: WalStorage::Memory,
            encrypt_at_rest: true,
            ..Default::default()
        };
        let db = Database::open(config.clone()).unwrap();
        db.execute(&create_stmt()).unwrap();
        db.execute(&insert_stmt("secret-key", "trinity", 0))
            .unwrap();
        let raw = db.wal_memory_buffer().unwrap().lock().clone();
        assert!(
            !raw.windows(7).any(|w| w == b"trinity"),
            "WAL must be sealed"
        );
        let recovered = Database::recover(config, &raw, clock::wall()).unwrap();
        assert_eq!(
            recovered.table("personal_data").unwrap().read().row_count(),
            1
        );
    }

    #[test]
    fn transit_encryption_preserves_semantics() {
        let config = RelConfig {
            encrypt_transit: true,
            ..Default::default()
        };
        let db = Database::open(config).unwrap();
        db.execute(&create_stmt()).unwrap();
        db.execute(&insert_stmt("k", "neo", 5)).unwrap();
        let rows = db
            .execute(&Statement::Select {
                table: "personal_data".into(),
                pred: Predicate::True,
            })
            .unwrap();
        assert_eq!(rows.rows().len(), 1);
    }

    #[test]
    fn query_log_records_per_config() {
        let config = RelConfig {
            log_statements: true,
            log_reads: false,
            ..Default::default()
        };
        let db = Database::open(config).unwrap();
        db.execute(&create_stmt()).unwrap();
        db.execute(&insert_stmt("k", "neo", 5)).unwrap();
        db.execute(&Statement::Count {
            table: "personal_data".into(),
            pred: Predicate::True,
        })
        .unwrap();
        // Two writes logged, the read not.
        assert_eq!(db.query_log().unwrap().len(), 2);

        let config = RelConfig {
            log_statements: true,
            log_reads: true,
            ..Default::default()
        };
        let db = Database::open(config).unwrap();
        db.execute(&create_stmt()).unwrap();
        db.execute(&Statement::Count {
            table: "personal_data".into(),
            pred: Predicate::True,
        })
        .unwrap();
        assert_eq!(
            db.query_log().unwrap().len(),
            2,
            "reads logged in GDPR mode"
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let db = Database::open(RelConfig::default()).unwrap();
        db.execute(&create_stmt()).unwrap();
        for i in 0..100 {
            db.execute(&insert_stmt(&format!("seed{i}"), "u", 0))
                .unwrap();
        }
        let mut handles = vec![];
        for t in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    db.execute(&insert_stmt(&format!("t{t}-k{i}"), "w", 0))
                        .unwrap();
                    db.execute(&Statement::Count {
                        table: "personal_data".into(),
                        pred: Predicate::eq_text("usr", "w"),
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = db.table("personal_data").unwrap();
        assert_eq!(t.read().row_count(), 100 + 400);
    }

    #[test]
    fn size_accounting_via_database() {
        let db = Database::open(RelConfig::default()).unwrap();
        db.execute(&create_stmt()).unwrap();
        let empty = db.total_size_bytes();
        for i in 0..50 {
            db.execute(&insert_stmt(&format!("k{i}"), "neo", 1))
                .unwrap();
        }
        assert!(db.total_size_bytes() > empty);
    }
}
