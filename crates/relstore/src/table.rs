//! A table: schema + heap + indices + a minimal planner.
//!
//! The planner picks at most one index per statement — an equality or range
//! probe — and evaluates the full predicate as a residual filter over the
//! candidate rows, falling back to a sequential scan when no index applies.
//! This is deliberately the simplest planner that exhibits the behaviour the
//! paper measures: metadata queries are O(n) without secondary indices and
//! probe-shaped with them, while every write pays maintenance on each index
//! it touches (Figure 3b).

use crate::datum::Datum;
use crate::error::{RelError, RelResult};
use crate::heap::{Heap, RowId};
use crate::index::Index;
use crate::predicate::Predicate;
use crate::schema::Schema;

use std::sync::atomic::{AtomicU64, Ordering};

/// Scan-type counters, exposed so tests and benches can verify plans.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    pub index_scans: u64,
    pub seq_scans: u64,
}

#[derive(Debug, Default)]
struct PlanCounters {
    index_scans: AtomicU64,
    seq_scans: AtomicU64,
}

/// A table with its indices.
pub struct Table {
    name: String,
    schema: Schema,
    heap: Heap,
    indices: Vec<Index>,
    /// Atomic so that read statements stay `&self` (and therefore run under
    /// a shared lock in [`crate::Database`]).
    plan_counters: PlanCounters,
}

enum Plan {
    /// Probe one index with one key, then filter.
    IndexEq { index: usize, key: Datum },
    /// Range-probe one index, then filter.
    IndexRange { index: usize, lo: Datum, hi: Datum },
    /// Walk the heap.
    Seq,
}

impl Table {
    /// Create a table; a unique primary-key index (`<name>_pkey`) is built
    /// automatically.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let pk_index = Index::new(format!("{name}_pkey"), schema.pk_index(), true, false);
        Table {
            name,
            schema,
            heap: Heap::new(),
            indices: vec![pk_index],
            plan_counters: PlanCounters::default(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.heap.len()
    }

    pub fn plan_stats(&self) -> PlanStats {
        PlanStats {
            index_scans: self.plan_counters.index_scans.load(Ordering::Relaxed),
            seq_scans: self.plan_counters.seq_scans.load(Ordering::Relaxed),
        }
    }

    /// Names of all indices (the pkey first).
    pub fn index_names(&self) -> Vec<&str> {
        self.indices.iter().map(|i| i.name()).collect()
    }

    /// Total approximate bytes: heap rows plus all index structures — the
    /// numerator of Table 3's space-overhead ratio.
    pub fn size_bytes(&self) -> usize {
        self.heap.bytes() + self.indices.iter().map(Index::size_bytes).sum::<usize>()
    }

    /// Bytes held in indices alone.
    pub fn index_bytes(&self) -> usize {
        self.indices.iter().map(Index::size_bytes).sum()
    }

    /// Create a secondary index on `column`. `inverted` must be used for
    /// `text[]` columns. Backfills from existing rows.
    pub fn create_index(
        &mut self,
        index_name: &str,
        column: &str,
        inverted: bool,
    ) -> RelResult<()> {
        if self.indices.iter().any(|i| i.name() == index_name) {
            return Err(RelError::IndexExists(index_name.to_string()));
        }
        let col = self.schema.column_index(column)?;
        let mut index = Index::new(index_name, col, false, inverted);
        for (id, row) in self.heap.scan() {
            index.insert(row, id);
        }
        self.indices.push(index);
        Ok(())
    }

    /// Drop a secondary index. The primary key index cannot be dropped.
    pub fn drop_index(&mut self, index_name: &str) -> RelResult<()> {
        let pos = self
            .indices
            .iter()
            .position(|i| i.name() == index_name)
            .ok_or_else(|| RelError::NoSuchColumn(index_name.to_string()))?;
        if pos == 0 {
            return Err(RelError::Wal("cannot drop primary key index".into()));
        }
        self.indices.remove(pos);
        Ok(())
    }

    /// Insert a row.
    pub fn insert(&mut self, row: Vec<Datum>) -> RelResult<RowId> {
        self.schema.check_row(&row)?;
        for index in &self.indices {
            index.check_unique(&row)?;
        }
        let id = self.heap.insert(row);
        let row_ref = self.heap.get(id).expect("just inserted");
        // Indices borrow the row immutably; clone once to appease both.
        let row_copy = row_ref.to_vec();
        for index in &mut self.indices {
            index.insert(&row_copy, id);
        }
        Ok(id)
    }

    /// Choose an access path for `pred`.
    fn plan(&self, pred: &Predicate) -> Plan {
        // Collect top-level conjuncts (a bare predicate is a 1-conjunct AND).
        let conjuncts: Vec<&Predicate> = match pred {
            Predicate::And(ps) => ps.iter().collect(),
            other => vec![other],
        };
        // Prefer equality probes (most selective), then ranges.
        for c in &conjuncts {
            match c {
                Predicate::Eq(col, value) => {
                    if let Some(i) = self.find_index(col, false) {
                        return Plan::IndexEq {
                            index: i,
                            key: value.clone(),
                        };
                    }
                }
                Predicate::Contains(col, value) => {
                    if let Some(i) = self.find_index(col, true) {
                        return Plan::IndexEq {
                            index: i,
                            key: Datum::Text(value.clone()),
                        };
                    }
                }
                _ => {}
            }
        }
        for c in &conjuncts {
            let (col, lo, hi) = match c {
                Predicate::Lt(col, v) | Predicate::Le(col, v) => (col, range_min(v), v.clone()),
                Predicate::Gt(col, v) | Predicate::Ge(col, v) => (col, v.clone(), range_max(v)),
                _ => continue,
            };
            if let Some(i) = self.find_index(col, false) {
                return Plan::IndexRange { index: i, lo, hi };
            }
        }
        Plan::Seq
    }

    fn find_index(&self, column: &str, inverted: bool) -> Option<usize> {
        let col = self.schema.column_index(column).ok()?;
        self.indices
            .iter()
            .position(|i| i.column() == col && i.is_inverted() == inverted)
    }

    /// Row ids matching `pred`, via the planned access path.
    fn matching_ids(&self, pred: &Predicate) -> RelResult<Vec<RowId>> {
        pred.check(&self.schema)?;
        let candidates: Vec<RowId> = match self.plan(pred) {
            Plan::IndexEq { index, key } => {
                self.plan_counters
                    .index_scans
                    .fetch_add(1, Ordering::Relaxed);
                self.indices[index].lookup(&key)
            }
            Plan::IndexRange { index, lo, hi } => {
                self.plan_counters
                    .index_scans
                    .fetch_add(1, Ordering::Relaxed);
                self.indices[index].lookup_range(&lo, &hi)
            }
            Plan::Seq => {
                self.plan_counters.seq_scans.fetch_add(1, Ordering::Relaxed);
                self.heap.scan().map(|(id, _)| id).collect()
            }
        };
        let mut out = Vec::new();
        for id in candidates {
            let row = self.heap.get(id).expect("index points at live row");
            if pred.eval(&self.schema, row)? {
                out.push(id);
            }
        }
        Ok(out)
    }

    /// Rows matching `pred`, cloned out. `&self`: reads run under a shared lock.
    pub fn select(&self, pred: &Predicate) -> RelResult<Vec<Vec<Datum>>> {
        let ids = self.matching_ids(pred)?;
        Ok(ids
            .into_iter()
            .map(|id| self.heap.get(id).expect("live").to_vec())
            .collect())
    }

    /// Count rows matching `pred` without cloning them.
    pub fn count(&self, pred: &Predicate) -> RelResult<usize> {
        Ok(self.matching_ids(pred)?.len())
    }

    /// Up to `limit` rows with `column >= start`, in column order — the
    /// `SELECT ... WHERE col >= $1 ORDER BY col LIMIT n` shape YCSB's scan
    /// workload issues. Requires an index on `column` (the primary key
    /// always has one); falls back to an ordered heap scan otherwise.
    pub fn select_range(
        &self,
        column: &str,
        start: &Datum,
        limit: usize,
    ) -> RelResult<Vec<Vec<Datum>>> {
        let col = self.schema.column_index(column)?;
        let candidates: Vec<RowId> = match self
            .indices
            .iter()
            .find(|i| i.column() == col && !i.is_inverted())
        {
            Some(index) => {
                self.plan_counters
                    .index_scans
                    .fetch_add(1, Ordering::Relaxed);
                index.lookup_range_limit(start, &range_max(start), limit)
            }
            None => {
                self.plan_counters.seq_scans.fetch_add(1, Ordering::Relaxed);
                // Ordered fallback: collect matching rows then sort by the
                // column (an explicit sort node, as a planner would add).
                let mut ids: Vec<RowId> = self
                    .heap
                    .scan()
                    .filter(|(_, row)| {
                        matches!(
                            row[col].sql_cmp(start),
                            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                        )
                    })
                    .map(|(id, _)| id)
                    .collect();
                ids.sort_by(|a, b| {
                    let ra = &self.heap.get(*a).expect("live")[col];
                    let rb = &self.heap.get(*b).expect("live")[col];
                    ra.sql_cmp(rb).unwrap_or(std::cmp::Ordering::Equal)
                });
                ids
            }
        };
        Ok(candidates
            .into_iter()
            .take(limit)
            .map(|id| self.heap.get(id).expect("live").to_vec())
            .collect())
    }

    /// Update matching rows by assigning `assignments`. Returns rows changed.
    pub fn update_where(
        &mut self,
        pred: &Predicate,
        assignments: &[(String, Datum)],
    ) -> RelResult<usize> {
        // Resolve assignment columns once.
        let mut resolved = Vec::with_capacity(assignments.len());
        for (col, value) in assignments {
            let idx = self.schema.column_index(col)?;
            if !self.schema.columns()[idx].ty.admits(value) {
                return Err(RelError::TypeMismatch {
                    column: col.clone(),
                    expected: self.schema.columns()[idx].ty.name().to_string(),
                    got: value.type_name().to_string(),
                });
            }
            resolved.push((idx, value.clone()));
        }
        let ids = self.matching_ids(pred)?;
        for &id in &ids {
            let old = self.heap.get(id).expect("live").to_vec();
            let mut new = old.clone();
            for (idx, value) in &resolved {
                new[*idx] = value.clone();
            }
            // Unique checks for changed keys on unique indices.
            for index in &self.indices {
                if index.is_unique() && old[index.column()] != new[index.column()] {
                    index.check_unique(&new)?;
                }
            }
            for index in &mut self.indices {
                index.remove(&old, id);
                index.insert(&new, id);
            }
            self.heap.update(id, new);
        }
        Ok(ids.len())
    }

    /// Delete matching rows. Returns the deleted rows (callers such as the
    /// GDPR `verify-deletion` flow need to know exactly what went away).
    pub fn delete_where(&mut self, pred: &Predicate) -> RelResult<Vec<Vec<Datum>>> {
        let ids = self.matching_ids(pred)?;
        let mut deleted = Vec::with_capacity(ids.len());
        for id in ids {
            let row = self.heap.delete(id).expect("live row");
            for index in &mut self.indices {
                index.remove(&row, id);
            }
            deleted.push(row);
        }
        Ok(deleted)
    }
}

/// Smallest datum of the same family as `v`, for open-ended ranges.
fn range_min(v: &Datum) -> Datum {
    match v {
        Datum::Int(_) => Datum::Int(i64::MIN),
        Datum::Float(_) => Datum::Float(f64::NEG_INFINITY),
        Datum::Text(_) => Datum::Text(String::new()),
        Datum::Timestamp(_) => Datum::Timestamp(0),
        other => other.clone(),
    }
}

/// Largest datum of the same family as `v`.
fn range_max(v: &Datum) -> Datum {
    match v {
        Datum::Int(_) => Datum::Int(i64::MAX),
        Datum::Float(_) => Datum::Float(f64::INFINITY),
        Datum::Text(_) => Datum::Text("\u{10FFFF}".repeat(8)),
        Datum::Timestamp(_) => Datum::Timestamp(u64::MAX),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn records_schema() -> Schema {
        Schema::new(
            vec![
                ("key", ColumnType::Text),
                ("data", ColumnType::Text),
                ("usr", ColumnType::Text),
                ("purposes", ColumnType::TextArray),
                ("expiry", ColumnType::Timestamp),
            ],
            "key",
        )
        .unwrap()
    }

    fn record(key: &str, usr: &str, purposes: &[&str], expiry: u64) -> Vec<Datum> {
        vec![
            Datum::Text(key.into()),
            Datum::Text(format!("data-{key}")),
            Datum::Text(usr.into()),
            Datum::TextArray(purposes.iter().map(|s| s.to_string()).collect()),
            Datum::Timestamp(expiry),
        ]
    }

    fn populated() -> Table {
        let mut t = Table::new("personal_data", records_schema());
        for i in 0..100 {
            let usr = format!("user{}", i % 10);
            let purposes: Vec<&str> = if i % 2 == 0 {
                vec!["ads"]
            } else {
                vec!["2fa", "analytics"]
            };
            t.insert(record(&format!("k{i:03}"), &usr, &purposes, 1000 + i))
                .unwrap();
        }
        t
    }

    #[test]
    fn insert_and_pk_lookup_uses_index() {
        let t = populated();
        let rows = t.select(&Predicate::eq_text("key", "k042")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], Datum::Text("user2".into()));
        assert_eq!(t.plan_stats().index_scans, 1);
        assert_eq!(t.plan_stats().seq_scans, 0);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = populated();
        let err = t.insert(record("k000", "x", &[], 0)).unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        assert_eq!(t.row_count(), 100);
    }

    #[test]
    fn non_indexed_query_seq_scans() {
        let t = populated();
        let rows = t.select(&Predicate::eq_text("usr", "user3")).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(t.plan_stats().seq_scans, 1);
    }

    #[test]
    fn secondary_index_converts_to_index_scan() {
        let mut t = populated();
        t.create_index("usr_idx", "usr", false).unwrap();
        let rows = t.select(&Predicate::eq_text("usr", "user3")).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(t.plan_stats().index_scans, 1);
        assert_eq!(t.plan_stats().seq_scans, 0);
    }

    #[test]
    fn inverted_index_serves_contains() {
        let mut t = populated();
        t.create_index("purposes_idx", "purposes", true).unwrap();
        let rows = t.select(&Predicate::contains("purposes", "ads")).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(t.plan_stats().index_scans, 1);
        // Without the inverted index a Contains would have seq-scanned.
        let rows = t
            .select(&Predicate::contains("purposes", "analytics"))
            .unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn range_scan_on_timestamp_index() {
        let mut t = populated();
        t.create_index("expiry_idx", "expiry", false).unwrap();
        let pred = Predicate::Le("expiry".into(), Datum::Timestamp(1009));
        let rows = t.select(&pred).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(t.plan_stats().index_scans, 1);
    }

    #[test]
    fn conjunction_uses_index_plus_residual() {
        let mut t = populated();
        t.create_index("usr_idx", "usr", false).unwrap();
        // user3 rows are i = 3, 13, ..., 93 (all odd) → all carry "2fa";
        // user2 rows are all even → none do.
        let pred = Predicate::And(vec![
            Predicate::eq_text("usr", "user3"),
            Predicate::contains("purposes", "2fa"),
        ]);
        let rows = t.select(&pred).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(t.plan_stats().index_scans, 1);
        let pred = Predicate::And(vec![
            Predicate::eq_text("usr", "user2"),
            Predicate::contains("purposes", "2fa"),
        ]);
        assert!(
            t.select(&pred).unwrap().is_empty(),
            "residual filter must apply"
        );
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = populated();
        t.create_index("usr_idx", "usr", false).unwrap();
        let n = t
            .update_where(
                &Predicate::eq_text("usr", "user3"),
                &[("usr".into(), Datum::Text("renamed".into()))],
            )
            .unwrap();
        assert_eq!(n, 10);
        assert!(t
            .select(&Predicate::eq_text("usr", "user3"))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.select(&Predicate::eq_text("usr", "renamed"))
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn update_rejects_type_mismatch() {
        let mut t = populated();
        let err = t
            .update_where(&Predicate::True, &[("usr".into(), Datum::Int(5))])
            .unwrap_err();
        assert!(matches!(err, RelError::TypeMismatch { .. }));
    }

    #[test]
    fn update_pk_checks_uniqueness() {
        let mut t = populated();
        let err = t
            .update_where(
                &Predicate::eq_text("key", "k001"),
                &[("key".into(), Datum::Text("k000".into()))],
            )
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        // Renaming to a fresh key works.
        let n = t
            .update_where(
                &Predicate::eq_text("key", "k001"),
                &[("key".into(), Datum::Text("fresh".into()))],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            t.select(&Predicate::eq_text("key", "fresh")).unwrap().len(),
            1
        );
    }

    #[test]
    fn delete_where_removes_rows_and_index_entries() {
        let mut t = populated();
        t.create_index("usr_idx", "usr", false).unwrap();
        let deleted = t.delete_where(&Predicate::eq_text("usr", "user3")).unwrap();
        assert_eq!(deleted.len(), 10);
        assert_eq!(t.row_count(), 90);
        assert!(t
            .select(&Predicate::eq_text("usr", "user3"))
            .unwrap()
            .is_empty());
        // Deleted keys can be re-inserted (pkey entries must be gone).
        t.insert(record("k003", "user3", &[], 0)).unwrap();
    }

    #[test]
    fn delete_by_expiry_range() {
        let mut t = populated();
        let pred = Predicate::Le("expiry".into(), Datum::Timestamp(1049));
        let deleted = t.delete_where(&pred).unwrap();
        assert_eq!(deleted.len(), 50);
        assert_eq!(t.row_count(), 50);
    }

    #[test]
    fn count_matches_select_len() {
        let t = populated();
        assert_eq!(
            t.count(&Predicate::contains("purposes", "ads")).unwrap(),
            t.select(&Predicate::contains("purposes", "ads"))
                .unwrap()
                .len()
        );
        assert_eq!(t.count(&Predicate::True).unwrap(), 100);
    }

    #[test]
    fn size_grows_with_each_index() {
        let mut t = populated();
        let base = t.size_bytes();
        t.create_index("usr_idx", "usr", false).unwrap();
        let one = t.size_bytes();
        assert!(one > base);
        t.create_index("purposes_idx", "purposes", true).unwrap();
        assert!(t.size_bytes() > one);
        assert!(t.index_bytes() > 0);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = populated();
        t.create_index("usr_idx", "usr", false).unwrap();
        assert!(matches!(
            t.create_index("usr_idx", "usr", false),
            Err(RelError::IndexExists(_))
        ));
    }

    #[test]
    fn drop_index_restores_seq_scan() {
        let mut t = populated();
        t.create_index("usr_idx", "usr", false).unwrap();
        t.drop_index("usr_idx").unwrap();
        t.select(&Predicate::eq_text("usr", "user1")).unwrap();
        assert_eq!(t.plan_stats().seq_scans, 1);
        assert!(t.drop_index("personal_data_pkey").is_err());
    }
}
