//! Datums: the typed values stored in table cells.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    /// Milliseconds since the engine clock's epoch — the expiry column type.
    Timestamp(u64),
    /// PostgreSQL `text[]` — the representation for multi-valued GDPR
    /// metadata (purposes, objections, sharing, decisions).
    TextArray(Vec<String>),
}

impl Datum {
    /// Type name for error messages, matching the [`crate::schema::ColumnType`] names.
    pub fn type_name(&self) -> &'static str {
        match self {
            Datum::Null => "null",
            Datum::Bool(_) => "bool",
            Datum::Int(_) => "int",
            Datum::Float(_) => "float",
            Datum::Text(_) => "text",
            Datum::Timestamp(_) => "timestamp",
            Datum::TextArray(_) => "text[]",
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_timestamp(&self) -> Option<u64> {
        match self {
            Datum::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    pub fn as_text_array(&self) -> Option<&[String]> {
        match self {
            Datum::TextArray(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// SQL-style comparison: NULL compares as unknown (`None`); values of
    /// different types do not compare.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Float(a), Datum::Float(b)) => a.partial_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).partial_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            (Datum::Timestamp(a), Datum::Timestamp(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Approximate in-memory size, for the space-overhead metric.
    pub fn size_bytes(&self) -> usize {
        match self {
            Datum::Null => 1,
            Datum::Bool(_) => 1,
            Datum::Int(_) | Datum::Float(_) | Datum::Timestamp(_) => 8,
            Datum::Text(s) => 24 + s.len(),
            Datum::TextArray(v) => 24 + v.iter().map(|s| 24 + s.len()).sum::<usize>(),
        }
    }

    // --- binary encoding for the WAL ---

    /// Append a self-describing binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Datum::Null => out.push(0),
            Datum::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Datum::Int(n) => {
                out.push(2);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Datum::Float(x) => {
                out.push(3);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Datum::Text(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Datum::Timestamp(t) => {
                out.push(5);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Datum::TextArray(v) => {
                out.push(6);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for s in v {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }

    /// Decode one datum from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Datum, String> {
        let tag = *buf.get(*pos).ok_or("truncated datum tag")?;
        *pos += 1;
        let take = |buf: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u8>, String> {
            if buf.len() < *pos + n {
                return Err("truncated datum payload".into());
            }
            let bytes = buf[*pos..*pos + n].to_vec();
            *pos += n;
            Ok(bytes)
        };
        let take_u32 = |buf: &[u8], pos: &mut usize| -> Result<u32, String> {
            let bytes = take(buf, pos, 4)?;
            Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
        };
        Ok(match tag {
            0 => Datum::Null,
            1 => Datum::Bool(take(buf, pos, 1)?[0] != 0),
            2 => Datum::Int(i64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
            3 => Datum::Float(f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
            4 => {
                let len = take_u32(buf, pos)? as usize;
                Datum::Text(String::from_utf8(take(buf, pos, len)?).map_err(|e| e.to_string())?)
            }
            5 => Datum::Timestamp(u64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
            6 => {
                let n = take_u32(buf, pos)? as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let len = take_u32(buf, pos)? as usize;
                    items.push(String::from_utf8(take(buf, pos, len)?).map_err(|e| e.to_string())?);
                }
                Datum::TextArray(items)
            }
            other => return Err(format!("unknown datum tag {other}")),
        })
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(n) => write!(f, "{n}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => write!(f, "'{s}'"),
            Datum::Timestamp(t) => write!(f, "ts:{t}"),
            Datum::TextArray(v) => {
                write!(f, "{{")?;
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A key that totally orders datums for B+Tree indexing. NULLs sort last
/// (as in PostgreSQL's default), mixed types sort by type tag.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Datum);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Bool(_) => 0,
                Datum::Int(_) => 1,
                Datum::Float(_) => 1, // numeric family compares cross-type
                Datum::Text(_) => 2,
                Datum::Timestamp(_) => 3,
                Datum::TextArray(_) => 4,
                Datum::Null => 5,
            }
        }
        match self.0.sql_cmp(&other.0) {
            Some(ord) => ord,
            None => match (&self.0, &other.0) {
                (Datum::Null, Datum::Null) => Ordering::Equal,
                (Datum::TextArray(a), Datum::TextArray(b)) => a.cmp(b),
                (a, b) => rank(a).cmp(&rank(b)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_same_types() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Datum::Text("a".into()).sql_cmp(&Datum::Text("a".into())),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Timestamp(5).sql_cmp(&Datum::Timestamp(4)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_mixed_types_is_none() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Text("1".into())), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let samples = vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Int(-42),
            Datum::Float(3.25),
            Datum::Text("personal data: 123-456".into()),
            Datum::Text(String::new()),
            Datum::Timestamp(1_700_000_000_000),
            Datum::TextArray(vec!["ads".into(), "2fa".into()]),
            Datum::TextArray(vec![]),
        ];
        let mut buf = Vec::new();
        for d in &samples {
            d.encode(&mut buf);
        }
        let mut pos = 0;
        for d in &samples {
            let decoded = Datum::decode(&buf, &mut pos).unwrap();
            assert_eq!(&decoded, d);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Datum::decode(&[], &mut 0).is_err());
        assert!(Datum::decode(&[99], &mut 0).is_err());
        let mut buf = Vec::new();
        Datum::Text("hello".into()).encode(&mut buf);
        assert!(Datum::decode(&buf[..buf.len() - 1], &mut 0).is_err());
    }

    #[test]
    fn index_key_total_order() {
        let mut keys = [
            IndexKey(Datum::Null),
            IndexKey(Datum::Text("b".into())),
            IndexKey(Datum::Int(5)),
            IndexKey(Datum::Text("a".into())),
            IndexKey(Datum::Int(1)),
        ];
        keys.sort();
        // Ints before texts before null.
        assert_eq!(keys[0].0, Datum::Int(1));
        assert_eq!(keys[1].0, Datum::Int(5));
        assert_eq!(keys[2].0, Datum::Text("a".into()));
        assert_eq!(keys[3].0, Datum::Text("b".into()));
        assert_eq!(keys[4].0, Datum::Null);
    }

    #[test]
    fn size_bytes_sane() {
        assert!(Datum::Text("hello".into()).size_bytes() > 5);
        assert!(
            Datum::TextArray(vec!["a".into(), "b".into()]).size_bytes()
                > Datum::Text("ab".into()).size_bytes()
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Int(3).to_string(), "3");
        assert_eq!(Datum::Text("x".into()).to_string(), "'x'");
        assert_eq!(
            Datum::TextArray(vec!["a".into(), "b".into()]).to_string(),
            "{a,b}"
        );
    }
}
