//! Heap storage: the slotted row store under every table.
//!
//! Rows live in slots addressed by [`RowId`]. Deleted slots go on a free
//! list and are reused by later inserts — the moral equivalent of heap pages
//! plus the free-space map.

use crate::datum::Datum;

/// A row's address in its table's heap. Only meaningful within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

/// One table's row storage.
#[derive(Default)]
pub struct Heap {
    slots: Vec<Option<Vec<Datum>>>,
    free: Vec<u32>,
    live: usize,
    /// Approximate bytes of live row data.
    bytes: usize,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate bytes of live row data (Table 3 metric component).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Store a row, returning its id.
    pub fn insert(&mut self, row: Vec<Datum>) -> RowId {
        self.bytes += row_size(&row);
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(row);
                RowId(slot)
            }
            None => {
                self.slots.push(Some(row));
                RowId((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Fetch a live row.
    pub fn get(&self, id: RowId) -> Option<&[Datum]> {
        self.slots.get(id.0 as usize)?.as_deref()
    }

    /// Replace a live row in place. Returns the old row, or `None` if the
    /// slot is dead.
    pub fn update(&mut self, id: RowId, row: Vec<Datum>) -> Option<Vec<Datum>> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        if slot.is_none() {
            return None;
        }
        self.bytes += row_size(&row);
        let old = slot.replace(row);
        if let Some(old_row) = &old {
            self.bytes -= row_size(old_row);
        }
        old
    }

    /// Delete a row. Returns the row if it was live.
    pub fn delete(&mut self, id: RowId) -> Option<Vec<Datum>> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let old = slot.take()?;
        self.bytes -= row_size(&old);
        self.live -= 1;
        self.free.push(id.0);
        Some(old)
    }

    /// Iterate live rows (a sequential scan).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Datum])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|row| (RowId(i as u32), row.as_slice())))
    }
}

fn row_size(row: &[Datum]) -> usize {
    row.iter().map(Datum::size_bytes).sum::<usize>() + 24
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: &str) -> Vec<Datum> {
        vec![Datum::Text(k.into()), Datum::Int(1)]
    }

    #[test]
    fn insert_get_delete() {
        let mut h = Heap::new();
        let id = h.insert(row("a"));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(id).unwrap()[0], Datum::Text("a".into()));
        let old = h.delete(id).unwrap();
        assert_eq!(old[0], Datum::Text("a".into()));
        assert!(h.get(id).is_none());
        assert!(h.delete(id).is_none(), "double delete must fail");
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let mut h = Heap::new();
        let a = h.insert(row("a"));
        let _b = h.insert(row("b"));
        h.delete(a);
        let c = h.insert(row("c"));
        assert_eq!(c, a, "freed slot should be reused");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn scan_skips_dead_rows() {
        let mut h = Heap::new();
        let ids: Vec<_> = (0..10).map(|i| h.insert(row(&format!("r{i}")))).collect();
        for id in ids.iter().step_by(2) {
            h.delete(*id);
        }
        let live: Vec<_> = h.scan().collect();
        assert_eq!(live.len(), 5);
    }

    #[test]
    fn update_in_place() {
        let mut h = Heap::new();
        let id = h.insert(row("a"));
        let old = h.update(id, row("b")).unwrap();
        assert_eq!(old[0], Datum::Text("a".into()));
        assert_eq!(h.get(id).unwrap()[0], Datum::Text("b".into()));
        h.delete(id);
        assert!(
            h.update(id, row("c")).is_none(),
            "update of dead slot fails"
        );
    }

    #[test]
    fn byte_accounting_tracks_live_data() {
        let mut h = Heap::new();
        assert_eq!(h.bytes(), 0);
        let id = h.insert(vec![Datum::Text("x".repeat(1000))]);
        let big = h.bytes();
        assert!(big >= 1000);
        h.update(id, vec![Datum::Text("y".into())]).unwrap();
        assert!(h.bytes() < big);
        h.delete(id);
        assert_eq!(h.bytes(), 0);
    }
}
