//! Time-based row expiry — the paper's PostgreSQL TTL retrofit (§5.2).
//!
//! PostgreSQL has no native row TTL, so the paper adds an expiry-timestamp
//! column to every personal-data table and runs a daemon that deletes
//! past-due rows once per second. [`TtlDaemon`] is that daemon: each sweep
//! issues a `DELETE ... WHERE expiry <= now` through the regular statement
//! pipeline (so it pays WAL, logging, and encryption costs like any other
//! client — exactly as an external cron'd `psql` would).

use crate::database::Database;
use crate::datum::Datum;
use crate::error::RelResult;
use crate::predicate::Predicate;
use crate::statement::Statement;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A table/column pair swept for expiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepTarget {
    pub table: String,
    pub expiry_column: String,
}

/// The TTL sweep daemon.
pub struct TtlDaemon {
    db: Arc<Database>,
    targets: Vec<SweepTarget>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Lifetime count of rows reaped.
    pub reaped: Arc<AtomicU64>,
}

impl TtlDaemon {
    pub fn new(db: Arc<Database>, targets: Vec<SweepTarget>) -> Self {
        TtlDaemon {
            db,
            targets,
            shutdown: Arc::new(AtomicBool::new(false)),
            handle: None,
            reaped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Run one sweep now: delete every row whose expiry column is at or
    /// before the database clock's current time. Returns rows deleted.
    /// NULL-expiry rows are never touched (NULL comparisons are unknown).
    pub fn sweep_once(&self) -> RelResult<usize> {
        let now_ms = self.db.clock().now().as_millis();
        let mut total = 0;
        for target in &self.targets {
            let stmt = Statement::Delete {
                table: target.table.clone(),
                pred: Predicate::Le(target.expiry_column.clone(), Datum::Timestamp(now_ms)),
            };
            let result = self.db.execute(&stmt)?;
            total += result.rows_affected();
        }
        self.reaped.fetch_add(total as u64, Ordering::Relaxed);
        Ok(total)
    }

    /// Start the background sweeper at the configured interval
    /// (`RelConfig::ttl_sweep_interval`, 1 s by default as in the paper).
    pub fn start(&mut self) {
        if self.handle.is_some() {
            return;
        }
        let db = Arc::clone(&self.db);
        let targets = self.targets.clone();
        let shutdown = Arc::clone(&self.shutdown);
        let reaped = Arc::clone(&self.reaped);
        let interval = db.config().ttl_sweep_interval;
        self.handle = Some(std::thread::spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                let now_ms = db.clock().now().as_millis();
                for target in &targets {
                    let stmt = Statement::Delete {
                        table: target.table.clone(),
                        pred: Predicate::Le(target.expiry_column.clone(), Datum::Timestamp(now_ms)),
                    };
                    if let Ok(result) = db.execute(&stmt) {
                        reaped.fetch_add(result.rows_affected() as u64, Ordering::Relaxed);
                    }
                }
                db.clock().sleep(interval);
            }
        }));
    }

    /// Stop the background sweeper.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.shutdown.store(false, Ordering::Relaxed);
    }
}

impl Drop for TtlDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelConfig;
    use crate::schema::ColumnType;
    use std::time::Duration;

    fn setup(clk: clock::SharedClock) -> Arc<Database> {
        let db = Database::open_with_clock(RelConfig::default(), clk).unwrap();
        db.execute(&Statement::CreateTable {
            table: "personal_data".into(),
            columns: vec![
                ("key".into(), ColumnType::Text),
                ("expiry".into(), ColumnType::Timestamp),
            ],
            pk: "key".into(),
        })
        .unwrap();
        db
    }

    fn insert(db: &Database, key: &str, expiry: Option<u64>) {
        db.execute(&Statement::Insert {
            table: "personal_data".into(),
            row: vec![
                Datum::Text(key.into()),
                expiry.map_or(Datum::Null, Datum::Timestamp),
            ],
        })
        .unwrap();
    }

    fn targets() -> Vec<SweepTarget> {
        vec![SweepTarget {
            table: "personal_data".into(),
            expiry_column: "expiry".into(),
        }]
    }

    #[test]
    fn sweep_deletes_only_past_due() {
        let sim = clock::sim();
        let db = setup(sim.clone());
        insert(&db, "due-now", Some(1_000));
        insert(&db, "due-later", Some(100_000));
        insert(&db, "immortal", None);
        sim.advance(Duration::from_secs(5));
        let daemon = TtlDaemon::new(Arc::clone(&db), targets());
        assert_eq!(daemon.sweep_once().unwrap(), 1);
        let t = db.table("personal_data").unwrap();
        assert_eq!(t.read().row_count(), 2);
        // Second sweep at same time reaps nothing further.
        assert_eq!(daemon.sweep_once().unwrap(), 0);
        // Advance past the second deadline.
        sim.advance(Duration::from_secs(100));
        assert_eq!(daemon.sweep_once().unwrap(), 1);
        assert_eq!(t.read().row_count(), 1);
        assert_eq!(daemon.reaped.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn background_daemon_with_wall_clock() {
        let db = Database::open(RelConfig {
            ttl_sweep_interval: Duration::from_millis(20),
            ..Default::default()
        })
        .unwrap();
        db.execute(&Statement::CreateTable {
            table: "personal_data".into(),
            columns: vec![
                ("key".into(), ColumnType::Text),
                ("expiry".into(), ColumnType::Timestamp),
            ],
            pk: "key".into(),
        })
        .unwrap();
        let now = db.clock().now().as_millis();
        for i in 0..20 {
            db.execute(&Statement::Insert {
                table: "personal_data".into(),
                row: vec![
                    Datum::Text(format!("k{i}")),
                    Datum::Timestamp(now + 30), // due in 30ms
                ],
            })
            .unwrap();
        }
        let mut daemon = TtlDaemon::new(Arc::clone(&db), targets());
        daemon.start();
        let t = db.table("personal_data").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.read().row_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        daemon.stop();
        assert_eq!(
            t.read().row_count(),
            0,
            "daemon should reap all expired rows"
        );
    }

    #[test]
    fn sweep_with_expiry_index_uses_index_scan() {
        let sim = clock::sim();
        let db = setup(sim.clone());
        db.execute(&Statement::CreateIndex {
            table: "personal_data".into(),
            index: "expiry_idx".into(),
            column: "expiry".into(),
            inverted: false,
        })
        .unwrap();
        for i in 0..100 {
            insert(&db, &format!("k{i}"), Some(i * 10));
        }
        sim.advance(Duration::from_millis(495));
        let daemon = TtlDaemon::new(Arc::clone(&db), targets());
        assert_eq!(daemon.sweep_once().unwrap(), 50);
        let t = db.table("personal_data").unwrap();
        assert!(t.read().plan_stats().index_scans >= 1);
    }
}
