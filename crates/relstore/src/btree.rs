//! A B+Tree with leaf-level posting lists — the index structure behind
//! PostgreSQL-style secondary indices.
//!
//! Keys live in internal nodes as separators and in leaves with their posting
//! lists (the row ids holding that key — secondary indices are non-unique).
//! Deletion is *lazy*: entries are removed from leaves but underfull pages
//! are not merged, mirroring PostgreSQL's B-tree behaviour where page
//! reclamation is deferred to vacuum. The uniqueness constraint for primary
//! keys is enforced one level up, in [`crate::index`].

/// Maximum keys per node before it splits.
const ORDER: usize = 32;

enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        /// Posting list per key, parallel to `keys`.
        postings: Vec<Vec<V>>,
    },
    Internal {
        /// `separators[i]` is the smallest key reachable via `children[i+1]`.
        separators: Vec<K>,
        // Boxed so that inserting into `children` moves one pointer rather
        // than a ~56-byte node, which matters during splits.
        #[allow(clippy::vec_box)]
        children: Vec<Box<Node<K, V>>>,
    },
}

/// A B+Tree mapping keys to posting lists of values.
pub struct BPlusTree<K, V> {
    root: Box<Node<K, V>>,
    distinct_keys: usize,
    entries: usize,
}

impl<K: Ord + Clone, V: Clone + PartialEq> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> BPlusTree<K, V> {
    pub fn new() -> Self {
        BPlusTree {
            root: Box::new(Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
            }),
            distinct_keys: 0,
            entries: 0,
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.distinct_keys
    }

    /// Number of (key, value) entries across all posting lists.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert `value` into `key`'s posting list. Duplicate (key, value)
    /// pairs are ignored. Returns `true` if the entry was inserted.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let (inserted, new_key, split) = Self::insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = split {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Box::new(Node::Internal {
                    separators: vec![sep],
                    children: Vec::new(),
                }),
            );
            if let Node::Internal { children, .. } = self.root.as_mut() {
                children.push(old_root);
                children.push(right);
            }
        }
        if inserted {
            self.entries += 1;
        }
        if new_key {
            self.distinct_keys += 1;
        }
        inserted
    }

    /// Returns (entry_inserted, key_was_new, split).
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        node: &mut Node<K, V>,
        key: K,
        value: V,
    ) -> (bool, bool, Option<(K, Box<Node<K, V>>)>) {
        match node {
            Node::Leaf { keys, postings } => match keys.binary_search(&key) {
                Ok(i) => {
                    if postings[i].contains(&value) {
                        return (false, false, None);
                    }
                    postings[i].push(value);
                    (true, false, None)
                }
                Err(i) => {
                    keys.insert(i, key);
                    postings.insert(i, vec![value]);
                    let split = if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_postings = postings.split_off(mid);
                        let sep = right_keys[0].clone();
                        (Some((
                            sep,
                            Box::new(Node::Leaf {
                                keys: right_keys,
                                postings: right_postings,
                            }),
                        ))) as Option<(K, Box<Node<K, V>>)>
                    } else {
                        None
                    };
                    (true, true, split)
                }
            },
            Node::Internal {
                separators,
                children,
            } => {
                let idx = match separators.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let (inserted, new_key, child_split) =
                    Self::insert_rec(&mut children[idx], key, value);
                let mut split = None;
                if let Some((sep, right)) = child_split {
                    separators.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if separators.len() > ORDER {
                        let mid = separators.len() / 2;
                        // Promote the median; right node takes what follows.
                        let right_separators = separators.split_off(mid + 1);
                        let promoted = separators.pop().expect("non-empty after split_off");
                        let right_children = children.split_off(mid + 1);
                        split = Some((
                            promoted,
                            Box::new(Node::Internal {
                                separators: right_separators,
                                children: right_children,
                            }),
                        ));
                    }
                }
                (inserted, new_key, split)
            }
        }
    }

    /// Remove `value` from `key`'s posting list. Returns `true` if removed.
    pub fn remove(&mut self, key: &K, value: &V) -> bool {
        let (removed, key_gone) = Self::remove_rec(&mut self.root, key, value);
        if removed {
            self.entries -= 1;
        }
        if key_gone {
            self.distinct_keys -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K, value: &V) -> (bool, bool) {
        match node {
            Node::Leaf { keys, postings } => match keys.binary_search(key) {
                Ok(i) => {
                    let Some(pos) = postings[i].iter().position(|v| v == value) else {
                        return (false, false);
                    };
                    postings[i].swap_remove(pos);
                    if postings[i].is_empty() {
                        keys.remove(i);
                        postings.remove(i);
                        (true, true)
                    } else {
                        (true, false)
                    }
                }
                Err(_) => (false, false),
            },
            Node::Internal {
                separators,
                children,
            } => {
                let idx = match separators.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Self::remove_rec(&mut children[idx], key, value)
            }
        }
    }

    /// The posting list for `key` (empty if absent).
    pub fn get(&self, key: &K) -> &[V] {
        let mut node = self.root.as_ref();
        loop {
            match node {
                Node::Leaf { keys, postings } => {
                    return match keys.binary_search(key) {
                        Ok(i) => &postings[i],
                        Err(_) => &[],
                    };
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    let idx = match separators.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// All (key, value) entries with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.range_limit(lo, hi, usize::MAX)
    }

    /// As [`Self::range`], stopping once `limit` entries are collected —
    /// the ORDER BY ... LIMIT path, O(log n + limit).
    pub fn range_limit(&self, lo: &K, hi: &K, limit: usize) -> Vec<(K, V)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, limit, &mut out);
        out
    }

    fn range_rec(node: &Node<K, V>, lo: &K, hi: &K, limit: usize, out: &mut Vec<(K, V)>) {
        match node {
            Node::Leaf { keys, postings } => {
                let start = keys.partition_point(|k| k < lo);
                for i in start..keys.len() {
                    if &keys[i] > hi || out.len() >= limit {
                        break;
                    }
                    for v in &postings[i] {
                        out.push((keys[i].clone(), v.clone()));
                    }
                }
            }
            Node::Internal {
                separators,
                children,
            } => {
                // `separators[i]` is the smallest key under `children[i+1]`,
                // so keys == lo live in child `partition_point(s <= lo)` and
                // the last child that can hold keys <= hi is
                // `partition_point(s <= hi)`. Leaves re-check exact bounds.
                let start = separators.partition_point(|s| s <= lo);
                let end = separators.partition_point(|s| s <= hi);
                for child in &children[start..=end] {
                    if out.len() >= limit {
                        break;
                    }
                    Self::range_rec(child, lo, hi, limit, out);
                }
            }
        }
    }

    /// Every entry, in key order.
    pub fn iter_all(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        Self::collect_all(&self.root, &mut out);
        out
    }

    fn collect_all(node: &Node<K, V>, out: &mut Vec<(K, V)>) {
        match node {
            Node::Leaf { keys, postings } => {
                for (k, plist) in keys.iter().zip(postings) {
                    for v in plist {
                        out.push((k.clone(), v.clone()));
                    }
                }
            }
            Node::Internal { children, .. } => {
                for child in children {
                    Self::collect_all(child, out);
                }
            }
        }
    }

    /// Depth of the tree (1 = just a root leaf). Exposed for tests and
    /// stats; a tree of n keys should have depth O(log n).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = self.root.as_ref();
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get() {
        let mut t = BPlusTree::new();
        assert!(t.insert(5, 50));
        assert!(t.insert(5, 51));
        assert!(!t.insert(5, 50), "duplicate entry rejected");
        assert!(t.insert(3, 30));
        assert_eq!(t.get(&5), &[50, 51]);
        assert_eq!(t.get(&3), &[30]);
        assert_eq!(t.get(&99), &[] as &[i32]);
        assert_eq!(t.key_count(), 2);
        assert_eq!(t.entry_count(), 3);
    }

    #[test]
    fn many_inserts_stay_sorted_and_balanced() {
        let mut t = BPlusTree::new();
        let n = 10_000u32;
        // Insert in adversarial (descending) order.
        for i in (0..n).rev() {
            assert!(t.insert(i, i * 10));
        }
        assert_eq!(t.key_count(), n as usize);
        let all = t.iter_all();
        assert_eq!(all.len(), n as usize);
        assert!(
            all.windows(2).all(|w| w[0].0 < w[1].0),
            "keys must be sorted"
        );
        assert!(
            t.depth() <= 4,
            "10k keys at order 32 should be ≤4 levels, got {}",
            t.depth()
        );
        for i in (0..n).step_by(97) {
            assert_eq!(t.get(&i), &[i * 10]);
        }
    }

    #[test]
    fn range_queries() {
        let mut t = BPlusTree::new();
        for i in 0..1000 {
            t.insert(i, i);
        }
        let got = t.range(&100, &199);
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], (100, 100));
        assert_eq!(got[99], (199, 199));
        assert!(t.range(&2000, &3000).is_empty());
        assert_eq!(t.range(&0, &0), vec![(0, 0)]);
        assert_eq!(t.range(&999, &5000), vec![(999, 999)]);
    }

    #[test]
    fn range_with_posting_lists() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(i / 10, i); // 10 values per key
        }
        let got = t.range(&3, &4);
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|(k, v)| *k == v / 10 && (3..=4).contains(k)));
    }

    #[test]
    fn remove_entries_and_keys() {
        let mut t = BPlusTree::new();
        t.insert(1, 10);
        t.insert(1, 11);
        assert!(t.remove(&1, &10));
        assert!(!t.remove(&1, &10), "already removed");
        assert_eq!(t.get(&1), &[11]);
        assert_eq!(t.key_count(), 1);
        assert!(t.remove(&1, &11));
        assert_eq!(t.key_count(), 0);
        assert!(t.is_empty());
        assert_eq!(t.get(&1), &[] as &[i32]);
    }

    #[test]
    fn remove_missing_key_is_noop() {
        let mut t: BPlusTree<i32, i32> = BPlusTree::new();
        assert!(!t.remove(&7, &70));
    }

    #[test]
    fn stress_against_model() {
        use std::collections::BTreeMap;
        let mut t = BPlusTree::new();
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut state = 0x1234_5678_u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let key = rand() % 500;
            let value = rand() % 20;
            if rand() % 3 == 0 {
                let removed_model = model
                    .get_mut(&key)
                    .map(|plist| {
                        let pos = plist.iter().position(|v| *v == value);
                        if let Some(p) = pos {
                            plist.swap_remove(p);
                            true
                        } else {
                            false
                        }
                    })
                    .unwrap_or(false);
                if model.get(&key).is_some_and(|p| p.is_empty()) {
                    model.remove(&key);
                }
                assert_eq!(t.remove(&key, &value), removed_model);
            } else {
                let plist = model.entry(key).or_default();
                let inserted_model = if plist.contains(&value) {
                    false
                } else {
                    plist.push(value);
                    true
                };
                assert_eq!(t.insert(key, value), inserted_model);
            }
        }
        // Final state comparison.
        assert_eq!(t.key_count(), model.len());
        let expected_entries: usize = model.values().map(Vec::len).sum();
        assert_eq!(t.entry_count(), expected_entries);
        for (k, plist) in &model {
            let mut got = t.get(k).to_vec();
            let mut want = plist.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "posting list mismatch at key {k}");
        }
        // Range over a window must match the model's range.
        let got: Vec<u64> = t.range(&100, &200).into_iter().map(|(k, _)| k).collect();
        let want: Vec<u64> = model
            .range(100..=200)
            .flat_map(|(k, plist)| std::iter::repeat_n(*k, plist.len()))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn string_keys() {
        let mut t = BPlusTree::new();
        for word in ["neo", "trinity", "morpheus", "smith", "oracle"] {
            t.insert(word.to_string(), word.len());
        }
        assert_eq!(t.get(&"neo".to_string()), &[3]);
        let range = t.range(&"n".to_string(), &"p".to_string());
        let keys: Vec<_> = range.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["neo", "oracle"]);
    }
}
